"""A toy superoptimizer guided by Facile (the paper's §1 motivation).

Superoptimizers explore huge spaces of instruction sequences, so the
throughput model's speed is the limiting factor, and its bottleneck
report can prioritize rewrites.  This example ranks alternative
implementations of small computations and shows that Facile agrees with
the cycle-level simulator while being far cheaper to consult.

Run:
    python examples/superoptimizer.py
"""

import time

from repro.core import Facile, ThroughputMode
from repro.isa import BasicBlock
from repro.sim import Simulator
from repro.uarch import uarch_by_name

#: Candidate implementations of "rax = rbx * 9" inside a loop body
#: (followed by a dependent consumer to keep the value live).
MULTIPLY_BY_9 = {
    "imul": """
        imul rax, rbx
        add rcx, rax
    """,
    "lea (x8+x)": """
        lea rax, [rbx+rbx*8]
        add rcx, rax
    """,
    "shift+add": """
        mov rax, rbx
        shl rax, 3
        add rax, rbx
        add rcx, rax
    """,
}

#: Candidate implementations of a horizontal byte swap of four values.
SWAP_PIPELINE = {
    "bswap chain": """
        bswap rax
        bswap rbx
        bswap rcx
        bswap rdx
    """,
    "xchg shuffle": """
        xchg rax, rbx
        xchg rcx, rdx
        xchg rax, rcx
    """,
}


def rank(candidates, cfg, model):
    scored = []
    for name, asm in candidates.items():
        block = BasicBlock.from_asm(asm)
        prediction = model.predict(block, ThroughputMode.UNROLLED)
        scored.append((prediction.cycles, name, prediction))
    scored.sort()
    return scored


def main() -> None:
    cfg = uarch_by_name("SKL")
    model = Facile(cfg)
    simulator = Simulator(cfg)

    for title, candidates in (("rax = rbx * 9", MULTIPLY_BY_9),
                              ("byte swaps", SWAP_PIPELINE)):
        print(f"== {title}")
        start = time.perf_counter()
        scored = rank(candidates, cfg, model)
        elapsed_ms = 1000 * (time.perf_counter() - start)
        for cycles, name, prediction in scored:
            simulated = simulator.throughput(
                BasicBlock.from_asm(candidates[name]),
                ThroughputMode.UNROLLED)
            print(f"   {name:<14} facile {cycles:5.2f} cyc/iter "
                  f"(sim {simulated:5.2f}), bottleneck: "
                  f"{prediction.bottlenecks[0].value}")
        best = scored[0]
        print(f"   -> pick {best[1]!r}; ranking took {elapsed_ms:.1f} ms "
              f"for {len(candidates)} candidates\n")


if __name__ == "__main__":
    main()
