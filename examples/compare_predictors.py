"""Compare all throughput predictors on one microarchitecture.

A miniature of the paper's Table 2: accuracy (MAPE, Kendall's tau) and
speed of every predictor analog against the measurement oracle.

Run:
    python examples/compare_predictors.py [uarch] [suite_size]
"""

import sys
import time

from repro.baselines import all_predictors
from repro.bhive import default_suite
from repro.core import ThroughputMode
from repro.eval.runner import evaluate_predictor, measured_suite
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


def main() -> None:
    uarch = sys.argv[1] if len(sys.argv) > 1 else "SKL"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 80

    cfg = uarch_by_name(uarch)
    db = UopsDatabase(cfg)
    suite = default_suite(size)

    print(f"Measuring {size} benchmarks on the {cfg.name} oracle...")
    measured = {
        mode: measured_suite(suite, cfg, mode, db)
        for mode in (ThroughputMode.UNROLLED, ThroughputMode.LOOP)
    }

    print(f"\n{'predictor':<13} {'U-MAPE':>8} {'U-tau':>7} "
          f"{'L-MAPE':>8} {'L-tau':>7} {'ms/block':>9}")
    for predictor in all_predictors(cfg, db):
        predictor.prepare()
        start = time.perf_counter()
        result_u = evaluate_predictor(
            predictor, suite, ThroughputMode.UNROLLED,
            measured[ThroughputMode.UNROLLED])
        result_l = evaluate_predictor(
            predictor, suite, ThroughputMode.LOOP,
            measured[ThroughputMode.LOOP])
        per_block_ms = (1000 * (time.perf_counter() - start)
                        / (2 * len(suite)))
        print(f"{predictor.name:<13} {100 * result_u.mape:7.2f}% "
              f"{result_u.kendall:7.3f} {100 * result_l.mape:7.2f}% "
              f"{result_l.kendall:7.3f} {per_block_ms:9.2f}")


if __name__ == "__main__":
    main()
