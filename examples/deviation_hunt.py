"""Hunt for predictor deviations with a tiny campaign budget.

A miniature of ``facile hunt --generalize``: generate a seeded
candidate corpus, fan Facile, a baseline analog, and the oracle
simulator over it, minimize the deviating blocks, then widen the
strongest witness into an abstract deviation family with fresh sampled
proof witnesses and suite coverage.  Prints the top cluster, its
strongest (minimized) witness, and the top family.

Run:
    python examples/deviation_hunt.py [budget] [uarch]
"""

import sys

from repro.discovery import CampaignConfig, run_campaign


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    uarch = sys.argv[2] if len(sys.argv) > 2 else "SKL"

    config = CampaignConfig(seed=0, budget=budget, uarchs=(uarch,),
                            modes=("unrolled",), max_witnesses=3,
                            generalize=True, max_families=1)
    print(f"Hunting on {uarch}: {budget} candidates, tools "
          f"{', '.join(config.predictors)} + oracle ...")
    result = run_campaign(config)

    stats = result.stats[uarch]
    print(f"{stats['deviating']} deviating blocks, "
          f"{stats['witnesses']} minimized witnesses, "
          f"{len(result.clusters)} clusters")
    if not result.clusters:
        print("No deviations at this budget — try a larger one.")
        return

    top = result.clusters[0]
    sig = top.signature
    print(f"\nTop cluster ({top.size} witnesses, max score "
          f"{top.max_score:.2f}):")
    print(f"  category {sig.category}, bottleneck {sig.bottleneck}, "
          f"ports {sig.ports}")
    print(f"  deviating pair: {sig.pair[0]} vs {sig.pair[1]}")

    witness = top.witnesses[0]
    print(f"\nStrongest witness (minimized "
          f"{len(witness.original_lines)} -> "
          f"{len(witness.minimized_lines)} instructions):")
    for line in witness.asm.splitlines():
        print(f"    {line}")
    for name, cycles in sorted(witness.values.items()):
        print(f"  {name:<13} {cycles:6.2f} cycles/iter")

    if not result.families:
        print("\nNo family confirmed at this budget.")
        return
    family = result.families[0]
    print(f"\nGeneralized family {family.id} "
          f"(coverage {family.coverage:.0%} of the benchmark suite, "
          f"{family.widenings_accepted}/{family.widenings_tried} "
          "features widened):")
    for line in family.abstraction.summary():
        print(f"    {line}")
    fresh = family.fresh[0]
    print(f"  fresh sampled witness (not a campaign input, "
          f"score {fresh.score:.2f}):")
    for line in fresh.lines:
        print(f"    {line}")


if __name__ == "__main__":
    main()
