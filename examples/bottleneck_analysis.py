"""Cross-generation bottleneck analysis of a numerical kernel.

Analyzes a dot-product-style loop on every microarchitecture from Sandy
Bridge to Rocket Lake, exploiting Facile's interpretability: where the
bottleneck sits, and what idealizing each pipeline component would buy
(the per-block version of the paper's Table 4).

Run:
    python examples/bottleneck_analysis.py
"""

from repro.core import Component, Facile, ThroughputMode
from repro.core.counterfactual import idealized_speedup
from repro.isa import BasicBlock
from repro.uarch import UARCH_ORDER

KERNEL = """
    movaps xmm0, xmmword ptr [rsi+rcx*8]
    movaps xmm1, xmmword ptr [rdi+rcx*8]
    mulps xmm0, xmm1
    addps xmm2, xmm0
    add rcx, 2
    cmp rcx, rdx
    jl -26
"""


def main() -> None:
    block = BasicBlock.from_asm(KERNEL)
    print("Kernel (packed dot product):")
    for line in block.text().splitlines():
        print(f"    {line}")

    print(f"\n{'µArch':<6} {'TPL':>6}  {'bottleneck':<12} "
          f"{'FE path':<8} {'ideal-Ports':>12} {'ideal-Prec':>11}")
    for cfg in UARCH_ORDER:
        model = Facile(cfg)
        prediction = model.predict(block, ThroughputMode.LOOP)
        ports = idealized_speedup(prediction, Component.PORTS) or 1.0
        precedence = idealized_speedup(
            prediction, Component.PRECEDENCE) or 1.0
        fe = prediction.fe_component.value if prediction.fe_component \
            else "-"
        print(f"{cfg.abbrev:<6} {prediction.cycles:6.2f}  "
              f"{prediction.bottlenecks[0].value:<12} {fe:<8} "
              f"{ports:>11.2f}x {precedence:>10.2f}x")

    print("\nReading the table: the accumulator dependence chain (addps "
          "into xmm2)\nbounds every generation; its latency grows from 3 "
          "to 4 cycles at Skylake,\nwhere FP adds moved onto the FMA "
          "units. Idealizing Precedence (e.g. by\nsumming into multiple "
          "accumulators) is worth 1.5-2.7x — exactly the kind\nof "
          "counterfactual a Facile-guided optimizer can read off directly.")


if __name__ == "__main__":
    main()
