"""Bottleneck evolution across Intel generations (paper Figure 6).

Generates a benchmark suite and tracks how the primary TPU bottleneck of
each block shifts from Sandy Bridge through Haswell and Cascade Lake to
Rocket Lake — the Sankey-diagram data of the paper, rendered as text.

Run:
    python examples/uarch_evolution.py [suite_size]
"""

import sys

from repro.bhive import default_suite
from repro.eval.figures import figure6_bottleneck_evolution, render_figure6


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    suite = default_suite(size)
    print(f"Analyzing {len(suite)} benchmarks "
          f"(SNB -> HSW -> CLX -> RKL, TPU)\n")

    flows = figure6_bottleneck_evolution(suite)
    print(render_figure6(flows))

    first = flows[0]["from_shares"]
    last = flows[-1]["to_shares"]
    print("\nSummary (share of benchmarks):")
    for component in ("Predec", "Ports"):
        direction = "+" if last[component] >= first[component] else "-"
        print(f"    {component:<11} SNB {100 * first[component] / size:4.0f}%"
              f"  ->  RKL {100 * last[component] / size:4.0f}%  ({direction})")


if __name__ == "__main__":
    main()
