"""Throughput of a loop with internal control flow (future-work §7).

The paper names handling branches as future work; `repro.core.trace`
provides the first-order extension: frequency-weighted per-block
prediction with trace-wide bottleneck attribution.  This example models
a loop whose body takes a cheap or an expensive arm depending on data.

Run:
    python examples/branchy_loop.py
"""

from repro.core import Component
from repro.core.trace import TraceFacile
from repro.isa import BasicBlock
from repro.uarch import uarch_by_name

# while (i < n) { acc = f(a[i]); if (a[i] < 0) acc = expensive(acc); ... }
PROLOGUE = """
    mov rax, qword ptr [rsi+rcx*8]
    add rcx, 1
    test rax, rax
"""

FAST_ARM = """
    add rbx, rax
"""

SLOW_ARM = """
    imul rax, rax
    imul rax, rdx
    add rbx, rax
"""


def main() -> None:
    cfg = uarch_by_name("SKL")
    tracer = TraceFacile(cfg)
    prologue = BasicBlock.from_asm(PROLOGUE)
    fast = BasicBlock.from_asm(FAST_ARM)
    slow = BasicBlock.from_asm(SLOW_ARM)

    print(f"{'P(slow arm)':>12} {'cycles/iter':>12} {'bottleneck':>12} "
          f"{'ideal-Precedence':>17}")
    for p_slow in (0.01, 0.10, 0.50, 0.90):
        trace = tracer.predict_branchy_loop(
            prologue, [(fast, 1.0 - p_slow), (slow, p_slow)])
        speedup = trace.idealized_speedup(Component.PRECEDENCE) or 1.0
        bottleneck = trace.bottleneck.value if trace.bottleneck else "-"
        print(f"{p_slow:>12.2f} {trace.cycles:>12.2f} {bottleneck:>12} "
              f"{speedup:>16.2f}x")

    print("\nAs the slow arm gets hotter, the trace bottleneck shifts "
          "from the\nfront end to the imul dependence chain — and the "
          "counterfactual says\nbreaking that chain is the optimization "
          "worth doing first.")


if __name__ == "__main__":
    main()
