"""Quickstart: predict the throughput of a basic block.

Run:
    python examples/quickstart.py
"""

from repro.core import Component, Facile, ThroughputMode
from repro.core.counterfactual import idealized_speedup
from repro.isa import BasicBlock
from repro.uarch import uarch_by_name


def main() -> None:
    # A small reduction loop: multiply-accumulate with a loop counter.
    block = BasicBlock.from_asm("""
        mov rax, qword ptr [rsi+rcx*8]
        imul rax, rdx
        add rbx, rax
        dec rcx
        jne -17
    """)

    print("Block:")
    for line in block.text().splitlines():
        print(f"    {line}")

    skylake = uarch_by_name("SKL")
    model = Facile(skylake)

    # TPL: the block executes as a loop (it ends in a branch).
    prediction = model.predict(block, ThroughputMode.LOOP)
    print(f"\nSkylake, loop mode: {prediction.cycles:.2f} cycles/iteration")

    # Facile is compositional: every component bound is available, and
    # the argmax components *are* the bottleneck report.
    print("\nComponent bounds:")
    for component, bound in prediction.bounds.items():
        marker = "  <-- bottleneck" if component in prediction.bottlenecks \
            else ""
        print(f"    {component.value:<11} {float(bound):6.2f}{marker}")

    if prediction.critical_instruction_indices:
        print("\nCritical instructions:")
        for index in prediction.critical_instruction_indices:
            print(f"    [{index}] {block[index].text()}")

    # Counterfactual reasoning: what if a component were infinitely fast?
    print("\nIdealization speedups:")
    for component in (Component.PORTS, Component.PRECEDENCE):
        speedup = idealized_speedup(prediction, component)
        if speedup is not None:
            print(f"    {component.value:<11} {speedup:.2f}x")

    # The same block, unrolled instead of looped (TPU notion).
    unrolled = model.predict(block.without_final_branch(),
                             ThroughputMode.UNROLLED)
    print(f"\nUnrolled (TPU): {unrolled.cycles:.2f} cycles/iteration, "
          f"bottleneck: {unrolled.bottlenecks[0].value}")


if __name__ == "__main__":
    main()
