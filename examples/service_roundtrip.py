"""Drive the prediction service end to end, in one process.

Starts ``facile serve`` on an ephemeral port, then talks to it with the
bundled :class:`~repro.service.client.ServiceClient` — the same calls
shown as ``curl`` invocations in ``docs/SERVICE.md``.  The client
negotiates the API generation once (``GET /v1/health``) and returns
typed results; the dict-style access of earlier releases still works.

Run:
    python examples/service_roundtrip.py
"""

from repro.service import PredictionService, ServiceClient


def main() -> None:
    with PredictionService(uarch="SKL", port=0) as service, \
            ServiceClient(port=service.port) as client:
        print(f"service up on http://{service.host}:{service.port} "
              f"(api: {client.api_version})\n")

        health = client.health()
        print(f"health: {health['status']}  "
              f"(default µarch {health['default_uarch']})")

        # Single block with the counterfactual (Table-4 style) analysis.
        prediction = client.predict(
            {"asm": "imul rax, rbx\nadd rax, rcx\ncmp rax, r14\njne -14"},
            mode="loop", counterfactuals=True)
        print(f"\npredicted: {prediction.cycles} cycles/iter "
              f"(bottleneck: {', '.join(prediction.bottlenecks)}; "
              f"cache {prediction.meta['cache']}, "
              f"{prediction.meta['timing_ms']}ms server-side)")
        for comp, speedup in sorted(
                prediction.counterfactual_speedups.items()):
            print(f"    idealizing {comp:<11} -> {speedup}x")

        # Bulk predict: many blocks in one request, order-preserving.
        bulk = client.predict_bulk(
            ["4801d8", "480fafc3", {"asm": "add rax, rbx\njne -7"}],
            mode="loop")
        print(f"\nbulk ({bulk.n_blocks} blocks): "
              f"{[p.cycles for p in bulk.predictions]}")

        # Compare Facile against two of the baseline analogs.
        comparison = client.compare("4801d875f4", mode="loop",
                                    predictors=["Facile", "uiCA",
                                                "OSACA"])
        print("\npredictor comparison:")
        for name, cycles in sorted(comparison["predictions"].items()):
            print(f"    {name:<8} {cycles:6.2f} cycles/iter")

        # The served traffic shows up in the cache/batcher statistics.
        stats = client.stats()
        skl = stats["uarchs"]["SKL"]
        print(f"\nstats: {stats['requests']['total']} requests, "
              f"response-fragment hits "
              f"{skl['response_cache']['hits']}, "
              f"mean batch {skl['batcher']['mean_batch_size']}, "
              f"shard alive: {skl['shard']['alive']}")


if __name__ == "__main__":
    main()
