"""Ensure `src/` is importable when the package is not installed."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: perf-regression smoke tests (fast variants of "
        "benchmarks/perf/)")
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection smoke tests (run with an active "
        "REPRO_FAULTS plan in CI's chaos job; see docs/ROBUSTNESS.md)")
    config.addinivalue_line(
        "markers",
        "slow: long-running end-to-end tests (full generalization "
        "campaigns); excluded from the default run by addopts, CI "
        "runs them in a dedicated step via -m slow")
