#!/usr/bin/env python3
"""End-to-end observability smoke check (CI's observability job).

Boots a real ``facile serve`` subprocess on an ephemeral port, drives
representative traffic (predict, bulk, a cache hit, a deliberate 400),
scrapes ``GET /v1/metrics``, and validates:

1. the scrape parses as Prometheus text exposition 0.0.4 with the
   documented content type;
2. every metric in ``repro.obs.metrics.METRIC_CATALOG`` is advertised,
   with its documented kind;
3. the traffic actually moved the counters (requests, errors, response
   cache, batcher) and every response carried a trace id;
4. the server's stdout stayed empty — structured logs are stderr-only.

The server's bound port is discovered by parsing the structured
``serving`` startup event off stderr, which doubles as a test that the
machine-readable banner stays parseable.

Run from the repository root (exits non-zero on failure)::

    python scripts/obs_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.metrics import METRIC_CATALOG, parse_exposition  # noqa: E402
from repro.service.server import METRICS_CONTENT_TYPE  # noqa: E402

STARTUP_TIMEOUT_SEC = 60.0
HEX = "4801d875f4"


def start_server():
    """``(process, port)`` — serve on an ephemeral port, parse banner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    # Own session: the server forks a shard worker that inherits the
    # pipe write ends, so teardown must signal the whole process group
    # or communicate() would wait forever on the orphan's open pipes.
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--uarch", "SKL", "--max-wait-ms", "2"],
        cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, start_new_session=True)
    deadline = time.monotonic() + STARTUP_TIMEOUT_SEC
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            raise SystemExit("server exited before announcing itself: "
                             + (process.stdout.read() or ""))
        try:
            record = json.loads(line)
        except ValueError:
            raise SystemExit("non-JSON server stderr line: "
                             + line.rstrip())
        if record.get("event") == "serving":
            return process, int(record["port"])
    raise SystemExit("no 'serving' event within "
                     f"{STARTUP_TIMEOUT_SEC:.0f}s")


def fetch(port, path, body=None):
    """``(status, headers, bytes)`` for one request; errors included."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        method="POST" if data else "GET")
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def drive_traffic(port):
    """Representative traffic; every response must carry a trace id."""
    plans = [
        ("/v1/predict", {"hex": HEX, "mode": "loop"}, 200),
        ("/v1/predict", {"hex": HEX, "mode": "loop"}, 200),  # cache hit
        ("/v1/predict/bulk",
         {"blocks": [{"hex": "4801d8"}, {"hex": "4829d8"}],
          "mode": "unrolled"}, 200),
        ("/v1/predict", {}, 400),  # deliberate error-path traffic
        ("/v1/health", None, 200),
        ("/v1/stats", None, 200),
    ]
    for path, body, expected in plans:
        status, headers, _ = fetch(port, path, body)
        if status != expected:
            raise SystemExit(f"{path}: HTTP {status}, "
                             f"expected {expected}")
        if not headers.get("X-Trace-Id"):
            raise SystemExit(f"{path}: response carries no X-Trace-Id")


def sample_value(family, sample_name, **labels):
    """Sum of matching samples (labels must be a subset match)."""
    total = 0.0
    for name, sample_labels, value in family["samples"]:
        if name == sample_name and all(
                sample_labels.get(k) == v for k, v in labels.items()):
            total += value
    return total


def check_scrape(port):
    status, headers, raw = fetch(port, "/v1/metrics")
    if status != 200:
        raise SystemExit(f"/v1/metrics: HTTP {status}")
    if headers.get("Content-Type") != METRICS_CONTENT_TYPE:
        raise SystemExit("/v1/metrics content type "
                         f"{headers.get('Content-Type')!r} != "
                         f"{METRICS_CONTENT_TYPE!r}")
    families = parse_exposition(raw.decode())

    missing = sorted(set(METRIC_CATALOG) - set(families))
    if missing:
        raise SystemExit("scrape is missing documented metrics: "
                         + ", ".join(missing))
    for name, (kind, _) in sorted(METRIC_CATALOG.items()):
        if families[name]["kind"] != kind:
            raise SystemExit(f"{name}: scraped kind "
                             f"{families[name]['kind']!r} != {kind!r}")

    moved = {
        "facile_requests_total":
            ("facile_requests_total", {"endpoint": "/v1/predict"}, 3),
        "facile_request_errors_total":
            ("facile_request_errors_total",
             {"endpoint": "/v1/predict"}, 1),
        "facile_response_cache_hits_total":
            ("facile_response_cache_hits_total", {"uarch": "SKL"}, 1),
        "facile_batcher_batches_total":
            ("facile_batcher_batches_total", {"uarch": "SKL"}, 1),
        "facile_request_duration_ms":
            ("facile_request_duration_ms_count",
             {"route": "/v1/predict"}, 3),
    }
    for family_name, (sample_name, labels, floor) in moved.items():
        value = sample_value(families[family_name], sample_name,
                             **labels)
        if value < floor:
            raise SystemExit(f"{sample_name}{labels}: {value} < {floor}"
                             " after the traffic script")
    return len(families)


def kill_group(process):
    """Terminate the server's whole process group; return its stdout."""
    for sig in (signal.SIGTERM, signal.SIGKILL):
        try:
            os.killpg(process.pid, sig)
        except (ProcessLookupError, PermissionError):
            pass
        try:
            stdout, _ = process.communicate(timeout=15)
            return stdout
        except subprocess.TimeoutExpired:
            continue
    stdout, _ = process.communicate()
    return stdout


def main():
    process, port = start_server()
    try:
        drive_traffic(port)
        n_families = check_scrape(port)
    finally:
        stdout = kill_group(process)
    if stdout:
        raise SystemExit("server wrote to stdout (logs are stderr-only):"
                         f" {stdout[:200]!r}")
    print(f"obs_smoke: OK ({n_families} metric families scraped, "
          f"{len(METRIC_CATALOG)} documented names present, "
          "traces on every response, stdout clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
