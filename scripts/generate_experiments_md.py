"""Regenerate EXPERIMENTS.md from a full evaluation run.

Usage:
    python scripts/generate_experiments_md.py [suite_size]

Writes paper-vs-measured records for every table and figure.
"""

import sys
import time

sys.path.insert(0, "src")

from repro.bhive.suite import BenchmarkSuite
from repro.eval import figures, tables
from repro.uarch import ALL_UARCHS


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    suite = BenchmarkSuite.generate(size, 2023)
    timing_suite = BenchmarkSuite.generate(min(40, size), 2023)
    started = time.time()

    sections = []

    sections.append(f"""# EXPERIMENTS — paper vs. reproduction

All numbers below were produced by this repository's harness on the
synthetic measurement substrate (see DESIGN.md §2 for the substitutions).
Suite: {size} benchmarks, seed 2023, in BHiveU and BHiveL variants.

Absolute values are not expected to match the paper (our "hardware" is a
simulator, our suite is synthetic); the *shape* — which predictor wins,
by roughly what factor, where the notions diverge — is the reproduction
target and is checked automatically by `pytest benchmarks/`.

Regenerate with `python scripts/generate_experiments_md.py {size}`.
""")

    # Table 1 -----------------------------------------------------------
    sections.append("## Table 1 — microarchitectures\n\n"
                    "Identical to the paper by construction "
                    "(configuration data):\n\n```\n"
                    + tables.render_table1() + "\n```\n")

    # Table 2 -----------------------------------------------------------
    print("table2 ...", flush=True)
    rows = tables.table2(suite)
    sections.append("""## Table 2 — predictor comparison (MAPE / Kendall's tau)

Paper: Facile 0.42-1.95% MAPE, uiCA 0.38-1.91%, all other tools 5-138%;
TPU-based tools degrade on BHiveL and vice versa.

Reproduction:

```
""" + tables.render_table2(rows) + "\n```\n")

    facile_rows = [r for r in rows if r.predictor == "Facile"]
    worst_u = max(r.mape_u for r in facile_rows)
    worst_l = max(r.mape_l for r in facile_rows)
    sections.append(f"Facile's worst-case MAPE across the nine "
                    f"microarchitectures: {100 * worst_u:.2f}% (BHiveU), "
                    f"{100 * worst_l:.2f}% (BHiveL) — the same band as "
                    f"the paper's 1.95%/1.62%.\n")

    # Table 3 -----------------------------------------------------------
    print("table3 ...", flush=True)
    rows3 = tables.table3(suite)
    sections.append("""## Table 3 — component ablations (RKL, SKL, SNB)

Paper: SimplePredec costs ~10x accuracy on RKL; no single component
suffices ("only DSB" = 100% MAPE under TPU); excluding Predec/Ports/
Precedence hurts most.

Reproduction:

```
""" + tables.render_table3(rows3) + "\n```\n")

    # Table 4 -----------------------------------------------------------
    print("table4 ...", flush=True)
    data4 = tables.table4(suite)
    sections.append("""## Table 4 — speedup when idealizing one component (TPU)

Paper: Predec potential grows 1.04 -> 1.12 from SNB to RKL; Ports
shrinks 1.17 -> 1.10; Issue ~1.00.  Our synthetic suite stresses the
front end harder, so the absolute potentials are larger, but the trends
(Predec grows, Ports shrinks, Issue nil, designs balanced) match.

Reproduction:

```
""" + tables.render_table4(data4) + "\n```\n")

    # Figure 3 ----------------------------------------------------------
    print("figure3 ...", flush=True)
    heatmaps = figures.figure3_heatmaps(suite, uarch="RKL")
    optimism = figures.optimism_fraction(suite, uarch="RKL")
    lines = [f"{h.predictor:<13} diagonal fraction "
             f"{h.diagonal_fraction:.2f}" for h in heatmaps]
    sections.append("""## Figure 3 — measured vs. predicted heatmaps (RKL, BHiveL)

Paper: Facile and uiCA concentrate on the diagonal; llvm-mca and CQA
scatter; Facile is always optimistic.

Reproduction (fraction of benchmarks in the diagonal bin):

```
""" + "\n".join(lines) + f"""
```

Fraction of blocks where Facile's prediction <= measurement:
{100 * optimism:.1f}% (paper: 100%).
""")

    # Figure 4 ----------------------------------------------------------
    print("figure4 ...", flush=True)
    comp_times = figures.figure4_component_times(timing_suite,
                                                 uarch="SKL")
    lines = []
    for mode, results in comp_times.items():
        lines.append(f"-- {mode}")
        for name, timing in results.items():
            lines.append(f"   {name:<11} mean {timing.mean_ms:7.3f} ms  "
                         f"median {timing.median_ms:7.3f} ms")
    facile_tpu = comp_times["TPU"]["FACILE"].mean_ms
    dominant = (comp_times["TPU"]["Overhead"].mean_ms
                + comp_times["TPU"]["Precedence"].mean_ms)
    sections.append("""## Figure 4 — Facile component-time distributions

Paper: overhead (parsing/disassembly) + Precedence account for ~90% of
the runtime; Predec/Dec cost less under TPL (often skipped).

Reproduction:

```
""" + "\n".join(lines) + f"""
```

Overhead+Precedence share of total (TPU): """
                    f"{100 * dominant / facile_tpu:.0f}%.\n")

    # Figure 5 ----------------------------------------------------------
    print("figure5 ...", flush=True)
    tool_times = figures.figure5_tool_times(timing_suite, uarch="SKL")
    lines = [f"{name:<13} TPU {times['TPU']:8.3f} ms   "
             f"TPL {times['TPL']:8.3f} ms"
             for name, times in tool_times.items()]
    ratio = tool_times["uiCA"]["TPU"] / tool_times["Facile"]["TPU"]
    sections.append("""## Figure 5 — per-benchmark prediction time

Paper: Facile ~0.1 ms/benchmark, ~100x faster than uiCA and ~70x faster
than Ithemal (an LSTM).  Our Ithemal analog is a linear model, so it is
*faster* than the paper's Ithemal — an expected deviation recorded here;
the simulation-based uiCA analog shows the paper's orders-of-magnitude
gap.

Reproduction:

```
""" + "\n".join(lines) + f"""
```

uiCA-to-Facile time ratio: {ratio:.0f}x.
""")

    # Figure 6 ----------------------------------------------------------
    print("figure6 ...", flush=True)
    flows = figures.figure6_bottleneck_evolution(suite)
    first = flows[0]["from_shares"]
    last = flows[-1]["to_shares"]
    sections.append("""## Figure 6 — bottleneck evolution (TPU, SNB -> HSW -> CLX -> RKL)

Paper: the Predec-bound share grows over the decade, the Ports-bound
share shrinks.

Reproduction:

```
""" + figures.render_figure6(flows) + f"""
```

Predec share: SNB {100 * first['Predec'] / size:.0f}% -> RKL \
{100 * last['Predec'] / size:.0f}%;  Ports share: SNB \
{100 * first['Ports'] / size:.0f}% -> RKL \
{100 * last['Ports'] / size:.0f}%.
""")

    # Known deviations ---------------------------------------------------
    sections.append("""## Known deviations from the paper

1. **Absolute MAPE values of the weaker baselines** depend on the
   synthetic suite's bottleneck mix; they land in the paper's 10-40%
   band but do not match per-tool magnitudes (our analogs replicate
   modeling *scope*, not each tool's exact heuristics).
2. **Ithemal/learning-bl degrade more on BHiveL** than in the paper
   (their L-mode errors are larger here): our loop variants diverge from
   the unrolled ones more strongly than BHive's, because the synthetic
   front-end-stressed blocks gain more from the DSB/LSD.
3. **Ithemal analog speed**: a feature regression instead of an LSTM, so
   Figure 5 shows it close to the analytical tools rather than 10 ms.
4. **Facile can be marginally pessimistic (<1%)** on blocks where the
   predecoder and decoder interact (IQ starvation realigns decode
   groups); documented in DESIGN.md §5, visible only beyond the paper's
   2-decimal rounding.
5. **Table 4 magnitudes** are larger than the paper's (synthetic suite
   stresses the predecoder harder); trends match.
""")

    elapsed = time.time() - started
    sections.append(f"---\nGenerated in {elapsed:.0f} s "
                    f"on the default offline substrate.\n")

    with open("EXPERIMENTS.md", "w") as handle:
        handle.write("\n".join(sections))
    print(f"EXPERIMENTS.md written ({elapsed:.0f} s)")


if __name__ == "__main__":
    main()
