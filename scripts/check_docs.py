#!/usr/bin/env python3
"""Keep the documentation suite mechanically honest.

Checks, over ``README.md`` and every ``docs/*.md``:

1. **Internal links resolve** — every relative markdown link
   ``[text](path)`` points at a file or directory that exists
   (anchors are stripped; external ``http(s)``/``mailto`` links and
   pure in-page anchors are skipped).
2. **CLI coverage** — every ``facile`` subcommand registered in
   :func:`repro.cli.build_parser` (``predict``, ``table*``,
   ``figure*``, ``bench``, ``serve``, …) is mentioned in the README,
   so a new subcommand cannot ship undocumented.
3. **API conformance** — the service reference ``docs/SERVICE.md``
   agrees with the server, in both directions: every route in
   ``repro.service.server.ROUTES`` appears as a backticked
   `` `METHOD /path` `` token (and no documented route is unserved),
   and every v1 error code in ``repro.service.serialize.ERROR_CODES``
   appears as a ``| `code` | status |`` table row (and vice versa).
4. **Metrics conformance** — the observability reference
   ``docs/OBSERVABILITY.md`` agrees with the code's metric catalog
   (``repro.obs.metrics.METRIC_CATALOG``) in both directions: every
   catalogued metric name appears as a backticked ``facile_*`` token,
   and every backticked ``facile_*`` token names a catalogued metric
   (a doc cannot advertise a metric the registry never exports).

Run directly (exits non-zero and lists problems on failure)::

    python scripts/check_docs.py

or through the test suite (``tests/test_docs.py``).
"""

import os
import re
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         ".."))

#: Markdown inline links: [text](target).  Deliberately simple — the
#: docs do not use reference-style links or angle-bracket targets.
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

#: Link targets that are not files to resolve.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files(root: str = REPO_ROOT) -> List[str]:
    """The documentation set: README.md plus everything under docs/."""
    files = []
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        files.extend(os.path.join(docs_dir, name)
                     for name in sorted(os.listdir(docs_dir))
                     if name.endswith(".md"))
    return files


def extract_links(text: str) -> List[str]:
    """All inline link targets of a markdown document."""
    return LINK_RE.findall(text)


def broken_links(path: str) -> List[Tuple[str, str]]:
    """(target, reason) for every unresolvable internal link of *path*."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    problems = []
    for target in extract_links(text):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:  # pure in-page anchor
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), file_part))
        if not os.path.exists(resolved):
            problems.append((target, f"resolves to missing {resolved}"))
    return problems


def cli_subcommands() -> List[str]:
    """Every subcommand name registered on the ``facile`` parser."""
    import argparse

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.cli import build_parser

    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return list(action.choices)
    raise AssertionError("facile parser has no subparsers?")


def undocumented_subcommands(readme_path: str,
                             commands: Iterable[str]) -> List[str]:
    """Subcommands not mentioned as ``facile <name>`` in the README."""
    with open(readme_path, encoding="utf-8") as handle:
        text = handle.read()
    return [name for name in commands
            if not re.search(rf"facile\s+{re.escape(name)}\b", text)]


#: Backticked route tokens in SERVICE.md: `GET /health`, `POST /v1/...`
ROUTE_TOKEN_RE = re.compile(r"`(GET|POST)\s+(/[^`\s]*)`")

#: Error-code table rows in SERVICE.md: | `overloaded` | 429 | ...
ERROR_ROW_RE = re.compile(r"^\|\s*`([a-z_]+)`\s*\|\s*(\d{3})\s*\|",
                          re.MULTILINE)


def api_conformance_problems(root: str = REPO_ROOT) -> List[str]:
    """Drift between ``docs/SERVICE.md`` and the service (both ways)."""
    service_md = os.path.join(root, "docs", "SERVICE.md")
    if not os.path.exists(service_md):
        return ["docs/SERVICE.md is missing (the service reference)"]
    sys.path.insert(0, os.path.join(root, "src"))
    from repro.service.serialize import ERROR_CODES
    from repro.service.server import ROUTES

    with open(service_md, encoding="utf-8") as handle:
        text = handle.read()
    problems = []

    served = {(method, path) for method, paths in ROUTES.items()
              for path in paths}
    documented = set(ROUTE_TOKEN_RE.findall(text))
    for method, path in sorted(served - documented):
        problems.append(f"docs/SERVICE.md: served route `{method} "
                        f"{path}` is undocumented")
    for method, path in sorted(documented - served):
        problems.append(f"docs/SERVICE.md: documents `{method} {path}` "
                        "but the server does not serve it")

    codes = {(code, status) for status, code in ERROR_CODES.items()}
    rows = {(code, int(status))
            for code, status in ERROR_ROW_RE.findall(text)}
    for code, status in sorted(codes - rows):
        problems.append(f"docs/SERVICE.md: error code {code!r} "
                        f"(HTTP {status}) missing from the error-code "
                        "table")
    for code, status in sorted(rows - codes):
        problems.append(f"docs/SERVICE.md: error-code table lists "
                        f"{code!r} (HTTP {status}), which the server "
                        "does not emit")
    return problems


#: Backticked metric tokens in OBSERVABILITY.md: `facile_x_total`,
#: `facile_span_duration_ms{span=...}` (label hints are stripped).
METRIC_TOKEN_RE = re.compile(r"`(facile_[a-z0-9_]+)(?:\{[^`]*\})?`")


def metrics_conformance_problems(root: str = REPO_ROOT) -> List[str]:
    """Drift between ``docs/OBSERVABILITY.md`` and the metric catalog."""
    obs_md = os.path.join(root, "docs", "OBSERVABILITY.md")
    if not os.path.exists(obs_md):
        return ["docs/OBSERVABILITY.md is missing "
                "(the observability reference)"]
    sys.path.insert(0, os.path.join(root, "src"))
    from repro.obs.metrics import METRIC_CATALOG

    with open(obs_md, encoding="utf-8") as handle:
        text = handle.read()
    problems = []
    documented = set(METRIC_TOKEN_RE.findall(text))
    for name in sorted(set(METRIC_CATALOG) - documented):
        problems.append(f"docs/OBSERVABILITY.md: catalogued metric "
                        f"`{name}` is undocumented")
    for name in sorted(documented - set(METRIC_CATALOG)):
        problems.append(f"docs/OBSERVABILITY.md: documents `{name}`, "
                        "which is not in the metric catalog")
    return problems


def run_checks(root: str = REPO_ROOT) -> List[str]:
    """All problems found across the documentation set (empty = pass)."""
    problems = []
    files = markdown_files(root)
    if not files:
        return [f"no documentation files found under {root}"]
    readme = os.path.join(root, "README.md")
    if readme not in files:
        problems.append("README.md is missing")
    for path in files:
        rel = os.path.relpath(path, root)
        for target, reason in broken_links(path):
            problems.append(f"{rel}: broken link {target!r} ({reason})")
    if readme in files:
        for name in undocumented_subcommands(readme, cli_subcommands()):
            problems.append(
                f"README.md: CLI subcommand {name!r} is undocumented "
                f"(expected the text 'facile {name}')")
    problems.extend(api_conformance_problems(root))
    problems.extend(metrics_conformance_problems(root))
    return problems


def main() -> int:
    problems = run_checks()
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    files = len(markdown_files())
    commands = len(cli_subcommands())
    print(f"check_docs: OK ({files} files, {commands} CLI subcommands "
          "documented, all internal links resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
