#!/usr/bin/env python3
"""Perf-regression entry point.

Runs the prediction perf harness with a fixed seed, writes
``BENCH_predict.json`` next to the repository root, and exits non-zero
when any measured path regressed more than 20% (blocks/sec) against the
committed baseline.  Usage::

    python scripts/bench.py                # measure, write, gate
    python scripts/bench.py --no-check     # measure and write only
    python scripts/bench.py --size 300     # bigger, steadier numbers

All ``facile bench`` options are accepted (this is a thin wrapper around
``repro.cli``); see ``ROADMAP.md`` § Performance for how to read the
output.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--no-check" in argv:
        argv = [a for a in argv if a != "--no-check"]
    elif "--check" not in argv:
        argv = argv + ["--check"]
    sys.exit(main(["bench"] + argv))
