"""Figure 6: evolution of bottlenecks across microarchitectures (TPU).

Paper findings checked here:

* the share of Predec-bound benchmarks increases from SNB to RKL;
* the share of Ports-bound benchmarks decreases;
* flows are conserved (every benchmark appears in every generation).
"""

import pytest

from repro.eval import figures


@pytest.fixture(scope="module")
def flows(suite):
    return figures.figure6_bottleneck_evolution(suite)


def test_figure6(benchmark, suite, flows):
    def one_transition():
        return figures.figure6_bottleneck_evolution(
            suite, uarch_names=("SNB", "RKL"))

    benchmark.pedantic(one_transition, rounds=1, iterations=1)
    print()
    print(figures.render_figure6(flows))


def test_predec_share_grows(flows):
    first = flows[0]["from_shares"]   # SNB
    last = flows[-1]["to_shares"]     # RKL
    assert last["Predec"] > first["Predec"]


def test_ports_share_shrinks(flows):
    first = flows[0]["from_shares"]
    last = flows[-1]["to_shares"]
    assert last["Ports"] < first["Ports"]


def test_flow_conservation(flows, suite):
    for flow in flows:
        outgoing = sum(sum(row.values()) for row in flow["matrix"].values())
        assert outgoing == len(suite)
        assert sum(flow["from_shares"].values()) == len(suite)
        assert sum(flow["to_shares"].values()) == len(suite)
