"""Ablation: pairwise port-combination heuristic vs. the exact LP bound.

§4.8 claims the heuristic gives the same bound as the uops.info LP on all
BHive benchmarks, while being much cheaper.  Both claims are checked.
"""

import time

import pytest

from repro.core.ports import ports_bound, ports_bound_lp
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block, macro_ops
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def prepared_ops(suite):
    cfg = uarch_by_name("SKL")
    db = UopsDatabase(cfg)
    return [macro_ops(analyze_block(b.block_l, cfg, db), cfg)
            for b in suite]


def test_heuristic_equals_lp_on_suite(prepared_ops):
    for ops in prepared_ops:
        assert ports_bound(ops).bound == ports_bound_lp(ops)


def test_heuristic_speed(benchmark, prepared_ops):
    def run_heuristic():
        return [ports_bound(ops).bound for ops in prepared_ops]

    benchmark(run_heuristic)


def test_heuristic_faster_than_lp(prepared_ops):
    start = time.perf_counter()
    for ops in prepared_ops:
        ports_bound(ops)
    heuristic_time = time.perf_counter() - start

    start = time.perf_counter()
    for ops in prepared_ops:
        ports_bound_lp(ops)
    lp_time = time.perf_counter() - start

    print(f"\nheuristic {1000 * heuristic_time:.1f} ms vs "
          f"LP {1000 * lp_time:.1f} ms "
          f"({lp_time / heuristic_time:.0f}x)")
    assert heuristic_time < lp_time
