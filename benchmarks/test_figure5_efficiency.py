"""Figure 5: per-benchmark prediction time of every tool.

Paper findings checked here:

* Facile is orders of magnitude faster than the simulation-based uiCA;
* the learned analogs sit between (noting that our Ithemal analog is a
  linear model and therefore *faster* than the paper's LSTM — see
  EXPERIMENTS.md).
"""

import pytest

from repro.eval import figures


@pytest.fixture(scope="module")
def tool_times(small_suite):
    return figures.figure5_tool_times(small_suite, uarch="SKL")


def test_figure5(benchmark, small_suite, tool_times):
    from repro.eval.timing import time_predictor
    from repro.baselines import all_predictors
    from repro.core.components import ThroughputMode
    from repro.uarch import uarch_by_name
    from repro.uops.database import UopsDatabase

    cfg = uarch_by_name("SKL")
    facile = all_predictors(cfg, UopsDatabase(cfg), ["Facile"])[0]

    def facile_timing():
        return time_predictor(facile, small_suite,
                              ThroughputMode.UNROLLED)

    benchmark.pedantic(facile_timing, rounds=1, iterations=1)
    print()
    print(f"{'tool':<13} {'TPU ms':>10} {'TPL ms':>10}")
    for name, times in tool_times.items():
        print(f"{name:<13} {times['TPU']:>10.3f} {times['TPL']:>10.3f}")


def test_facile_much_faster_than_simulators(tool_times):
    facile = tool_times["Facile"]
    uica = tool_times["uiCA"]
    for mode in ("TPU", "TPL"):
        assert uica[mode] > 10 * facile[mode]


def test_facile_absolute_speed(tool_times):
    # Sub-10ms per benchmark, like the original (~0.1 ms in C-like
    # settings; Python dominates the constant factor here and in the
    # paper's tooling alike).
    assert tool_times["Facile"]["TPU"] < 10.0
    assert tool_times["Facile"]["TPL"] < 10.0
