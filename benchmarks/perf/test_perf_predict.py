"""Perf harness: blocks/sec of the engine's prediction paths.

This bench runs the same measurement kernel as ``scripts/bench.py``
(single-block, cached-batch, parallel-batch, and the HTTP service
under concurrent bulk clients) on the fixed-seed suite.
Set ``REPRO_BENCH_WRITE=1`` to also refresh ``BENCH_predict.json`` at
the repository root; by default the payload is written to a temporary
file only, so plain test runs never clobber the committed baseline with
machine-local numbers (``scripts/bench.py`` is the canonical writer).
Qualitative findings asserted here:

* the cached batch path is substantially faster than the seed-style
  per-call path (the paper's speed claim is the whole point of Facile,
  and re-deriving the analysis per call was the repo's slowest path);
* all paths produce positive, finite throughput numbers.

Speedup *thresholds* are asserted conservatively — the gate for the
committed baseline is ``scripts/bench.py`` (20% tolerance), not pytest.
"""

import os

import pytest

from repro.engine import bench as bench_mod

pytestmark = pytest.mark.perf

BENCH_JSON = os.path.abspath(os.path.join(
    os.path.dirname(__file__), "..", "..", "BENCH_predict.json"))

SIZE = int(os.environ.get("REPRO_BENCH_PERF_SIZE",
                          str(bench_mod.DEFAULT_SIZE)))


@pytest.fixture(scope="module")
def payload():
    result = bench_mod.run_perf_harness(size=SIZE)
    print()
    print(bench_mod.render_bench(result))
    return result


def test_payload_structure(payload):
    assert payload["schema"] == 2
    assert payload["suite"] == {"size": SIZE,
                                "seed": bench_mod.DEFAULT_SEED}
    for abbrev in bench_mod.DEFAULT_UARCHS:
        for mode in ("unrolled", "loop"):
            by_path = payload["results"][abbrev][mode]
            assert set(by_path) == set(bench_mod.PATHS)
            for numbers in by_path.values():
                assert numbers["blocks_per_sec"] > 0
                assert numbers["n_blocks"] == SIZE


def test_service_throughput_recorded(payload):
    # The service load generator (concurrent bulk-predict clients over
    # a real socket) must land in the payload; no speed floor is
    # asserted — per-request HTTP overhead dominates on tiny suites.
    for abbrev in bench_mod.DEFAULT_UARCHS:
        for mode in ("unrolled", "loop"):
            service = payload["results"][abbrev][mode]["service"]
            assert service["blocks_per_sec"] > 0
            # Steady-state latency percentiles (schema 2): positive,
            # ordered, and in milliseconds (no floor — machine-local).
            assert 0 < service["p50_ms"] <= service["p99_ms"]
            speedups = payload["speedups"][abbrev][mode]
            assert "service_vs_single" in speedups
    assert payload["service_clients"] == bench_mod.DEFAULT_SERVICE_CLIENTS


def test_cached_batch_is_faster_than_single(payload):
    # Structurally ~6-12x; the loose threshold only guards against the
    # cache being disconnected, not against timing noise.
    for abbrev, by_mode in payload["speedups"].items():
        for mode, speedups in by_mode.items():
            assert speedups["cached_vs_single"] > 1.3, (abbrev, mode)


def test_writes_bench_json(payload, tmp_path):
    if os.environ.get("REPRO_BENCH_WRITE"):
        target = BENCH_JSON
    else:
        target = str(tmp_path / "BENCH_predict.json")
    bench_mod.write_bench_json(payload, target)
    reloaded = bench_mod.load_bench_json(target)
    assert reloaded == payload
    # A fresh identical-config run never counts as a regression of
    # itself.
    assert bench_mod.find_regressions(payload, reloaded) == []
