"""Perf harness: blocks/sec of the engine's prediction paths.

This bench runs the same measurement kernel as ``scripts/bench.py``
(columnar single-block, seed-equivalent single-block, cached-batch,
parallel-batch, and the HTTP service under concurrent bulk clients) on
the fixed-seed suite.
Set ``REPRO_BENCH_WRITE=1`` to also refresh ``BENCH_predict.json`` at
the repository root; by default the payload is written to a temporary
file only, so plain test runs never clobber the committed baseline with
machine-local numbers (``scripts/bench.py`` is the canonical writer).
Qualitative findings asserted here:

* the columnar core predicts never-seen blocks ≥5× faster than the
  seed-equivalent per-call path (the columnar rewrite's acceptance
  gate; measured well above 50× in practice);
* the cached batch path is substantially faster than the seed-style
  per-call path (the paper's speed claim is the whole point of Facile,
  and re-deriving the analysis per call was the repo's slowest path);
* all paths produce positive, finite throughput numbers.

Speedup *thresholds* are asserted conservatively — the gate for the
committed baseline is ``scripts/bench.py`` (20% tolerance), not pytest.
"""

import os

import pytest

from repro.engine import bench as bench_mod

pytestmark = pytest.mark.perf

BENCH_JSON = os.path.abspath(os.path.join(
    os.path.dirname(__file__), "..", "..", "BENCH_predict.json"))

SIZE = int(os.environ.get("REPRO_BENCH_PERF_SIZE",
                          str(bench_mod.DEFAULT_SIZE)))


@pytest.fixture(scope="module")
def payload():
    result = bench_mod.run_perf_harness(size=SIZE)
    print()
    print(bench_mod.render_bench(result))
    return result


def test_payload_structure(payload):
    from repro.eval.timing import VARIANT_PASSES

    assert payload["schema"] == 4
    assert payload["suite"] == {"size": SIZE,
                                "seed": bench_mod.DEFAULT_SEED}
    for abbrev in bench_mod.DEFAULT_UARCHS:
        for mode in ("unrolled", "loop"):
            by_path = payload["results"][abbrev][mode]
            assert set(by_path) == set(bench_mod.PATHS)
            for path, numbers in by_path.items():
                assert numbers["blocks_per_sec"] > 0
                # Schema 4: the observability record rides along.
                assert numbers["peak_rss_kb"] is None \
                    or numbers["peak_rss_kb"] > 0
                assert isinstance(numbers["metrics"], dict)
                # The single paths time the payload-variant stream
                # (VARIANT_PASSES never-seen copies of the suite); the
                # batch paths time the suite itself.
                if path in ("single", "single_object"):
                    assert numbers["n_blocks"] == SIZE * VARIANT_PASSES
                else:
                    assert numbers["n_blocks"] == SIZE


def test_service_throughput_recorded(payload):
    # The service load generator (concurrent bulk-predict clients over
    # a real socket) must land in the payload; no speed floor is
    # asserted — per-request HTTP overhead dominates on tiny suites.
    for abbrev in bench_mod.DEFAULT_UARCHS:
        for mode in ("unrolled", "loop"):
            service = payload["results"][abbrev][mode]["service"]
            assert service["blocks_per_sec"] > 0
            # Steady-state latency percentiles (schema 2): positive,
            # ordered, and in milliseconds (no floor — machine-local).
            assert 0 < service["p50_ms"] <= service["p99_ms"]
            speedups = payload["speedups"][abbrev][mode]
            assert "service_vs_single_object" in speedups
    assert payload["service_clients"] == bench_mod.DEFAULT_SERVICE_CLIENTS


def test_columnar_single_is_5x_faster_than_object(payload):
    # The columnar rewrite's acceptance gate: ≥5× on never-seen blocks
    # versus the seed-equivalent path.  Measured two orders of
    # magnitude above this in practice — the margin absorbs any CI-box
    # timing noise.
    for abbrev, by_mode in payload["speedups"].items():
        for mode, speedups in by_mode.items():
            assert speedups["single_vs_single_object"] >= 5, \
                (abbrev, mode)


def test_cached_batch_is_faster_than_single_object(payload):
    # Structurally ~6-12x; the loose threshold only guards against the
    # cache being disconnected, not against timing noise.
    for abbrev, by_mode in payload["speedups"].items():
        for mode, speedups in by_mode.items():
            assert speedups["cached_vs_single_object"] > 1.3, \
                (abbrev, mode)


def test_writes_bench_json(payload, tmp_path):
    if os.environ.get("REPRO_BENCH_WRITE"):
        target = BENCH_JSON
    else:
        target = str(tmp_path / "BENCH_predict.json")
    bench_mod.write_bench_json(payload, target)
    reloaded = bench_mod.load_bench_json(target)
    assert reloaded == payload
    # A fresh identical-config run never counts as a regression of
    # itself.
    assert bench_mod.find_regressions(payload, reloaded) == []
