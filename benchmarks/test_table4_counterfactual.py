"""Table 4: speedup when idealizing a single component (TPU).

Paper findings checked here:

* the Predec improvement potential grows from SNB to RKL;
* the Ports potential shrinks over the same span;
* idealizing Issue alone yields (almost) nothing;
* designs are balanced: no component offers a dramatic average speedup.
"""

import pytest

from repro.eval import tables


@pytest.fixture(scope="module")
def table4_data(suite):
    return tables.table4(suite)


def test_table4(benchmark, suite, table4_data):
    def one_uarch():
        from repro.core.counterfactual import speedup_table
        from repro.core.components import Component
        from repro.uarch import uarch_by_name
        return speedup_table(uarch_by_name("RKL"),
                             suite.blocks(loop=False),
                             (Component.PREDEC, Component.PORTS))

    benchmark.pedantic(one_uarch, rounds=1, iterations=1)
    print()
    print(tables.render_table4(table4_data))


def test_predec_potential_grows_over_generations(table4_data):
    assert table4_data["RKL"]["Predec"] > table4_data["SNB"]["Predec"]


def test_ports_potential_shrinks_over_generations(table4_data):
    assert table4_data["RKL"]["Ports"] < table4_data["SNB"]["Ports"]


def test_issue_idealization_is_nearly_free(table4_data):
    for row in table4_data.values():
        assert row["Issue"] < 1.05


def test_balanced_designs(table4_data):
    for uarch, row in table4_data.items():
        for component, speedup in row.items():
            assert 1.0 <= speedup < 3.0, (uarch, component)
