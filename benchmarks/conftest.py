"""Shared fixtures for the experiment-regeneration benches.

Each bench regenerates one table or figure of the paper on a reduced
suite (sizes chosen so the whole ``pytest benchmarks/`` run finishes in
minutes) and asserts the paper's qualitative findings.  For larger,
publication-style runs use the CLI (``facile table2 --size 300``) or set
``REPRO_BENCH_SUITE_SIZE``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.bhive.suite import BenchmarkSuite

SUITE_SIZE = int(os.environ.get("REPRO_BENCH_SUITE_SIZE", "60"))
SUITE_SEED = int(os.environ.get("REPRO_BENCH_SUITE_SEED", "2023"))


@pytest.fixture(scope="session")
def suite():
    """The benchmark suite shared by all benches."""
    return BenchmarkSuite.generate(SUITE_SIZE, SUITE_SEED)


@pytest.fixture(scope="session")
def small_suite():
    """A smaller suite for the expensive timing benches."""
    return BenchmarkSuite.generate(max(20, SUITE_SIZE // 3), SUITE_SEED)
