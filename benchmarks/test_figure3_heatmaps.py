"""Figure 3: measured-vs-predicted heatmaps on Rocket Lake (BHiveL).

Paper findings checked here:

* Facile and uiCA concentrate on the diagonal;
* llvm-mca and CQA scatter well off it;
* Facile is always optimistic (predicted <= measured).
"""

import pytest

from repro.eval import figures


@pytest.fixture(scope="module")
def heatmaps(suite):
    return {h.predictor: h
            for h in figures.figure3_heatmaps(suite, uarch="RKL")}


def test_figure3(benchmark, suite, heatmaps):
    def facile_heatmap():
        return figures.figure3_heatmaps(suite, uarch="RKL",
                                        predictors=("Facile",))

    benchmark.pedantic(facile_heatmap, rounds=1, iterations=1)
    print()
    for name, heatmap in heatmaps.items():
        print(f"{name:<13} diagonal fraction: "
              f"{heatmap.diagonal_fraction:.2f}")


def test_accurate_tools_sit_on_diagonal(heatmaps):
    assert heatmaps["Facile"].diagonal_fraction > 0.75
    assert heatmaps["uiCA"].diagonal_fraction > 0.85


def test_inaccurate_tools_scatter(heatmaps):
    assert heatmaps["llvm-mca-15"].diagonal_fraction < \
        heatmaps["Facile"].diagonal_fraction
    assert heatmaps["CQA"].diagonal_fraction < \
        heatmaps["Facile"].diagonal_fraction


def test_facile_always_optimistic(suite):
    fraction = figures.optimism_fraction(suite, uarch="RKL")
    assert fraction == pytest.approx(1.0)
