"""Table 2: predictor accuracy comparison (MAPE + Kendall's tau).

Paper findings checked here:

* Facile performs similarly to uiCA and significantly better than all
  other predictors, on both BHiveU and BHiveL;
* predictors committed to the other throughput notion degrade on the
  mismatched suite (e.g. CQA on BHiveU, TPU-trained learned models on
  BHiveL).
"""

import pytest

from repro.eval import tables
from repro.uarch import uarch_by_name

#: Reduced µarch set for the bench: newest, the JCC-erratum generation,
#: and the oldest.
BENCH_UARCHS = ("RKL", "SKL", "SNB")


@pytest.fixture(scope="module")
def table2_rows(suite):
    return tables.table2(suite,
                         [uarch_by_name(u) for u in BENCH_UARCHS])


def test_table2(benchmark, suite, table2_rows):
    # The heavy lifting is cached by the fixture; benchmark the Facile
    # evaluation pass itself (prediction + metrics on one µarch).
    cfg = uarch_by_name("SKL")

    def facile_pass():
        return tables.table2(suite, [cfg], ["Facile"])

    rows = benchmark.pedantic(facile_pass, rounds=1, iterations=1)
    assert rows[0].mape_u < 0.05

    print()
    print(tables.render_table2(table2_rows))


@pytest.mark.parametrize("uarch", BENCH_UARCHS)
def test_facile_matches_uica_and_beats_others(table2_rows, uarch):
    rows = {r.predictor: r for r in table2_rows if r.uarch == uarch}
    facile, uica = rows["Facile"], rows["uiCA"]
    assert facile.mape_u < 0.05 and facile.mape_l < 0.05
    assert uica.mape_u < 0.02 and uica.mape_l < 0.02
    for name, row in rows.items():
        if name in ("Facile", "uiCA"):
            continue
        assert row.mape_u > facile.mape_u, name
        assert row.mape_l > facile.mape_l, name
        assert row.kendall_u < facile.kendall_u, name


def test_notion_mismatch_shapes(table2_rows):
    rows = {r.predictor: r for r in table2_rows if r.uarch == "SKL"}
    # CQA (loop notion) is much better on BHiveL than on BHiveU.
    assert rows["CQA"].mape_l < rows["CQA"].mape_u
    # TPU-trained learned models collapse on BHiveL.
    assert rows["Ithemal"].mape_l > 2 * rows["Ithemal"].mape_u
    assert rows["learning-bl"].mape_l > rows["learning-bl"].mape_u
