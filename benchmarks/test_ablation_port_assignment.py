"""Ablation: how much of Facile's optimism stems from ideal ports?

Facile assumes the renamer distributes µops optimally (§4.8).  The oracle
uses stale pressure counters (real behaviour); a variant with live
counters sits between the two.  This bench quantifies the gap, which is
the main component of Facile's (always optimistic) error.
"""

import pytest

from repro.core.components import ThroughputMode
from repro.core.model import Facile
from repro.sim.backend import SimOptions
from repro.sim.simulator import Simulator
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def assignment_gap(small_suite):
    cfg = uarch_by_name("SKL")
    db = UopsDatabase(cfg)
    stale = Simulator(cfg, SimOptions(), db)
    live = Simulator(cfg, SimOptions(live_port_counters=True), db)
    model = Facile(cfg, db=db)

    records = []
    for bench in small_suite:
        block = bench.block_u
        records.append({
            "stale": stale.throughput(block, ThroughputMode.UNROLLED),
            "live": live.throughput(block, ThroughputMode.UNROLLED),
            "facile": model.predict_unrolled(block).cycles,
        })
    return records


def test_port_assignment_ablation(benchmark, small_suite, assignment_gap):
    cfg = uarch_by_name("SKL")
    sim = Simulator(cfg)
    block = small_suite[0].block_u

    benchmark.pedantic(
        lambda: sim.throughput(block, ThroughputMode.UNROLLED),
        rounds=3, iterations=1)

    stale_gap = sum(r["stale"] - r["facile"] for r in assignment_gap)
    live_gap = sum(r["live"] - r["facile"] for r in assignment_gap)
    print(f"\nmean gap to Facile: stale {stale_gap/len(assignment_gap):.3f}"
          f" cycles, live {live_gap/len(assignment_gap):.3f} cycles")


def test_facile_assumes_best_case(assignment_gap):
    # Facile's ideal-port assumption lower-bounds both simulator variants
    # on every block, up to the 2-decimal rounding of predictions and the
    # sub-percent decode/predecode coupling documented in DESIGN.md.
    tolerance = 1.01
    optimistic = sum(r["facile"] <= r["stale"] * tolerance + 0.01
                     for r in assignment_gap)
    assert optimistic == len(assignment_gap)


def test_gap_is_small_on_average(assignment_gap):
    rel = [
        (r["stale"] - r["facile"]) / r["stale"]
        for r in assignment_gap if r["stale"] > 0
    ]
    assert sum(rel) / len(rel) < 0.08
