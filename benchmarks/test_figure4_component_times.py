"""Figure 4: distribution of Facile's per-component execution times.

Paper findings checked here:

* the shared overhead (parsing/disassembly) plus Precedence dominate the
  total runtime (≈90% in the paper);
* Predec and Dec cost less under TPL than TPU (they are skipped for
  loops served from the DSB/LSD).
"""

import pytest

from repro.eval import figures


@pytest.fixture(scope="module")
def component_times(small_suite):
    return figures.figure4_component_times(small_suite, uarch="SKL")


def test_figure4(benchmark, small_suite, component_times):
    from repro.eval.timing import time_facile_components
    from repro.core.components import ThroughputMode
    from repro.uarch import uarch_by_name

    def tpu_timing():
        return time_facile_components(uarch_by_name("SKL"), small_suite,
                                      ThroughputMode.UNROLLED)

    benchmark.pedantic(tpu_timing, rounds=1, iterations=1)
    print()
    for mode, results in component_times.items():
        print(f"-- {mode}")
        for name, timing in results.items():
            print(f"   {name:<11} mean {timing.mean_ms:7.3f} ms")


def test_overhead_and_precedence_dominate(component_times):
    for mode in ("TPU", "TPL"):
        results = component_times[mode]
        total = results["FACILE"].mean_ms
        dominant = (results["Overhead"].mean_ms
                    + results["Precedence"].mean_ms)
        assert dominant > 0.5 * total


def test_components_cheaper_than_whole_model(component_times):
    for mode in ("TPU", "TPL"):
        results = component_times[mode]
        for name, timing in results.items():
            if name in ("FACILE", "Overhead"):
                continue
            assert timing.mean_ms <= results["FACILE"].mean_ms * 1.10, name
