"""Table 3: influence of Facile's components on accuracy.

Paper findings checked here (for Rocket Lake):

* replacing Predec with SimplePredec significantly hurts accuracy;
* no single component predicts throughput accurately on its own
  ("only X" rows), and "only DSB" under TPU yields 100% MAPE;
* excluding Predec, Ports, or Precedence hurts notably; excluding Issue
  or DSB barely matters on RKL.
"""

import pytest

from repro.eval import tables


@pytest.fixture(scope="module")
def table3_rows(suite):
    return tables.table3(suite, uarch_names=("RKL", "SKL", "SNB"))


def test_table3(benchmark, suite, table3_rows):
    def rkl_ablation():
        return tables.table3(suite, uarch_names=("RKL",))

    rows = benchmark.pedantic(rkl_ablation, rounds=1, iterations=1)
    assert rows
    print()
    print(tables.render_table3(table3_rows))


def _rows_for(table3_rows, uarch):
    return {r.variant: r for r in table3_rows if r.uarch == uarch}


def test_simple_predec_hurts(table3_rows):
    rkl = _rows_for(table3_rows, "RKL")
    assert rkl["Facile w/ SimplePredec"].mape_u > 2 * rkl["Facile"].mape_u


def test_single_components_insufficient(table3_rows):
    rkl = _rows_for(table3_rows, "RKL")
    for variant in ("only Predec", "only Dec", "only Issue", "only Ports",
                    "only Precedence"):
        assert rkl[variant].mape_u > 2 * rkl["Facile"].mape_u, variant


def test_only_dsb_is_all_zeros_under_tpu(table3_rows):
    rkl = _rows_for(table3_rows, "RKL")
    assert rkl["only DSB"].mape_u == pytest.approx(1.0)


def test_composite_pairs_better_than_singles(table3_rows):
    rkl = _rows_for(table3_rows, "RKL")
    assert rkl["only Precedence+Ports"].mape_l < \
        rkl["only Precedence"].mape_l
    assert rkl["only Predec+Ports"].mape_u < rkl["only Predec"].mape_u


def test_exclusions_hurt_where_paper_says(table3_rows):
    rkl = _rows_for(table3_rows, "RKL")
    full = rkl["Facile"]
    assert rkl["Facile w/o Predec"].mape_u > 2 * full.mape_u
    assert rkl["Facile w/o Ports"].mape_u > full.mape_u
    assert rkl["Facile w/o Precedence"].mape_l > full.mape_l
    # Excluding Issue has almost no effect on RKL (paper: 0.42 -> 0.43).
    assert rkl["Facile w/o Issue"].mape_u < full.mape_u + 0.02
