"""Table 1: the evaluated microarchitectures."""

from repro.eval import tables


def test_table1(benchmark):
    rows = benchmark(tables.table1)
    assert len(rows) == 9
    assert [r["abbr"] for r in rows] == [
        "RKL", "TGL", "ICL", "CLX", "SKL", "BDW", "HSW", "IVB", "SNB"]
    print()
    print(tables.render_table1())
