"""Ablation: Howard's algorithm vs. Lawler's for the Precedence bound.

The paper uses Howard's value iteration [16, 18]; this bench confirms it
agrees with the parametric-search reference on the full suite and
quantifies the speed difference that motivates the choice.
"""

import time

import pytest

from repro.graph.depgraph import build_dependence_graph
from repro.graph.howard import howard_max_cycle_ratio
from repro.graph.lawler import lawler_max_cycle_ratio
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def graphs(suite):
    db = UopsDatabase(uarch_by_name("SKL"))
    return [build_dependence_graph(b.block_l, db) for b in suite]


def test_algorithms_agree(graphs):
    for graph in graphs:
        howard = howard_max_cycle_ratio(graph)[0]
        lawler = lawler_max_cycle_ratio(graph)
        assert howard == lawler


def test_howard_speed(benchmark, graphs):
    benchmark(lambda: [howard_max_cycle_ratio(g)[0] for g in graphs])


def test_howard_vs_lawler_speed(graphs):
    start = time.perf_counter()
    for graph in graphs:
        howard_max_cycle_ratio(graph)
    howard_time = time.perf_counter() - start

    start = time.perf_counter()
    for graph in graphs:
        lawler_max_cycle_ratio(graph)
    lawler_time = time.perf_counter() - start

    print(f"\nHoward {1000 * howard_time:.1f} ms vs "
          f"Lawler {1000 * lawler_time:.1f} ms "
          f"({lawler_time / max(howard_time, 1e-9):.0f}x)")
    assert howard_time < lawler_time
