"""Family identity and cross-campaign subsumption tests."""

import pytest

from repro.discovery.abstraction import AbstractBlock
from repro.discovery.subsumption import (
    KnownFamily,
    family_id,
    load_known_families,
    subsuming_family,
)
from repro.isa.assembler import assemble
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

_PAIR = ("Facile", "llvm-mca-15")


@pytest.fixture(scope="module")
def db():
    return UopsDatabase(uarch_by_name("SKL"))


def _abstract(asm, db):
    return AbstractBlock.from_instructions(assemble(asm), db)


class TestFamilyId:
    def test_stable_and_short(self, db):
        abstract = _abstract("add rax, rbx", db)
        first = family_id(abstract, "SKL", "unrolled", _PAIR)
        second = family_id(_abstract("add rax, rbx", db), "SKL",
                           "unrolled", _PAIR)
        assert first == second
        assert len(first) == 12

    def test_context_is_part_of_the_identity(self, db):
        abstract = _abstract("add rax, rbx", db)
        base = family_id(abstract, "SKL", "unrolled", _PAIR)
        assert family_id(abstract, "RKL", "unrolled", _PAIR) != base
        assert family_id(abstract, "SKL", "loop", _PAIR) != base
        assert family_id(abstract, "SKL", "unrolled",
                         ("Facile", "uiCA")) != base

    def test_widening_changes_the_identity(self, db):
        abstract = _abstract("add rax, rbx", db)
        base = family_id(abstract, "SKL", "unrolled", _PAIR)
        widened = abstract.clone()
        widened.insns[0].widen("mnemonic")
        assert family_id(widened, "SKL", "unrolled", _PAIR) != base


class TestLoadKnownFamilies:
    def _entry(self, db, **overrides):
        abstract = _abstract("add rax, rbx", db)
        entry = {
            "id": family_id(abstract, "SKL", "unrolled", _PAIR),
            "uarch": "SKL",
            "mode": "unrolled",
            "pair": list(_PAIR),
            "abstraction": abstract.to_json(),
        }
        entry.update(overrides)
        return entry

    def test_round_trips_a_report_family(self, db):
        (known,) = load_known_families(
            {"families": [self._entry(db)]})
        assert known.uarch == "SKL" and known.pair == _PAIR
        assert known.abstraction.subsumes(_abstract("add rax, rbx", db))

    def test_reports_without_families_contribute_none(self):
        assert load_known_families({}) == []
        assert load_known_families({"families": []}) == []

    def test_malformed_entries_raise(self, db):
        entry = self._entry(db)
        del entry["abstraction"]
        with pytest.raises(ValueError):
            load_known_families({"families": [entry]})
        with pytest.raises(ValueError):
            load_known_families({"families": [{"id": "x", "pair": []}]})


class TestSubsumingFamily:
    def _known(self, abstract, uarch="SKL", mode="unrolled", pair=_PAIR):
        return KnownFamily(
            id=family_id(abstract, uarch, mode, pair), uarch=uarch,
            mode=mode, pair=tuple(pair), abstraction=abstract)

    def test_widened_family_subsumes_its_witness(self, db):
        widened = _abstract("add rax, rbx", db)
        widened.insns[0].widen("mnemonic")
        known = self._known(widened)
        # `sub` shares add's archetype/ports/width — only the mnemonic
        # differs, which the widened family admits.
        hit = subsuming_family([known], "SKL", "unrolled", _PAIR,
                               _abstract("sub rax, rbx", db))
        assert hit is known

    def test_context_mismatch_never_subsumes(self, db):
        widened = _abstract("add rax, rbx", db)
        widened.insns[0].widen("mnemonic")
        known = self._known(widened)
        base = _abstract("add rax, rbx", db)
        assert subsuming_family([known], "RKL", "unrolled", _PAIR,
                                base) is None
        assert subsuming_family([known], "SKL", "loop", _PAIR,
                                base) is None
        assert subsuming_family([known], "SKL", "unrolled",
                                ("Facile", "uiCA"), base) is None

    def test_unrelated_abstraction_is_not_subsumed(self, db):
        known = self._known(_abstract("add rax, rbx", db))
        assert subsuming_family([known], "SKL", "unrolled", _PAIR,
                                _abstract("vaddps ymm0, ymm1, ymm2",
                                          db)) is None
