"""Campaign checkpoints, resume determinism, and graceful interruption."""

import json

import pytest

from repro.discovery import (
    CampaignConfig,
    CampaignInterrupted,
    CheckpointError,
    CheckpointStore,
    campaign_report,
    render_json,
    render_markdown,
    run_campaign,
)
from repro.discovery import campaign as campaign_mod
from repro.discovery.checkpoint import SCHEMA

CONFIG = CampaignConfig(seed=0, budget=20, uarchs=("SKL",),
                        predictors=("Facile", "uiCA"), modes=("loop",),
                        threshold=0.2)


@pytest.fixture(scope="module")
def golden():
    return render_json(campaign_report(run_campaign(CONFIG)))


class TestStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.json"), CONFIG)
        store.put("SKL", "loop", "4801d8", {"Facile": 1.0, "oracle": 1.0})
        assert store.get("SKL", "loop", "4801d8") == {"Facile": 1.0,
                                                      "oracle": 1.0}
        assert store.get("SKL", "loop", "ffffff") is None
        assert len(store) == 1

    def test_flush_writes_canonical_schema(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(str(path), CONFIG)
        store.put("SKL", "loop", "90", {"oracle": 1.0})
        store.flush()
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA
        assert data["config"]["seed"] == CONFIG.seed
        assert "SKL|loop|90" in data["evaluations"]
        # Canonical: a second flush of the same state is byte-identical.
        first = path.read_bytes()
        store.flush()
        assert path.read_bytes() == first

    def test_periodic_flush_cadence(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(str(path), CONFIG, every=2)
        store.put("SKL", "loop", "90", {"oracle": 1.0})
        assert not path.exists()  # 1 put < cadence
        store.put("SKL", "loop", "91", {"oracle": 1.0})
        assert path.exists()      # cadence reached -> atomic write
        assert store.flushes == 1

    def test_resume_rejects_mismatched_config(self, tmp_path):
        path = tmp_path / "ck.json"
        CheckpointStore(str(path), CONFIG).flush()
        other = CampaignConfig(seed=1, budget=20, uarchs=("SKL",),
                               predictors=("Facile", "uiCA"),
                               modes=("loop",), threshold=0.2)
        with pytest.raises(CheckpointError, match="different"):
            CheckpointStore.resume(str(path), other)

    def test_resume_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(CheckpointError, match="cannot read"):
            CheckpointStore.resume(str(missing), CONFIG)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            CheckpointStore.resume(str(bad), CONFIG)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(CheckpointError, match="schema"):
            CheckpointStore.resume(str(wrong), CONFIG)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path / "ck.json"), CONFIG, every=0)


class TestResumeDeterminism:
    def test_checkpointed_run_matches_plain_run(self, tmp_path, golden):
        store = CheckpointStore(str(tmp_path / "ck.json"), CONFIG,
                                every=5)
        report = render_json(campaign_report(
            run_campaign(CONFIG, checkpoint=store)))
        assert report == golden

    def test_resume_replays_byte_identically(self, tmp_path, golden):
        # First run fills the checkpoint; the resumed run reads every
        # evaluation back from it and must render identical bytes.
        path = str(tmp_path / "ck.json")
        run_campaign(CONFIG,
                     checkpoint=CheckpointStore(path, CONFIG, every=5))
        resumed = CheckpointStore.resume(path, CONFIG)
        report = render_json(campaign_report(
            run_campaign(CONFIG, checkpoint=resumed)))
        assert report == golden
        assert resumed.hits > 0

    def test_partial_checkpoint_resumes_byte_identically(self, tmp_path,
                                                         golden):
        # Simulate an interrupt: keep only half the evaluations, as if
        # the campaign died between two periodic flushes.
        path = tmp_path / "ck.json"
        run_campaign(CONFIG, checkpoint=CheckpointStore(str(path),
                                                        CONFIG))
        data = json.loads(path.read_text())
        keys = sorted(data["evaluations"])
        data["evaluations"] = {k: data["evaluations"][k]
                               for k in keys[:len(keys) // 2]}
        path.write_text(json.dumps(data))
        resumed = CheckpointStore.resume(str(path), CONFIG)
        report = render_json(campaign_report(
            run_campaign(CONFIG, checkpoint=resumed)))
        assert report == golden

    def test_incomplete_entries_are_recomputed(self, tmp_path, golden):
        # An entry missing one of this campaign's tools (e.g. recorded
        # while a breaker was open) must not substitute for evaluation.
        path = tmp_path / "ck.json"
        run_campaign(CONFIG, checkpoint=CheckpointStore(str(path),
                                                        CONFIG))
        data = json.loads(path.read_text())
        for values in data["evaluations"].values():
            values.pop("uiCA", None)
        path.write_text(json.dumps(data))
        resumed = CheckpointStore.resume(str(path), CONFIG)
        report = render_json(campaign_report(
            run_campaign(CONFIG, checkpoint=resumed)))
        assert report == golden


class TestInterruption:
    def test_keyboard_interrupt_carries_partial_result(self, tmp_path,
                                                       monkeypatch):
        # Two µarchs; the second one is interrupted mid-campaign.  The
        # partial result keeps the first µarch's findings and the
        # report says so.
        config = CampaignConfig(seed=0, budget=10, uarchs=("SKL", "RKL"),
                                predictors=("Facile", "uiCA"),
                                modes=("loop",), threshold=0.2)
        real = campaign_mod._hunt_uarch

        def interruptible(abbrev, *args, **kwargs):
            if abbrev == "RKL":
                raise KeyboardInterrupt()
            return real(abbrev, *args, **kwargs)

        monkeypatch.setattr(campaign_mod, "_hunt_uarch", interruptible)
        with pytest.raises(CampaignInterrupted) as exc:
            run_campaign(config)
        result = exc.value.result
        assert result.partial
        assert set(result.stats) == {"SKL"}
        report = campaign_report(result)
        assert report["partial"] is True
        assert "PARTIAL" in render_markdown(report)

    def test_clean_report_is_not_partial(self, golden):
        report = json.loads(golden)
        assert report["partial"] is False
        assert report["incidents"] == []
