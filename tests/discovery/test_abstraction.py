"""Feature-lattice and abstract-block tests (no simulator runs)."""

import json
import random

import pytest

from repro.discovery.abstraction import (
    AbstractBlock,
    FEATURE_ORDER,
    PowerSetFeature,
    SingletonFeature,
    block_features,
    sample_block,
    template_feature_table,
)
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def db():
    return UopsDatabase(uarch_by_name("SKL"))


def _body(asm):
    return BasicBlock.from_asm(asm).instructions


def _abstract(asm, db):
    return AbstractBlock.from_instructions(_body(asm), db)


class TestSingletonFeature:
    def test_three_levels(self):
        bottom = SingletonFeature.bottom()
        exact = SingletonFeature("add")
        top = SingletonFeature(top=True)
        assert not bottom.admits("add")
        assert exact.admits("add") and not exact.admits("imul")
        assert top.admits("anything")

    def test_partial_order(self):
        bottom = SingletonFeature.bottom()
        exact = SingletonFeature("add")
        other = SingletonFeature("imul")
        top = SingletonFeature(top=True)
        assert top.subsumes(exact) and not exact.subsumes(top)
        assert exact.subsumes(bottom) and not bottom.subsumes(exact)
        assert exact.subsumes(exact)
        assert not exact.subsumes(other)

    def test_join_is_least_upper_bound(self):
        feature = SingletonFeature.bottom()
        feature.join("add")
        assert feature.admits("add") and not feature.is_top
        feature.join("add")
        assert not feature.is_top  # same value: no widening
        feature.join("imul")
        assert feature.is_top  # two distinct values exceed the domain


class TestPowerSetFeature:
    def test_membership(self):
        feature = PowerSetFeature((16, 32))
        assert feature.admits(16) and not feature.admits(64)
        assert PowerSetFeature(top=True).admits(64)
        assert PowerSetFeature.bottom().is_bottom

    def test_order_is_inclusion(self):
        small = PowerSetFeature((16,))
        large = PowerSetFeature((16, 32))
        top = PowerSetFeature(top=True)
        assert large.subsumes(small) and not small.subsumes(large)
        assert top.subsumes(large) and not large.subsumes(top)

    def test_join_accumulates(self):
        feature = PowerSetFeature.bottom()
        feature.join(16)
        feature.join(64)
        assert feature.admits(16) and feature.admits(64)
        assert not feature.is_top


class TestBlockFeatures:
    def test_feature_vector_shape(self, db):
        features = block_features(_body("add rax, rbx"), db)
        assert len(features) == 1
        assert set(features[0]) == set(FEATURE_ORDER)
        assert features[0]["mnemonic"] == "add"
        assert features[0]["width"] == 64
        assert features[0]["mem"] == "none"
        assert features[0]["aliasing"] is False

    def test_aliasing_tracks_written_roots(self, db):
        features = block_features(
            _body("add rax, rbx\nimul rcx, rax"), db)
        assert features[0]["aliasing"] is False
        assert features[1]["aliasing"] is True  # reads rax, written above

    def test_flags_do_not_count_as_aliasing(self, db):
        # add writes flags, cmovne reads them — but the aliasing bit
        # only tracks GPR/VEC roots, so an unrelated register pair
        # stays non-aliasing.
        features = block_features(
            _body("add rax, rbx\nmov rcx, rdx"), db)
        assert features[1]["aliasing"] is False


class TestAbstractBlock:
    def test_most_precise_abstraction_matches_itself(self, db):
        body = _body("add rax, rbx\nimul rcx, rax")
        abstract = AbstractBlock.from_instructions(body, db)
        assert abstract.matches(body, db)

    def test_matching_is_subsequence_embedding(self, db):
        abstract = _abstract("imul rcx, rdx", db)
        longer = _body("add rax, rbx\nimul rcx, rdx\nmov r8, r9")
        assert abstract.matches(longer, db)
        assert not abstract.matches(_body("add rax, rbx"), db)

    def test_order_matters(self, db):
        abstract = _abstract("add rax, rbx\nimul rcx, rdx", db)
        assert not abstract.matches(
            _body("imul rcx, rdx\nadd rax, rbx"), db)

    def test_shorter_blocks_never_match(self, db):
        abstract = _abstract("add rax, rbx\nimul rcx, rdx", db)
        assert not abstract.matches(_body("add rax, rbx"), db)

    def test_widening_grows_the_concretization(self, db):
        abstract = _abstract("add rax, rbx", db)
        assert not abstract.matches(_body("imul rax, rbx"), db)
        for name in FEATURE_ORDER:
            abstract.insns[0].widen(name)
        assert abstract.matches(_body("imul rax, rbx"), db)

    def test_subsumption_follows_widening(self, db):
        base = _abstract("add rax, rbx", db)
        widened = base.clone()
        widened.insns[0].widen("mnemonic")
        assert widened.subsumes(base)
        assert not base.subsumes(widened)
        assert base.subsumes(base)

    def test_shorter_family_subsumes_longer_specialization(self, db):
        one = _abstract("imul rcx, rdx", db)
        two = _abstract("add rax, rbx\nimul rcx, rdx", db)
        assert one.subsumes(two)  # every match of `two` contains `one`
        assert not two.subsumes(one)

    def test_json_round_trip_is_canonical(self, db):
        abstract = _abstract("add rax, rbx\nimul rcx, rax", db)
        abstract.insns[0].widen("ports")
        text = abstract.canonical_json()
        rebuilt = AbstractBlock.from_json(json.loads(text))
        assert rebuilt.canonical_json() == text
        assert rebuilt.subsumes(abstract) and abstract.subsumes(rebuilt)

    def test_summary_is_readable(self, db):
        abstract = _abstract("add rax, rbx", db)
        abstract.insns[0].widen("mnemonic")
        (line,) = abstract.summary()
        assert line.startswith("mnemonic=*")
        assert "mem=none" in line


class TestSampling:
    def test_samples_belong_to_the_family(self, db):
        abstract = _abstract("add rax, rbx", db)
        abstract.insns[0].widen("mnemonic")
        abstract.insns[0].widen("ports")
        rng = random.Random(7)
        for _ in range(5):
            block = sample_block(abstract, rng, db)
            assert block is not None
            assert abstract.matches(block.instructions, db)

    def test_sampling_is_deterministic(self, db):
        abstract = _abstract("add rax, rbx\nimul rcx, rax", db)
        abstract.insns[0].widen("mnemonic")
        first = sample_block(abstract, random.Random(3), db)
        second = sample_block(abstract, random.Random(3), db)
        assert first.raw == second.raw

    def test_aliasing_constraint_is_honored(self, db):
        abstract = _abstract("add rax, rbx\nimul rcx, rax", db)
        rng = random.Random(11)
        block = sample_block(abstract, rng, db)
        features = block_features(block.instructions, db)
        assert features[1]["aliasing"] is True

    def test_overconstrained_family_returns_none(self, db):
        # Aliasing required on the *first* instruction: nothing was
        # written yet, so no sample can exist.
        impossible = _abstract("add rax, rbx", db)
        impossible.insns[0].features["aliasing"] = SingletonFeature(True)
        assert sample_block(impossible, random.Random(1), db) is None

    def test_template_table_is_memoized(self, db):
        assert template_feature_table(db) is template_feature_table(db)
        names = {name for name, _ in template_feature_table(db)}
        assert "jne" not in names  # branches excluded
