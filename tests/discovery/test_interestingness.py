"""Interestingness-scoring tests."""

import math

import pytest

from repro.discovery.interestingness import (
    DEFAULT_THRESHOLD,
    ORACLE,
    score_values,
)
from repro.eval.metrics import relative_disagreement, relative_error


class TestMetricPrimitives:
    def test_relative_error_matches_mape_term(self):
        assert relative_error(2.0, 3.0) == pytest.approx(0.5)
        assert relative_error(4.0, 4.0) == 0.0

    def test_relative_error_zero_measurement(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(0.0, 1.0) == math.inf

    def test_relative_disagreement_symmetric_and_bounded(self):
        assert relative_disagreement(1.0, 3.0) == \
            relative_disagreement(3.0, 1.0) == pytest.approx(1.0)
        assert relative_disagreement(0.0, 5.0) == pytest.approx(2.0)
        assert relative_disagreement(0.0, 0.0) == 0.0


class TestScoreValues:
    def test_agreement_scores_zero(self):
        score = score_values({"a": 2.0, "b": 2.0, ORACLE: 2.0})
        assert score.score == 0.0
        assert not score.interesting()

    def test_max_pair_wins(self):
        score = score_values({"a": 1.0, "b": 1.1, "c": 3.0})
        assert score.pair == ("a", "c")
        assert score.score == pytest.approx(1.0)
        assert score.pair_values == (1.0, 3.0)
        assert score.interesting(DEFAULT_THRESHOLD)

    def test_pair_is_alphabetical_and_ties_deterministic(self):
        # Both pairs disagree identically; the lexicographically first
        # pair must win so reports are stable.
        score = score_values({"b": 1.0, "c": 2.0, "a": 2.0})
        assert score.pair == ("a", "b")

    def test_oracle_participates_as_a_tool(self):
        score = score_values({"x": 1.0, ORACLE: 3.0})
        assert score.pair == ("oracle", "x")
        assert score.oracle_error == pytest.approx(2.0 / 3.0)

    def test_oracle_error_none_without_oracle(self):
        assert score_values({"a": 1.0, "b": 2.0}).oracle_error is None

    def test_needs_two_tools(self):
        with pytest.raises(ValueError):
            score_values({"only": 1.0})
