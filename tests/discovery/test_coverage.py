"""Suite-coverage metric tests."""

import pytest

from repro.discovery.abstraction import AbstractBlock
from repro.discovery.coverage import (
    corpus_feature_index,
    family_coverage,
    load_coverage_corpus,
)
from repro.isa.assembler import assemble
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def db():
    return UopsDatabase(uarch_by_name("SKL"))


def _abstract(asm, db):
    return AbstractBlock.from_instructions(assemble(asm), db)


class TestLoadCoverageCorpus:
    def test_default_is_the_benchmark_suite(self):
        label, blocks = load_coverage_corpus(None)
        assert label == f"default-suite-{len(blocks)}"
        assert blocks and all(b is not None for b in blocks)

    def test_file_corpus_keeps_undecodable_blocks_in_denominator(
            self, tmp_path):
        good = BasicBlock.from_asm("add rax, rbx").raw.hex()
        path = tmp_path / "corpus.txt"
        path.write_text(f"{good}\nzz-not-hex\n{good}\n")
        label, blocks = load_coverage_corpus(str(path))
        assert label == "corpus.txt"
        assert len(blocks) == 3
        assert blocks[1] is None  # undecodable, still counted

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_coverage_corpus(str(tmp_path / "nope.txt"))


class TestFamilyCoverage:
    def test_counts_matching_blocks(self, db):
        corpus = [
            BasicBlock.from_asm("add rax, rbx"),
            BasicBlock.from_asm("imul rcx, rdx\nadd rax, rbx"),
            BasicBlock.from_asm("mov rax, rbx"),
            None,  # undecodable placeholder
        ]
        index = corpus_feature_index(corpus, db)
        assert index[3] is None
        family = _abstract("add rax, rbx", db)
        matched, total = family_coverage(family, index)
        assert (matched, total) == (2, 4)

    def test_widened_family_covers_more(self, db):
        corpus = [
            BasicBlock.from_asm("add rax, rbx"),
            BasicBlock.from_asm("imul rcx, rdx"),
        ]
        index = corpus_feature_index(corpus, db)
        narrow = _abstract("add rax, rbx", db)
        widened = narrow.clone()
        for name in ("mnemonic", "archetype", "ports"):
            widened.insns[0].widen(name)
        assert family_coverage(narrow, index)[0] <= \
            family_coverage(widened, index)[0]
        assert family_coverage(widened, index) == (2, 2)

    def test_loop_corpora_match_without_the_back_edge(self, db):
        # corpus_feature_index strips final branches, so families (which
        # abstract loop *bodies*) still match loop-shaped corpus blocks.
        looped = BasicBlock.from_asm("add rax, rbx\njne -7")
        index = corpus_feature_index([looped], db)
        family = _abstract("add rax, rbx", db)
        assert family_coverage(family, index) == (1, 1)
