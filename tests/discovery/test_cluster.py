"""Deviation-clustering tests."""

from dataclasses import dataclass
from typing import Tuple

from repro.discovery.cluster import (
    Signature,
    canonical_port_set,
    cluster_witnesses,
    format_port_multiset,
    port_multiset_signature,
)


@dataclass
class _FakeWitness:
    signature: Signature
    score: float
    minimized_lines: Tuple[str, ...] = ("imul rax, rbx",)


def _sig(**overrides):
    base = dict(uarch="SKL", mode="unrolled", category="scalar_int",
                bottleneck="Ports", ports="1x(0,1,5,6)",
                pair=("Facile", "llvm-mca-15"))
    base.update(overrides)
    return Signature(**base)


class TestClustering:
    def test_same_signature_groups(self):
        witnesses = [_FakeWitness(_sig(), 0.8),
                     _FakeWitness(_sig(), 1.2),
                     _FakeWitness(_sig(category="memory"), 0.9)]
        clusters = cluster_witnesses(witnesses)
        assert [c.size for c in clusters] == [2, 1]

    def test_ranked_by_max_score_then_size(self):
        witnesses = [_FakeWitness(_sig(category="memory"), 0.9),
                     _FakeWitness(_sig(), 1.5),
                     _FakeWitness(_sig(), 0.6)]
        clusters = cluster_witnesses(witnesses)
        assert clusters[0].max_score == 1.5
        assert clusters[0].signature.category == "scalar_int"
        # Witnesses inside a cluster are strongest-first.
        assert [w.score for w in clusters[0].witnesses] == [1.5, 0.6]

    def test_empty_input(self):
        assert cluster_witnesses([]) == []

    def test_signature_key_is_deterministic(self):
        a, b = _sig(), _sig()
        assert a == b and a.key() == b.key()
        assert _sig(mode="loop") != a


class _FakeInfo:
    def __init__(self, port_sets):
        self.port_sets = port_sets


class _FakeOp:
    def __init__(self, port_sets):
        self.info = _FakeInfo(port_sets)


class TestPortMultiset:
    def test_canonical_string(self):
        ops = [_FakeOp((frozenset({1, 0, 5}),)),
               _FakeOp((frozenset({0, 1, 5}), frozenset({2, 3})))]
        assert port_multiset_signature(ops) == "2x(0,1,5) 1x(2,3)"

    def test_no_dispatched_uops(self):
        assert port_multiset_signature([_FakeOp(())]) == "-"

    def test_port_order_is_numeric_not_lexicographic(self):
        # Ports can arrive as strings (e.g. parsed tool output); "10"
        # must sort after "2", not before it.
        assert canonical_port_set({"10", "2", "6"}) == (2, 6, 10)
        assert canonical_port_set(frozenset({10, 2, 6})) == (2, 6, 10)

    def test_stable_across_runs_and_insertion_orders(self):
        # Regression: set iteration order varies with insertion order
        # (and, for strings, across interpreter runs under hash
        # randomization); the signature must not.
        orders = [(0, 1, 5, 6), (6, 5, 1, 0), (5, 0, 6, 1)]
        signatures = {
            port_multiset_signature(
                [_FakeOp((frozenset(order), frozenset(reversed(order))))])
            for order in orders
        }
        assert signatures == {"2x(0,1,5,6)"}

    def test_format_port_multiset(self):
        assert format_port_multiset({}) == "-"
        assert format_port_multiset(
            {(2, 3): 1, (0, 1, 5, 6): 3}) == "3x(0,1,5,6) 1x(2,3)"
