"""Witness-minimization tests (synthetic scorers, no simulator)."""

import pytest

from repro.discovery.minimize import minimize_lines


def _scorer(predicate):
    """Score 1.0 for bodies satisfying *predicate*, else 0.0."""
    def evaluate(bodies):
        return [1.0 if predicate(body) else 0.0 for body in bodies]
    return evaluate


class TestMinimizeLines:
    def test_shrinks_to_the_responsible_instruction(self):
        lines = ("add rax, rbx", "imul rcx, rdx", "mov r8, r9")
        minimized, trials = minimize_lines(
            lines, _scorer(lambda body: any("imul" in l for l in body)),
            threshold=0.5)
        assert minimized == ("imul rcx, rdx",)
        assert trials > 0

    def test_keeps_all_when_nothing_droppable(self):
        # Deviation requires BOTH instructions: any drop kills it.
        lines = ("add rax, rbx", "imul rcx, rdx")
        minimized, trials = minimize_lines(
            lines,
            _scorer(lambda body: len(body) == 2),
            threshold=0.5)
        assert minimized == lines
        assert trials == 2  # one round of two candidates, none accepted

    def test_single_line_body_is_already_minimal(self):
        calls = []
        minimized, trials = minimize_lines(
            ("imul rcx, rdx",),
            lambda bodies: calls.append(bodies) or [],
            threshold=0.5)
        assert minimized == ("imul rcx, rdx",)
        assert trials == 0
        assert not calls  # never evaluates: dropping would empty it

    def test_prefers_lowest_index_drop(self):
        # Both drops keep the deviation; the index-0 drop must win so
        # minimization is deterministic.
        lines = ("mov r8, r9", "mov r10, r11", "imul rcx, rdx")
        minimized, _ = minimize_lines(
            lines, _scorer(lambda body: any("imul" in l for l in body)),
            threshold=0.5)
        assert minimized == ("imul rcx, rdx",)

    def test_rejects_incomplete_score_batches(self):
        with pytest.raises(ValueError):
            minimize_lines(("a", "b"), lambda bodies: [1.0], 0.5)

    def test_cascades_from_many_lines_to_one(self):
        # Each round drops one filler line; minimization must keep
        # iterating until the single responsible instruction remains.
        lines = tuple(f"mov r{8 + i}, r{9 + i}" for i in range(4)) \
            + ("imul rcx, rdx",)
        minimized, trials = minimize_lines(
            lines, _scorer(lambda body: any("imul" in l for l in body)),
            threshold=0.5)
        assert minimized == ("imul rcx, rdx",)
        # 4 rounds of shrinking candidates (5+4+3+2), none at size 1.
        assert trials == 14

    def test_score_exactly_at_threshold_keeps_the_drop(self):
        # The deviation boundary is inclusive: score == threshold still
        # counts as deviating, matching the campaign's acceptance rule.
        lines = ("add rax, rbx", "imul rcx, rdx")
        minimized, _ = minimize_lines(
            lines,
            lambda bodies: [0.5 if any("imul" in l for l in body)
                            else 0.49 for body in bodies],
            threshold=0.5)
        assert minimized == ("imul rcx, rdx",)

    def test_keeps_the_pair_when_only_the_pair_deviates(self):
        # A two-instruction interaction inside a larger block: fillers
        # are dropped, the interacting pair survives intact.
        lines = ("mov r8, r9", "add rax, rbx", "mov r10, r11",
                 "imul rcx, rax")
        minimized, _ = minimize_lines(
            lines,
            _scorer(lambda body: ("add rax, rbx" in body
                                  and "imul rcx, rax" in body)),
            threshold=0.5)
        assert minimized == ("add rax, rbx", "imul rcx, rax")
