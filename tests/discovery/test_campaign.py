"""End-to-end campaign tests (tiny budgets, cheap tool set).

The tool set is restricted to Facile + the back-end-only analog so the
only cycle-level simulation is the oracle measurement (cached process
wide), keeping these tier-1 tests fast while still exercising the full
generate → evaluate → score → minimize → cluster → report pipeline.
"""

import json

import pytest

from repro.core.components import ThroughputMode
from repro.discovery import (
    CampaignConfig,
    Candidate,
    campaign_report,
    render_json,
    render_markdown,
    run_campaign,
)

_FAST = dict(seed=0, budget=12, uarchs=("SKL",),
             predictors=("Facile", "llvm-mca-15"),
             modes=("unrolled",), max_witnesses=4)


@pytest.fixture(scope="module")
def result():
    return run_campaign(CampaignConfig(**_FAST))


@pytest.fixture(scope="module")
def report(result):
    return campaign_report(result)


class TestCampaign:
    def test_surfaces_a_minimized_clustered_deviation(self, result):
        assert result.witnesses, "seeded corpus produced no deviation"
        assert result.clusters
        witness = result.clusters[0].witnesses[0]
        assert witness.score >= CampaignConfig(**_FAST).threshold
        assert "Facile" in witness.pair or "oracle" in witness.pair
        assert len(witness.minimized_lines) <= len(witness.original_lines)

    def test_budget_is_respected(self, result):
        stats = result.stats["SKL"]
        assert stats["candidates"] + stats["mutants"] == _FAST["budget"]

    def test_deterministic(self, result):
        again = run_campaign(CampaignConfig(**_FAST))
        assert render_json(campaign_report(again)) == \
            render_json(campaign_report(result))

    def test_parallel_results_identical_to_serial(self, result):
        parallel = run_campaign(CampaignConfig(**_FAST, n_workers=2))
        assert render_json(campaign_report(parallel)) == \
            render_json(campaign_report(result))

    def test_witness_blocks_reassemble(self, result):
        for witness in result.witnesses:
            mode = ThroughputMode(witness.mode)
            candidate = Candidate(index=0, category=witness.category,
                                  origin=witness.origin,
                                  lines=witness.minimized_lines,
                                  loop_cond="ne")
            block = candidate.block(mode)
            assert len(block) >= 1
            if mode is ThroughputMode.LOOP:
                assert block.ends_in_branch


class TestReport:
    def test_canonical_json_round_trips(self, report):
        text = render_json(report)
        assert text.endswith("\n")
        assert json.loads(text) == report
        # Canonical: re-serializing the parsed document is a no-op.
        assert render_json(json.loads(text)) == text

    def test_excludes_execution_details(self, report):
        assert "n_workers" not in json.dumps(report)

    def test_markdown_summary(self, report):
        text = render_markdown(report)
        assert "facile hunt: deviation report" in text
        assert "Strongest witness" in text
        assert "```asm" in text

    def test_markdown_surfaces_incidents(self, report):
        # Unrecovered tool failures must be visible in the human
        # summary, not only in the JSON.
        assert "## Incidents" not in render_markdown(report)
        with_incident = dict(report)
        with_incident["incidents"] = [{
            "uarch": "SKL", "predictor": "llvm-mca-15",
            "reason": "breaker_open", "batches": 3,
            "detail": "llvm-mca-15: injected fault"}]
        text = render_markdown(with_incident)
        assert "## Incidents (1 unrecovered tool failure(s))" in text
        assert "llvm-mca-15 skipped (breaker_open, 3 batch(es))" in text

    def test_markdown_incidents_render_without_clusters(self, report):
        empty = dict(report)
        empty["clusters"] = []
        empty["incidents"] = [{
            "uarch": "SKL", "predictor": "uiCA",
            "reason": "breaker_open", "batches": 1, "detail": "boom"}]
        text = render_markdown(empty)
        assert "## Incidents" in text
        assert "No deviations at this threshold" in text

    def test_stats_and_summary_consistent(self, report):
        assert report["schema"] == "facile-hunt-report/v2"
        total = sum(len(c["witnesses"]) for c in report["clusters"])
        assert total == report["summary"]["witnesses"]

    def test_generalization_sections_empty_without_flag(self, report):
        assert report["families"] == []
        assert report["subsumed"] == []
        assert report["generalization"] is None
        assert report["config"]["generalize"] is False


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        dict(budget=0),
        dict(uarchs=()),
        dict(uarchs=("NOPE",)),
        dict(uarchs=("SKL", "SKL")),
        dict(predictors=()),
        dict(predictors=("Facile", "not-a-tool")),
        dict(predictors=("Facile", "Facile")),
        dict(modes=("sideways",)),
        dict(modes=()),
        dict(threshold=0.0),
        dict(mutation_rate=1.5),
        dict(max_witnesses=0),
        dict(gen_samples=1),
        dict(fresh_witnesses=0),
        dict(max_families=0),
        dict(n_workers=-1),
    ])
    def test_rejects_bad_configs(self, overrides):
        config = CampaignConfig(**{**_FAST, **overrides})
        with pytest.raises(ValueError):
            config.validate()

    def test_default_config_is_valid(self):
        CampaignConfig().validate()
