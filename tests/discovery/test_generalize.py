"""Witness-generalization tests.

The unit tests drive :func:`generalize_witness` / :func:`generalize_uarch`
with a synthetic evaluator (a rule over the sampled blocks), so the
widening/validation/confirmation logic is exercised without a single
simulator run.  The end-to-end tests at the bottom run real tiny
campaigns and are marked ``slow`` (CI runs them in a dedicated step;
tier-1 skips them).
"""

import random
from dataclasses import dataclass
from typing import Dict, Tuple

import pytest

from repro.discovery import (
    CampaignConfig,
    campaign_report,
    load_known_families,
    render_json,
    render_markdown,
    run_campaign,
)
from repro.discovery.abstraction import AbstractBlock
from repro.discovery.generalize import (
    Family,
    FreshWitness,
    attach_coverage,
    generalize_report,
    generalize_uarch,
    generalize_witness,
    rank_families,
)
from repro.discovery.subsumption import KnownFamily, family_id
from repro.isa.assembler import assemble
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

_PAIR = ("Facile", "llvm-mca-15")
_THRESHOLD = 0.5


@dataclass
class _FakeWitness:
    minimized_lines: Tuple[str, ...]
    raw_hex: str
    score: float = 1.0
    uarch: str = "SKL"
    mode: str = "unrolled"
    category: str = "scalar_int"
    pair: Tuple[str, str] = _PAIR
    loop_cond: str = "ne"


def _witness(asm, **overrides):
    body = assemble(asm)
    raw_hex = b"".join(instr.raw for instr in body).hex()
    return _FakeWitness(
        minimized_lines=tuple(instr.text() for instr in body),
        raw_hex=raw_hex, **overrides)


class _FakeEvaluator:
    """Deterministic synthetic tool values: *rule(block) -> Facile value*
    against a constant 1.0 baseline."""

    def __init__(self, db, rule):
        self.db = db
        self.rule = rule
        self.blocks_evaluated = 0

    def evaluate(self, blocks, mode):
        del mode
        self.blocks_evaluated += len(blocks)
        return [{"Facile": self.rule(block), "llvm-mca-15": 1.0,
                 "oracle": self.rule(block)} for block in blocks]


def _width16_rule(block):
    """Deviate (2.0 vs 1.0) iff the block touches a 16-bit operand."""
    widths = (max((slot.width for slot in instr.template.slots),
                  default=0) for instr in block.instructions)
    return 2.0 if any(w == 16 for w in widths) else 1.0


@pytest.fixture(scope="module")
def db():
    return UopsDatabase(uarch_by_name("SKL"))


class TestGeneralizeWitness:
    def test_widens_irrelevant_features_keeps_the_essential_one(self, db):
        evaluator = _FakeEvaluator(db, _width16_rule)
        family, evaluated = generalize_witness(
            _witness("add ax, 300"), evaluator, samples=5,
            fresh_needed=3, threshold=_THRESHOLD, seed=0,
            excluded_hexes=set())
        assert family is not None
        insn = family.abstraction.insns[0]
        # Any 16-bit instruction deviates: the mnemonic must widen ...
        assert insn.is_top("mnemonic")
        # ... but the 16-bit width is what the deviation hinges on, so
        # widening it fails validation and it stays narrow.
        assert not insn.is_top("width")
        assert insn.features["width"].admits(16)
        assert family.widenings_accepted < family.widenings_tried
        assert evaluated == family.samples_evaluated > 0
        assert evaluator.blocks_evaluated == evaluated

    def test_fresh_witnesses_are_new_and_deviating(self, db):
        evaluator = _FakeEvaluator(db, _width16_rule)
        witness = _witness("add ax, 300")
        family, _ = generalize_witness(
            witness, evaluator, samples=5, fresh_needed=3,
            threshold=_THRESHOLD, seed=0,
            excluded_hexes={witness.raw_hex})
        assert family is not None
        assert len(family.fresh) == 3
        hexes = {fresh.raw_hex for fresh in family.fresh}
        assert len(hexes) == 3  # pairwise distinct
        assert witness.raw_hex not in hexes  # none are campaign inputs
        for fresh in family.fresh:
            assert fresh.score >= _THRESHOLD
            block = BasicBlock.from_bytes(bytes.fromhex(fresh.raw_hex))
            assert family.abstraction.matches(block.instructions, db)

    def test_deterministic(self, db):
        results = []
        for _ in range(2):
            family, _ = generalize_witness(
                _witness("add ax, 300"), _FakeEvaluator(db, _width16_rule),
                samples=5, fresh_needed=3, threshold=_THRESHOLD, seed=0,
                excluded_hexes=set())
            results.append((family.abstraction.canonical_json(),
                            [f.raw_hex for f in family.fresh]))
        assert results[0] == results[1]

    def test_unconfirmable_witness_returns_none(self, db):
        # Only the exact witness bytes deviate: no fresh witness can
        # ever be found, so the family is unconfirmed.
        witness = _witness("add ax, 300")
        rule = lambda block: (  # noqa: E731
            2.0 if block.raw.hex() == witness.raw_hex else 1.0)
        family, evaluated = generalize_witness(
            witness, _FakeEvaluator(db, rule), samples=5,
            fresh_needed=3, threshold=_THRESHOLD, seed=0,
            excluded_hexes={witness.raw_hex})
        assert family is None
        assert evaluated > 0


class TestGeneralizeUarch:
    def test_second_witness_folds_into_the_first_family(self, db):
        outcome = generalize_uarch(
            _FakeEvaluator(db, _width16_rule),
            [_witness("add ax, 300", score=1.2),
             _witness("sub cx, 400", score=0.8)],
            samples=5, fresh_needed=3, max_families=4,
            threshold=_THRESHOLD, seed=0)
        assert len(outcome.families) == 1
        assert outcome.stats["folded"] == 1
        assert len(outcome.families[0].witness_hexes) == 2

    def test_known_families_subsume_rediscoveries(self, db):
        witnesses = [_witness("add ax, 300", score=1.2)]
        first = generalize_uarch(
            _FakeEvaluator(db, _width16_rule), witnesses, samples=5,
            fresh_needed=3, max_families=4, threshold=_THRESHOLD, seed=0)
        (family,) = first.families
        known = KnownFamily(
            id=family.id, uarch=family.uarch, mode=family.mode,
            pair=family.pair, abstraction=family.abstraction)
        second = generalize_uarch(
            _FakeEvaluator(db, _width16_rule), witnesses, samples=5,
            fresh_needed=3, max_families=4, threshold=_THRESHOLD, seed=0,
            known=[known])
        assert second.families == []
        assert second.stats["subsumed"] == 1
        (record,) = second.subsumed
        assert record["subsumed_by"] == family.id
        assert record["hex"] == witnesses[0].raw_hex

    def test_max_families_caps_generalization_attempts(self, db):
        # Two witnesses that can never fold (different deviation rules
        # would be needed) with a budget of one attempt: the second is
        # neither folded nor generalized.
        rule = lambda block: 2.0  # noqa: E731  everything deviates
        outcome = generalize_uarch(
            _FakeEvaluator(db, rule),
            [_witness("add ax, 300", score=1.2),
             _witness("imul rcx, rdx", score=0.8)],
            samples=5, fresh_needed=3, max_families=1,
            threshold=_THRESHOLD, seed=0)
        assert outcome.stats["attempted"] == 1


class TestRankingAndCoverage:
    def _family(self, db, asm, matched=0, total=0, score=1.0):
        abstraction = AbstractBlock.from_instructions(assemble(asm), db)
        return Family(
            uarch="SKL", mode="unrolled", category="scalar_int",
            pair=_PAIR, loop_cond="ne", abstraction=abstraction,
            witness_hexes=[], fresh=[FreshWitness((), "", score, {})],
            widenings_tried=0, widenings_accepted=0,
            samples_evaluated=0, coverage_matched=matched,
            coverage_total=total)

    def test_rank_by_coverage_then_fresh_score(self, db):
        low = self._family(db, "add rax, rbx", matched=1, total=10)
        high = self._family(db, "imul rcx, rdx", matched=5, total=10)
        strong = self._family(db, "mov rax, rbx", matched=1, total=10,
                              score=9.0)
        ranked = rank_families([low, strong, high])
        assert ranked[0] is high
        assert ranked[1] is strong  # ties on coverage: fresh score
        assert ranked[2] is low

    def test_attach_coverage_fills_counters(self, db):
        family = self._family(db, "add rax, rbx")
        corpus = [BasicBlock.from_asm("add rax, rbx"),
                  BasicBlock.from_asm("imul rcx, rdx"), None]
        attach_coverage([family], corpus, db)
        assert (family.coverage_matched, family.coverage_total) == (1, 3)
        assert family.coverage == pytest.approx(1 / 3)


_FAST_GEN = dict(seed=0, budget=12, uarchs=("SKL",),
                 predictors=("Facile", "llvm-mca-15"),
                 modes=("unrolled",), max_witnesses=4,
                 generalize=True, max_families=3)


@pytest.mark.slow
class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(CampaignConfig(**_FAST_GEN))

    @pytest.fixture(scope="class")
    def report(self, result):
        return campaign_report(result)

    def test_confirmed_family_with_fresh_witnesses(self, result):
        assert result.families, "campaign confirmed no family"
        family = result.families[0]
        campaign_hexes = {w.raw_hex for w in result.witnesses}
        assert len(family.fresh) >= 3
        for fresh in family.fresh:
            assert fresh.raw_hex not in campaign_hexes
            assert fresh.score >= CampaignConfig(**_FAST_GEN).threshold
        assert family.coverage_total > 0

    def test_byte_reproducible(self, report):
        again = campaign_report(run_campaign(CampaignConfig(**_FAST_GEN)))
        assert render_json(again) == render_json(report)

    def test_second_campaign_reports_subsumption(self, report):
        known = load_known_families(report)
        assert known
        again = run_campaign(CampaignConfig(**_FAST_GEN), known=known)
        assert not again.families  # nothing new at the same seed
        assert again.subsumed
        known_ids = {k.id for k in known}
        assert {s["subsumed_by"] for s in again.subsumed} <= known_ids

    def test_standalone_generalize_matches_hunt(self, report):
        plain = campaign_report(run_campaign(CampaignConfig(
            **{**_FAST_GEN, "generalize": False})))
        generalized = generalize_report(plain, max_families=3)
        assert generalized["schema"] == "facile-hunt-report/v2"
        assert [f["id"] for f in generalized["families"]] == \
            [f["id"] for f in report["families"]]

    def test_markdown_renders_families(self, report):
        text = render_markdown(report)
        assert "## Abstract deviation families" in text
        assert report["families"][0]["id"] in text
        assert "Fresh sampled witness" in text
