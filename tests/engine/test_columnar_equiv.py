"""Differential equivalence: the columnar core IS the object model.

The columnar core's acceptance property is *bit-for-bit equality* with
the :class:`~repro.core.model.Facile` reference on every block: equal
``Prediction`` dataclasses (throughput, bounds, bottlenecks, detail
payloads, critical indices — ``Prediction.__eq__`` compares all of it).
This harness sweeps

* every generator category × every µarch × both modes (deterministic
  generated blocks, via ``predict``, ``predict_many`` and the
  byte-level ``predict_raw`` entry points),
* seeded property-based fuzz over the *whole template table* via the
  discovery layer's abstract-block sampler (a fully-TOP abstraction
  admits any instruction), 50 blocks in tier-1 and ≥500 under
  ``-m slow`` (CI's columnar job).

Payload-variant equality — blocks differing from a compiled signature
only in displacement/immediate *values* — is covered separately, since
that is the path where the columnar core answers from a warm entry the
object model has never seen.
"""

import random

import pytest

from repro.bhive.categories import CATEGORIES
from repro.bhive.generator import BlockGenerator
from repro.core.components import ThroughputMode
from repro.core.model import Facile
from repro.discovery.abstraction import (
    AbstractBlock,
    AbstractInsn,
    FEATURE_ORDER,
    sample_block,
)
from repro.engine.columnar import ColumnarCore
from repro.isa.block import BasicBlock
from repro.uarch import ALL_UARCHS, uarch_by_name
from repro.uops.database import UopsDatabase

MODES = (ThroughputMode.UNROLLED, ThroughputMode.LOOP)

#: Blocks per generator category in the category sweep.
PER_CATEGORY = 4
#: Fuzz volume: tier-1 smoke vs the full `-m slow` sweep.
FUZZ_SMOKE = 50
FUZZ_FULL = 500


def category_blocks(seed=90):
    """Deterministic (category, block) pairs covering every category
    in both its unrolled and loop forms."""
    generator = BlockGenerator(seed)
    out = []
    for category in CATEGORIES:
        for _ in range(PER_CATEGORY):
            block_u, block_l = generator.block_pair(category)
            out.append((category.name, block_u))
            out.append((category.name, block_l))
    return out


def assert_identical(reference, candidate, context):
    """Full-dataclass equality plus the pieces whose diff is readable."""
    assert reference.throughput == candidate.throughput, context
    assert reference.bounds == candidate.bounds, context
    assert reference.bottlenecks == candidate.bottlenecks, context
    assert reference.fe_component == candidate.fe_component, context
    assert reference.jcc_affected == candidate.jcc_affected, context
    assert reference.lsd_applicable == candidate.lsd_applicable, context
    assert reference.critical_instruction_indices \
        == candidate.critical_instruction_indices, context
    assert reference.ports_critical_indices \
        == candidate.ports_critical_indices, context
    assert reference == candidate, context


@pytest.fixture(scope="module")
def swept_blocks():
    return category_blocks()


@pytest.mark.parametrize("cfg", ALL_UARCHS, ids=lambda c: c.abbrev)
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_every_category_every_uarch_every_mode(cfg, mode, swept_blocks):
    reference = Facile(cfg)
    columnar = ColumnarCore(cfg)
    blocks = [block for _, block in swept_blocks]
    expected = reference.predict_many(blocks, mode)
    batched = columnar.predict_many(blocks, mode)
    for (name, block), want, got in zip(swept_blocks, expected, batched):
        context = f"{cfg.abbrev}/{mode.value}/{name}/{block.raw.hex()}"
        assert_identical(want, got, context)
        assert_identical(want, columnar.predict(block, mode), context)
        assert_identical(want, columnar.predict_raw(block.raw, mode),
                         context)
    raw_batch = columnar.predict_raw_many([b.raw for b in blocks], mode)
    for want, got in zip(expected, raw_batch):
        assert want == got


def test_payload_variants_hit_warm_signatures():
    """Blocks that differ only in disp/imm *values* share a compiled
    signature — and still match the object model exactly."""
    cfg = uarch_by_name("SKL")
    reference = Facile(cfg)
    columnar = ColumnarCore(cfg)
    rng = random.Random(41)
    originals = [block for _, block in category_blocks(seed=91)]
    columnar.predict_many(originals, ThroughputMode.LOOP)  # compile

    checked = 0
    for block in originals:
        out = bytearray()
        mutated = False
        for instr in block:
            raw = bytearray(instr.raw)
            enc = instr.template.encoding
            imm_len = enc.imm_width // 8 if enc.imm_width else 0
            if imm_len and enc.fixed_bytes is None:
                # Randomize all but the top imm byte (sign stays valid).
                for i in range(len(raw) - imm_len, len(raw) - 1):
                    raw[i] = rng.randrange(256)
                mutated = True
            out += raw
        if not mutated:
            continue
        variant = bytes(out)
        try:
            rebuilt = BasicBlock.from_bytes(variant)
        except Exception:
            continue  # e.g. a relative branch whose target went wild
        before = columnar.misses
        got = columnar.predict_raw(variant, ThroughputMode.LOOP)
        assert columnar.misses == before, "variant should not recompile"
        assert_identical(reference.predict(rebuilt, ThroughputMode.LOOP),
                         got, variant.hex())
        checked += 1
    assert checked >= 10  # the sweep actually exercised the warm path


def fully_top_abstraction(n_insns):
    insns = []
    for _ in range(n_insns):
        insn = AbstractInsn()
        for name in FEATURE_ORDER:
            insn.widen(name)
        insns.append(insn)
    return AbstractBlock(insns)


def outcome(fn, *args):
    """A comparable (ok, value-or-error-text) of a prediction call."""
    try:
        return True, fn(*args)
    except Exception as exc:  # noqa: BLE001 - compared, not hidden
        return False, f"{type(exc).__name__}: {exc}"


def run_fuzz(n_blocks, seed):
    """Sample *n_blocks* whole-template-table blocks and assert
    identical per-block outcomes — predictions *and* errors (a sampled
    template can be unsupported on an older µarch; the columnar core
    must replay the reference failure, not hide it) — across every
    µarch and both modes."""
    sampler_db = UopsDatabase(uarch_by_name("SKL"))
    rng = random.Random(seed)
    blocks = []
    while len(blocks) < n_blocks:
        block = sample_block(fully_top_abstraction(rng.randint(1, 8)),
                             rng, sampler_db)
        if block is not None:
            blocks.append(block)
    for cfg in ALL_UARCHS:
        reference = Facile(cfg)
        columnar = ColumnarCore(cfg)
        for mode in MODES:
            supported = []
            for block in blocks:
                context = f"{cfg.abbrev}/{mode.value}/{block.raw.hex()}"
                want_ok, want = outcome(reference.predict, block, mode)
                got_ok, got = outcome(columnar.predict, block, mode)
                raw_ok, via_raw = outcome(columnar.predict_raw,
                                          block.raw, mode)
                assert (want_ok, got_ok, raw_ok) \
                    == (want_ok,) * 3, (context, want, got, via_raw)
                if want_ok:
                    assert_identical(want, got, context)
                    assert want == via_raw, context
                    supported.append((block, want))
                else:
                    assert want == got, context
                    assert want == via_raw, context
            if supported:
                batch = columnar.predict_many(
                    [b for b, _ in supported], mode)
                for (_, want), got in zip(supported, batch):
                    assert want == got


def test_fuzz_smoke():
    run_fuzz(FUZZ_SMOKE, seed=2023)


@pytest.mark.slow
def test_fuzz_full():
    run_fuzz(FUZZ_FULL, seed=20230)
