"""Zero/one-block edge cases of the batch layer.

Empty batches appear naturally at the boundaries (a filtered-out suite,
a discovery campaign with nothing interesting, a service bulk request
with an empty block list) and must return cleanly without spinning up
pools or dispatch windows.
"""

from repro.core.components import ThroughputMode
from repro.engine.batching import MicroBatcher
from repro.engine.engine import Engine, measure_many
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name


def _block():
    return BasicBlock.from_asm("add rax, rbx")


class TestEngineEmptyBatches:
    def test_serial_predict_many_empty(self):
        with Engine(uarch_by_name("SKL")) as engine:
            assert engine.predict_many([], ThroughputMode.UNROLLED) == []

    def test_parallel_predict_many_empty_spawns_no_pool(self):
        with Engine(uarch_by_name("SKL"), n_workers=2) as engine:
            assert engine.predict_many([], ThroughputMode.LOOP) == []
            assert engine._pool is None  # guard short-circuits the pool

    def test_single_block_batch(self):
        with Engine(uarch_by_name("SKL"), n_workers=2) as engine:
            predictions = engine.predict_many(
                [_block()], ThroughputMode.UNROLLED)
        assert len(predictions) == 1
        assert predictions[0].cycles > 0

    def test_measure_many_empty(self):
        assert measure_many(uarch_by_name("SKL"), [],
                            ThroughputMode.UNROLLED, n_workers=2) == []

    def test_measure_many_empty_generator(self):
        # Non-list sequences must be materialized before the guard.
        assert measure_many(uarch_by_name("SKL"), iter([]),
                            ThroughputMode.LOOP, n_workers=0) == []


class TestMicroBatcherEmptyWindows:
    def test_close_without_traffic(self):
        with Engine(uarch_by_name("SKL")) as engine:
            batcher = MicroBatcher(engine, max_wait_ms=0)
            batcher.close()
            assert batcher.batches == 0
            assert batcher.stats()["requests"] == 0

    def test_bulk_empty_request(self):
        with Engine(uarch_by_name("SKL")) as engine:
            with MicroBatcher(engine, max_wait_ms=0) as batcher:
                assert batcher.predict_many(
                    [], ThroughputMode.UNROLLED) == []

    def test_empty_window_dispatch_is_a_noop(self):
        with Engine(uarch_by_name("SKL")) as engine:
            with MicroBatcher(engine, max_wait_ms=0) as batcher:
                batcher._dispatch([])  # a window that closed empty
                assert batcher.batches == 0
                # and the batcher still works afterwards
                prediction = batcher.predict(
                    _block(), ThroughputMode.UNROLLED, timeout=30)
                assert prediction.cycles > 0
