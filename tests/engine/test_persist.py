"""The persistent on-disk analysis cache (``engine/persist.py``).

The contract under test: a warm working set survives restarts
(byte-identical predictions, ``disk_hits`` counted), corruption and
foreign files are recovered from instead of crashing, and concurrent
writers appending to one file never tear each other's records.
"""

import os
import pickle
import struct
import threading

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.engine.cache import AnalysisCache
from repro.engine.engine import Engine
from repro.engine.persist import (
    FORMAT_VERSION,
    HEADER_SIG,
    REC_MAGIC,
    PersistentAnalysisCache,
    load_corpus,
    _encode,
    _frame,
)
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")


def synthetic(path, n=4, uarch="SKL"):
    """A cache file with *n* synthetic single-slot records."""
    cache = PersistentAnalysisCache(str(path), uarch)
    for i in range(n):
        assert cache.maybe_store(bytes([i]) * 4, {"_analyzed": [i]})
    cache.flush()
    return cache


class TestRoundTrip:
    def test_store_flush_reload(self, tmp_path):
        path = tmp_path / "SKL.facc"
        synthetic(path, n=4)
        reloaded = PersistentAnalysisCache(str(path), "SKL")
        assert reloaded.loaded == 4
        assert len(reloaded) == 4
        assert reloaded.load(b"\x02" * 4) == {"_analyzed": [2]}
        assert reloaded.disk_hits == 1
        assert reloaded.load(b"\xff" * 4) is None

    def test_last_record_wins_and_compact_dedups(self, tmp_path):
        path = tmp_path / "SKL.facc"
        cache = synthetic(path, n=1)
        # A richer record for the same signature supersedes on append.
        assert cache.maybe_store(b"\x00" * 4, {"_analyzed": [0],
                                               "_ops": [9]})
        cache.flush()
        reloaded = PersistentAnalysisCache(str(path), "SKL")
        assert reloaded.load(b"\x00" * 4) == {"_analyzed": [0],
                                              "_ops": [9]}
        size_before = os.path.getsize(path)
        reloaded.compact()
        assert os.path.getsize(path) < size_before
        again = PersistentAnalysisCache(str(path), "SKL")
        assert again.loaded == 1
        assert again.load(b"\x00" * 4) == {"_analyzed": [0], "_ops": [9]}

    def test_store_is_skipped_without_coverage_growth(self, tmp_path):
        cache = PersistentAnalysisCache(str(tmp_path / "SKL.facc"),
                                        "SKL")
        assert cache.maybe_store(b"sig1", {"_analyzed": [1]})
        assert not cache.maybe_store(b"sig1", {"_analyzed": [2]})
        assert not cache.maybe_store(b"sig2", {"_analyzed": None})
        assert cache.maybe_store(b"sig1", {"_analyzed": [1],
                                           "_ops": [2]})

    def test_missing_file_is_empty(self, tmp_path):
        cache = PersistentAnalysisCache(str(tmp_path / "none.facc"),
                                        "SKL")
        assert len(cache) == 0
        assert cache.flush() == 0  # nothing pending, nothing written
        assert not os.path.exists(tmp_path / "none.facc")

    def test_for_uarch_creates_directory(self, tmp_path):
        cache = PersistentAnalysisCache.for_uarch(
            str(tmp_path / "deep" / "cache"), "RKL")
        assert cache.path.endswith(os.path.join("deep", "cache",
                                                "RKL.facc"))
        assert cache.uarch == "RKL"


class TestCorruptionRecovery:
    def test_flipped_bytes_mid_file_skip_one_record(self, tmp_path):
        path = tmp_path / "SKL.facc"
        synthetic(path, n=5)
        data = bytearray(path.read_bytes())
        # Damage the middle of the file (well past the header record).
        mid = len(data) // 2
        data[mid:mid + 8] = b"\x00" * 8
        path.write_bytes(bytes(data))
        reloaded = PersistentAnalysisCache(str(path), "SKL")
        assert reloaded.corrupt_records > 0
        # Most records survive; the loader resynchronized past the
        # damage instead of abandoning the rest of the file.
        assert reloaded.loaded >= 3
        # The next flush repairs the file wholesale ...
        reloaded.flush()
        assert reloaded.rewrites == 1
        # ... so a later load sees a clean file again.
        clean = PersistentAnalysisCache(str(path), "SKL")
        assert clean.corrupt_records == 0
        assert clean.loaded == reloaded.loaded

    def test_truncated_tail_keeps_earlier_records(self, tmp_path):
        path = tmp_path / "SKL.facc"
        synthetic(path, n=4)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last record mid-payload
        reloaded = PersistentAnalysisCache(str(path), "SKL")
        assert reloaded.loaded == 3
        assert reloaded.corrupt_records > 0

    def test_bad_crc_detected(self, tmp_path):
        path = tmp_path / "SKL.facc"
        synthetic(path, n=1)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte of the last record
        path.write_bytes(bytes(data))
        reloaded = PersistentAnalysisCache(str(path), "SKL")
        assert reloaded.loaded == 0
        assert reloaded.corrupt_records > 0

    def test_impossible_length_resyncs(self, tmp_path):
        path = tmp_path / "SKL.facc"
        cache = PersistentAnalysisCache(str(path), "SKL")
        cache.maybe_store(b"keep", {"_analyzed": [1]})
        cache.flush()
        good = path.read_bytes()
        # A fake record claiming a multi-GB payload, then the real file.
        fake = REC_MAGIC + struct.pack(">II", 2 ** 31, 0)
        path.write_bytes(fake + good)
        reloaded = PersistentAnalysisCache(str(path), "SKL")
        assert reloaded.load(b"keep") == {"_analyzed": [1]}
        assert reloaded.corrupt_records > 0

    def test_non_cache_garbage_never_crashes(self, tmp_path):
        path = tmp_path / "SKL.facc"
        path.write_bytes(b"this is not a cache file at all\n" * 10)
        reloaded = PersistentAnalysisCache(str(path), "SKL")
        assert reloaded.loaded == 0
        reloaded.maybe_store(b"sig", {"_analyzed": [1]})
        reloaded.flush()  # replaces the garbage wholesale
        clean = PersistentAnalysisCache(str(path), "SKL")
        assert clean.loaded == 1


class TestForeignFiles:
    def test_other_uarch_contributes_nothing(self, tmp_path):
        path = tmp_path / "shared.facc"
        synthetic(path, n=3, uarch="SKL")
        foreign = PersistentAnalysisCache(str(path), "RKL")
        assert foreign.loaded == 0
        # The next flush atomically reclaims the file for RKL.
        foreign.maybe_store(b"rkl", {"_analyzed": [1]})
        foreign.flush()
        assert PersistentAnalysisCache(str(path), "RKL").loaded == 1
        assert PersistentAnalysisCache(str(path), "SKL").loaded == 0

    def test_future_format_version_ignored(self, tmp_path):
        path = tmp_path / "SKL.facc"
        blob = pickle.dumps({"format": FORMAT_VERSION + 1,
                             "uarch": "SKL"})
        record = _frame(_encode(HEADER_SIG, blob))
        record += _frame(_encode(b"sig", pickle.dumps({"_ops": [1]})))
        path.write_bytes(record)
        assert PersistentAnalysisCache(str(path), "SKL").loaded == 0


class TestConcurrentWriters:
    def test_interleaved_flushes_never_tear(self, tmp_path):
        path = str(tmp_path / "SKL.facc")
        # Seed the file (header included) so every writer appends.
        seed = PersistentAnalysisCache(path, "SKL")
        seed.maybe_store(b"seed", {"_analyzed": [0]})
        seed.flush()

        n_writers, per_writer = 8, 25
        errors = []

        def write(writer_id):
            try:
                mine = PersistentAnalysisCache(path, "SKL")
                for i in range(per_writer):
                    sig = b"w%02d-%03d" % (writer_id, i)
                    mine.maybe_store(sig, {"_analyzed": [writer_id, i]})
                    mine.flush()  # one O_APPEND write per record
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(i,))
                   for i in range(n_writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        merged = PersistentAnalysisCache(path, "SKL")
        assert merged.corrupt_records == 0
        assert merged.loaded == 1 + n_writers * per_writer
        assert merged.load(b"w03-007") == {"_analyzed": [3, 7]}


class TestThroughAnalysisCache:
    @pytest.fixture(scope="class")
    def suite(self):
        return BenchmarkSuite.generate(8, seed=5)

    def test_restart_starts_warm_and_predicts_identically(
            self, suite, tmp_path):
        blocks = [b.block_l for b in suite]
        path = str(tmp_path / "SKL.facc")

        db1 = UopsDatabase(SKL)
        cache1 = AnalysisCache(
            db1, persistent=PersistentAnalysisCache(path, "SKL"))
        # The persistent layer is fed by the object core's analysis
        # cache, so this round-trip pins core="object" (as the
        # serving tier does).
        with Engine(SKL, db=db1, cache=cache1, core="object") as engine:
            cold = engine.predict_many(blocks, ThroughputMode.LOOP)
            assert cache1.sync_persistent() > 0
            assert cache1.sync_persistent() == 0  # stable set: no-op

        # "Restart": fresh database, cache, and engine over the file.
        db2 = UopsDatabase(SKL)
        persistent = PersistentAnalysisCache(path, "SKL")
        assert persistent.loaded == len(blocks)
        cache2 = AnalysisCache(db2, persistent=persistent)
        with Engine(SKL, db=db2, cache=cache2, core="object") as engine:
            warm = engine.predict_many(blocks, ThroughputMode.LOOP)
        assert cache2.disk_hits == len(blocks)
        assert persistent.disk_hits == len(blocks)
        assert [p.cycles for p in warm] == [p.cycles for p in cold]
        assert [p.bottlenecks for p in warm] \
            == [p.bottlenecks for p in cold]

    def test_stats_nest_persistent_counters(self, tmp_path):
        db = UopsDatabase(SKL)
        persistent = PersistentAnalysisCache(
            str(tmp_path / "SKL.facc"), "SKL")
        cache = AnalysisCache(db, persistent=persistent)
        stats = cache.stats()
        assert stats["disk_hits"] == 0
        assert stats["persistent"]["entries"] == 0
        assert set(stats["persistent"]) == {
            "path", "entries", "loaded", "disk_hits", "stores",
            "corrupt_records", "rewrites"}


class TestLoadCorpus:
    def test_hex_lines_comments_and_csv(self, tmp_path):
        corpus = tmp_path / "corpus.txt"
        corpus.write_text(
            "# warm-up corpus\n"
            "4801d8\n"
            "\n"
            "4889d8,1.25\n"
            "  90  \n")
        assert load_corpus(str(corpus)) == ["4801d8", "4889d8", "90"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_corpus(str(tmp_path / "nope.txt"))
