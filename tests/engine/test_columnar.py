"""Columnar-core unit behavior: routing, memoization, bounds, errors."""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile
from repro.engine import ColumnarCore, Engine, resolve_core
from repro.engine.columnar import DEFAULT_CORE
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")
MODES = (ThroughputMode.UNROLLED, ThroughputMode.LOOP)


@pytest.fixture(scope="module")
def blocks():
    return [b.block_l for b in BenchmarkSuite.generate(12, seed=13)]


class TestResolveCore:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CORE", "columnar")
        assert resolve_core("object") == "object"

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CORE", "object")
        assert resolve_core() == "object"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_CORE", raising=False)
        assert resolve_core() == DEFAULT_CORE == "columnar"

    def test_invalid_explicit_raises(self):
        with pytest.raises(ValueError, match="unknown prediction core"):
            resolve_core("vectorized")

    def test_invalid_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CORE", "bogus")
        with pytest.warns(UserWarning, match="REPRO_ENGINE_CORE"):
            assert resolve_core() == DEFAULT_CORE


class TestEngineRouting:
    def test_default_engine_uses_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_CORE", raising=False)
        engine = Engine(SKL)
        assert engine.core == "columnar"
        assert isinstance(engine.predictor, ColumnarCore)
        assert engine.spec.core == "columnar"

    def test_object_pin(self):
        engine = Engine(SKL, core="object")
        assert engine.core == "object"
        assert engine.predictor is engine.model
        assert engine.columnar is None

    def test_env_routing(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CORE", "object")
        assert Engine(SKL).core == "object"

    def test_object_core_still_populates_analysis_cache(self, blocks):
        engine = Engine(SKL, core="object")
        engine.predict_many(blocks, ThroughputMode.LOOP)
        assert engine.cache.misses >= len(blocks)

    def test_columnar_engine_equals_object_engine(self, blocks):
        columnar = Engine(SKL, core="columnar")
        reference = Engine(SKL, core="object")
        for mode in MODES:
            assert columnar.predict_many(blocks, mode) \
                == reference.predict_many(blocks, mode)
            for block in blocks:
                assert columnar.predict(block, mode) \
                    == reference.predict(block, mode)

    def test_parallel_columnar_identical_to_serial(self, blocks):
        serial = Engine(SKL, core="columnar")
        expected = serial.predict_many(blocks, ThroughputMode.LOOP)
        with Engine(SKL, core="columnar", n_workers=2) as engine:
            assert engine.spec.core == "columnar"
            assert engine.predict_many(blocks, ThroughputMode.LOOP) \
                == expected

    def test_variant_engines_route_through_columnar(self, blocks):
        kwargs = dict(simple_predec=True, simple_dec=True,
                      exclude=(Component.PORTS,))
        reference = Facile(SKL, **kwargs)
        engine = Engine(SKL, core="columnar", **kwargs)
        assert isinstance(engine.predictor, ColumnarCore)
        for mode in MODES:
            assert engine.predict_many(blocks, mode) \
                == reference.predict_many(blocks, mode)

    def test_components_subset(self, blocks):
        only = (Component.ISSUE, Component.PORTS)
        reference = Facile(SKL, components=only)
        core = ColumnarCore(SKL, components=only)
        for block in blocks:
            want = reference.predict(block, ThroughputMode.UNROLLED)
            got = core.predict(block, ThroughputMode.UNROLLED)
            assert want == got
            assert set(got.bounds) == set(only)


class TestMemoization:
    def test_signature_sharing_across_payload_values(self):
        core = ColumnarCore(SKL)
        a = BasicBlock.from_asm("add rax, 100\nmov rbx, [rsi + 8]")
        b = BasicBlock.from_asm("add rax, 101\nmov rbx, [rsi + 96]")
        core.predict(a, ThroughputMode.LOOP)
        stats = core.stats()
        assert stats["misses"] == 1
        core.predict(b, ThroughputMode.LOOP)
        stats = core.stats()
        assert stats["misses"] == 1  # warm signature, no recompile
        assert stats["sig_hits"] == 1

    def test_disp_zero_is_a_distinct_signature(self):
        # disp == 0 changes the µop memory-component count, so it must
        # not share an entry with disp != 0.
        core = ColumnarCore(SKL)
        with_disp = BasicBlock.from_asm("mov rbx, [rsi + 8]")
        zero_disp = BasicBlock.from_asm("mov rbx, [rsi]")
        core.predict(with_disp, ThroughputMode.LOOP)
        core.predict(zero_disp, ThroughputMode.LOOP)
        assert core.stats()["misses"] == 2
        reference = Facile(SKL)
        for block in (with_disp, zero_disp):
            assert core.predict(block, ThroughputMode.LOOP) \
                == reference.predict(block, ThroughputMode.LOOP)

    def test_raw_lru_hit(self, blocks):
        core = ColumnarCore(SKL)
        core.predict(blocks[0], ThroughputMode.LOOP)
        core.predict_raw(blocks[0].raw, ThroughputMode.LOOP)
        assert core.stats()["raw_hits"] == 1

    def test_max_entries_bound(self, blocks):
        core = ColumnarCore(SKL, max_entries=4)
        core.predict_many(blocks, ThroughputMode.LOOP)
        assert core.stats()["entries"] <= 4
        # Evicted entries recompile correctly.
        assert core.predict(blocks[0], ThroughputMode.LOOP) \
            == Facile(SKL).predict(blocks[0], ThroughputMode.LOOP)

    def test_clear(self, blocks):
        core = ColumnarCore(SKL)
        core.predict_many(blocks, ThroughputMode.LOOP)
        core.clear()
        assert core.stats()["entries"] == 0
        assert core.predict(blocks[0], ThroughputMode.LOOP) \
            == Facile(SKL).predict(blocks[0], ThroughputMode.LOOP)

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            ColumnarCore(SKL, max_entries=0)

    def test_predictions_are_fresh_objects(self, blocks):
        core = ColumnarCore(SKL)
        first = core.predict(blocks[0], ThroughputMode.LOOP)
        second = core.predict(blocks[0], ThroughputMode.LOOP)
        assert first == second
        assert first.bounds is not second.bounds
        assert first.bottlenecks is not second.bottlenecks
        first.bounds.clear()
        assert core.predict(blocks[0], ThroughputMode.LOOP) == second


class TestErrors:
    def test_decode_error_propagates_like_from_bytes(self):
        core = ColumnarCore(SKL)
        bogus = bytes.fromhex("060606")
        with pytest.raises(Exception) as reference:
            BasicBlock.from_bytes(bogus)
        with pytest.raises(type(reference.value)):
            core.predict_raw(bogus, ThroughputMode.LOOP)

    def test_empty_raw_raises_value_error(self):
        core = ColumnarCore(SKL)
        with pytest.raises(ValueError):
            core.predict_raw(b"", ThroughputMode.LOOP)

    def test_unsupported_template_error_replays(self):
        # AVX on Sandy Bridge is fine, but e.g. SKL-sampled templates
        # may not exist everywhere; use a µarch/template mismatch.
        from repro.uops.database import UnsupportedInstruction
        block = BasicBlock.from_asm("popcnt rax, rbx")
        old = uarch_by_name("SNB")
        try:
            Facile(old).predict(block, ThroughputMode.LOOP)
        except UnsupportedInstruction:
            core = ColumnarCore(old)
            for _ in range(2):  # the stored error replays per call
                with pytest.raises(UnsupportedInstruction):
                    core.predict(block, ThroughputMode.LOOP)
        else:
            pytest.skip("popcnt supported on SNB in this table")


def test_engine_batch_path_matches_reference_on_record(blocks):
    engine = Engine(SKL, core="columnar")
    results = engine.predict_many(blocks, ThroughputMode.LOOP,
                                  on_error="record")
    assert results == Facile(SKL).predict_many(blocks,
                                               ThroughputMode.LOOP)
