"""Forward-compat: `.facc` logs and the columnar core coexist.

The persistent analysis cache stores *object-path* artifacts (exported
``BlockAnalysis`` payloads).  The columnar core does not read or write
it — but a deployment that switches the engine default to columnar
still carries `.facc` files written by earlier object-core runs, and
the serving tier (object-pinned) keeps appending to them.  These tests
pin the compatibility contract:

* an old log loads cleanly and compacts while the process-default core
  is columnar,
* predictions served by a columnar engine over a warm persistent
  object cache are byte-identical to the log's producer,
* a compacted log round-trips back into an object-pinned engine.
"""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.engine.cache import AnalysisCache
from repro.engine.engine import Engine
from repro.engine.persist import PersistentAnalysisCache
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")


@pytest.fixture(scope="module")
def blocks():
    return [b.block_l for b in BenchmarkSuite.generate(8, seed=31)]


@pytest.fixture()
def old_log(blocks, tmp_path):
    """A `.facc` written by an object-core engine (the 'old' deploy)."""
    path = str(tmp_path / "SKL.facc")
    db = UopsDatabase(SKL)
    cache = AnalysisCache(db, persistent=PersistentAnalysisCache(path,
                                                                 "SKL"))
    with Engine(SKL, db=db, cache=cache, core="object") as engine:
        golden = engine.predict_many(blocks, ThroughputMode.LOOP)
        assert cache.sync_persistent() == len(blocks)
    return path, golden


def test_old_log_loads_under_columnar_default(old_log, blocks,
                                              monkeypatch):
    path, golden = old_log
    monkeypatch.setenv("REPRO_ENGINE_CORE", "columnar")
    persistent = PersistentAnalysisCache(path, "SKL")
    assert persistent.loaded == len(blocks)
    assert persistent.corrupt_records == 0
    db = UopsDatabase(SKL)
    cache = AnalysisCache(db, persistent=persistent)
    with Engine(SKL, db=db, cache=cache) as engine:
        assert engine.core == "columnar"
        assert engine.predict_many(blocks, ThroughputMode.LOOP) == golden
    # The columnar path never touched the persistent layer.
    assert persistent.disk_hits == 0
    assert cache.disk_hits == 0


def test_compaction_with_columnar_active(old_log, blocks, monkeypatch):
    path, golden = old_log
    monkeypatch.setenv("REPRO_ENGINE_CORE", "columnar")
    # Append a second generation of the same working set: the log now
    # carries duplicates worth compacting.
    db = UopsDatabase(SKL)
    persistent = PersistentAnalysisCache(path, "SKL")
    cache = AnalysisCache(db, persistent=persistent)
    with Engine(SKL, db=db, cache=cache, core="object") as engine:
        engine.predict_many(blocks, ThroughputMode.LOOP)
        cache.sync_persistent()
    persistent.compact()
    assert persistent.corrupt_records == 0

    # Reload the compacted file while the columnar default is active
    # and serve through both cores: bytes must match the producer.
    reloaded = PersistentAnalysisCache(path, "SKL")
    assert reloaded.loaded == len(blocks)
    db2 = UopsDatabase(SKL)
    cache2 = AnalysisCache(db2, persistent=reloaded)
    with Engine(SKL, db=db2, cache=cache2) as columnar_engine:
        assert columnar_engine.core == "columnar"
        assert columnar_engine.predict_many(blocks,
                                            ThroughputMode.LOOP) == golden
    db3 = UopsDatabase(SKL)
    cache3 = AnalysisCache(db3,
                           persistent=PersistentAnalysisCache(path,
                                                              "SKL"))
    with Engine(SKL, db=db3, cache=cache3, core="object") as engine:
        assert engine.predict_many(blocks, ThroughputMode.LOOP) == golden
        assert cache3.disk_hits == len(blocks)  # served from the log
