"""Engine lifecycle: ``close()`` is idempotent and final.

A closed engine still serves the serial path (closing only shuts the
pool down), but refuses to spawn a fresh pool — crash-recovery respawns
must never resurrect pools on engines their owner already released.
"""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.engine.engine import Engine
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")


@pytest.fixture(scope="module")
def blocks():
    return [b.block_l for b in BenchmarkSuite.generate(4, seed=3)]


class TestClose:
    def test_close_is_idempotent(self):
        engine = Engine(SKL)
        engine.close()
        engine.close()  # second close must be a no-op, not an error

    def test_context_manager_closes(self, blocks):
        with Engine(SKL) as engine:
            engine.predict_many(blocks, ThroughputMode.LOOP)
        engine.close()  # close-after-exit is still fine

    def test_serial_path_survives_close(self, blocks):
        engine = Engine(SKL)
        golden = engine.predict_many(blocks, ThroughputMode.LOOP)
        engine.close()
        again = engine.predict_many(blocks, ThroughputMode.LOOP)
        assert [p.cycles for p in again] == [p.cycles for p in golden]

    def test_parallel_path_refuses_after_close(self, blocks):
        engine = Engine(SKL, n_workers=1)
        engine.close()
        with pytest.raises(RuntimeError, match="Engine is closed"):
            engine.predict_many(blocks, ThroughputMode.LOOP)

    def test_pool_shutdown_does_not_mark_closed(self, blocks):
        # Crash recovery tears pools down via _shutdown_pool; the
        # engine must stay usable (a fresh pool may be spawned).
        engine = Engine(SKL, n_workers=1)
        try:
            first = engine.predict_many(blocks, ThroughputMode.LOOP)
            engine._shutdown_pool()
            second = engine.predict_many(blocks, ThroughputMode.LOOP)
            assert [p.cycles for p in second] \
                == [p.cycles for p in first]
        finally:
            engine.close()
