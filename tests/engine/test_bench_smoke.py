"""Fast smoke variant of the perf-regression harness (tier-1).

Marked ``perf`` so it can be selected/deselected with ``-m perf``; the
full-size harness lives in ``benchmarks/perf/`` and the regression gate
in ``scripts/bench.py``.
"""

import pytest

from repro.core.components import ThroughputMode
from repro.engine import bench as bench_mod
from repro.eval.timing import VARIANT_PASSES


@pytest.mark.perf
def test_perf_harness_smoke(tmp_path):
    payload = bench_mod.run_perf_harness(
        size=12, uarchs=("SKL",), modes=[ThroughputMode.LOOP],
        workers=1)
    by_path = payload["results"]["SKL"]["loop"]
    assert set(by_path) == set(bench_mod.PATHS)
    for path, numbers in by_path.items():
        assert numbers["blocks_per_sec"] > 0
        # The single paths time the never-seen variant stream; the
        # batch paths time the suite itself.
        if path in ("single", "single_object"):
            assert numbers["n_blocks"] == 12 * VARIANT_PASSES
        else:
            assert numbers["n_blocks"] == 12

    out = tmp_path / "BENCH_predict.json"
    bench_mod.write_bench_json(payload, str(out))
    reloaded = bench_mod.load_bench_json(str(out))
    assert bench_mod.find_regressions(payload, reloaded) == []

    # A synthetic 10x slowdown must trip the 20% gate on the gated
    # paths; the noisy parallel path is recorded but never gated.
    # ``schema`` must match: comparable() refuses cross-schema gating.
    slow = {"suite": payload["suite"], "schema": payload["schema"],
            "results": {"SKL": {"loop": {
                path: {"blocks_per_sec": numbers["blocks_per_sec"] / 10.0}
                for path, numbers in by_path.items()}}}}
    regressions = bench_mod.find_regressions(slow, payload)
    assert {r[2] for r in regressions} == set(bench_mod.GATED_PATHS)

    # A run on a different suite must never be gated against this one.
    other_suite = dict(slow, suite={"size": 999, "seed": 1})
    assert bench_mod.find_regressions(other_suite, payload) == []
    assert bench_mod.gated_overlap(other_suite, payload) == 0

    # A run on the same suite under a different schema must never be
    # gated either: path names change meaning across schemas.
    other_schema = dict(slow, schema=payload["schema"] - 1)
    assert bench_mod.find_regressions(other_schema, payload) == []
    assert bench_mod.gated_overlap(other_schema, payload) == 0

    # A run covering a disjoint µarch set shares no gated entries —
    # callers must detect this instead of reporting a green gate.
    other_uarch = {"suite": payload["suite"], "schema": payload["schema"],
                   "results": {"ICL": slow["results"]["SKL"]}}
    assert bench_mod.gated_overlap(other_uarch, payload) == 0
    assert bench_mod.gated_overlap(slow, payload) > 0


@pytest.mark.perf
def test_regression_gate_tolerance():
    base = {"results": {"SKL": {"loop": {
        "single": {"blocks_per_sec": 100.0}}}}}
    ok = {"results": {"SKL": {"loop": {
        "single": {"blocks_per_sec": 85.0}}}}}
    bad = {"results": {"SKL": {"loop": {
        "single": {"blocks_per_sec": 79.0}}}}}
    assert bench_mod.find_regressions(ok, base, tolerance=0.20) == []
    assert bench_mod.find_regressions(bad, base, tolerance=0.20) == [
        ("SKL", "loop", "single", 79.0, 100.0)]
