"""Engine property tests: caching and parallelism never change results.

The acceptance property of the batch engine is that every path —
per-call with a cold cache (the seed behavior), serial batch with a
shared cache, and the multiprocessing pool — produces *identical*
``Prediction`` values (throughput, bounds, bottlenecks, critical
instructions, detail payloads) on a generated BHive suite, for every
µarch and both throughput notions.
"""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile
from repro.engine import AnalysisCache, Engine
from repro.isa.block import BasicBlock
from repro.uarch import ALL_UARCHS, uarch_by_name
from repro.uops.database import UopsDatabase

MODES = (ThroughputMode.UNROLLED, ThroughputMode.LOOP)

SKL = uarch_by_name("SKL")


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite.generate(24, seed=77)


def seed_style_predictions(cfg, blocks, mode):
    """The pre-engine behavior: every call re-derives the analysis."""
    db = UopsDatabase(cfg)
    cache = AnalysisCache(db)
    model = Facile(cfg, db=db, cache=cache)
    out = []
    for block in blocks:
        cache.clear()
        out.append(model.predict(block, mode))
    return out


class TestPathEquivalence:
    @pytest.mark.parametrize("cfg", ALL_UARCHS,
                             ids=lambda cfg: cfg.abbrev)
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_cached_equals_uncached(self, suite, cfg, mode):
        blocks = [b.block(mode is ThroughputMode.LOOP) for b in suite]
        uncached = seed_style_predictions(cfg, blocks, mode)
        cached = Engine(cfg).predict_many(blocks, mode)
        assert cached == uncached

    @pytest.mark.parametrize("uarch", ("SKL", "RKL"))
    def test_parallel_equals_serial(self, suite, uarch):
        cfg = uarch_by_name(uarch)
        for mode in MODES:
            blocks = [b.block(mode is ThroughputMode.LOOP)
                      for b in suite]
            serial = Engine(cfg).predict_many(blocks, mode)
            with Engine(cfg, n_workers=2, chunksize=4) as engine:
                parallel = engine.predict_many(blocks, mode)
            assert parallel == serial

    def test_predict_suite_covers_both_modes(self, suite):
        with Engine(SKL, n_workers=1) as engine:
            by_mode = engine.predict_suite(suite)
        assert set(by_mode) == set(MODES)
        for mode, predictions in by_mode.items():
            assert len(predictions) == len(suite)
            assert predictions == Engine(SKL).predict_many(
                [b.block(mode is ThroughputMode.LOOP) for b in suite],
                mode)

    def test_parallel_measurement_equals_serial(self, suite):
        from repro.engine.engine import measure_many
        from repro.sim.measure import measure
        db = UopsDatabase(SKL)
        blocks = [b.block_l for b in suite][:8]
        serial = [measure(block, SKL, ThroughputMode.LOOP, db,
                          use_cache=False) for block in blocks]
        parallel = measure_many(SKL, blocks, ThroughputMode.LOOP,
                                n_workers=2)
        assert parallel == serial
        # Worker results must land in the process-wide measurement
        # cache, so a repeat is served without a pool.
        from repro.sim.measure import cached_measurement
        assert all(cached_measurement(block, SKL, ThroughputMode.LOOP)
                   is not None for block in blocks)
        assert measure_many(SKL, blocks, ThroughputMode.LOOP,
                            n_workers=2) == serial

    def test_round_tripped_blocks_share_the_analysis(self, suite):
        # The parallel path ships raw bytes; equal bytes must hit the
        # same cache entry as the original decoded block.
        engine = Engine(SKL)
        blocks = [b.block_l for b in suite]
        engine.predict_many(blocks, ThroughputMode.LOOP)
        misses = engine.cache.misses
        engine.predict_many(
            [BasicBlock.from_bytes(b.raw) for b in blocks],
            ThroughputMode.LOOP)
        assert engine.cache.misses == misses


class TestCacheKeying:
    def test_equal_signature_blocks_share_one_analysis(self):
        db = UopsDatabase(SKL)
        cache = AnalysisCache(db)
        first = BasicBlock.from_asm("add rax, rbx\nimul rcx, rdx")
        second = BasicBlock.from_bytes(first.raw)
        assert first is not second
        analysis_a = cache.analysis(first)
        analysis_b = cache.analysis(second)
        assert analysis_a is analysis_b
        assert cache.misses == 1 and cache.hits == 1
        assert len(cache) == 1

    def test_shared_cache_is_per_database(self):
        db = UopsDatabase(SKL)
        assert AnalysisCache.shared(db) is AnalysisCache.shared(db)
        assert AnalysisCache.shared(db) is not \
            AnalysisCache.shared(UopsDatabase(SKL))

    def test_facile_variants_share_the_db_cache(self):
        db = UopsDatabase(SKL)
        full = Facile(SKL, db=db)
        only = Facile(SKL, db=db, components={Component.PORTS})
        block = BasicBlock.from_asm("imul rax, rbx\nadd rcx, rdx")
        full.predict(block, ThroughputMode.UNROLLED)
        misses = full.cache.misses
        only.predict(block, ThroughputMode.UNROLLED)
        assert only.cache is full.cache
        assert full.cache.misses == misses


class TestComponentBoundCaching:
    def test_component_loop_analyzes_once(self):
        # The ablation-bench pattern: every component of one block in a
        # loop must not re-run the block analysis per query.
        model = Facile(SKL)
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        for component in (Component.PREDEC, Component.DEC,
                          Component.ISSUE, Component.PORTS,
                          Component.PRECEDENCE):
            model.component_bound(block, component,
                                  ThroughputMode.UNROLLED)
        assert model.cache.misses == 1
        assert model.cache.hits >= 4

    def test_component_bound_matches_predict_bounds(self):
        model = Facile(SKL)
        block = BasicBlock.from_asm(
            "mov rax, qword ptr [rsi]\nimul rax, rbx\njne -12")
        prediction = model.predict(block, ThroughputMode.LOOP)
        for component, bound in prediction.bounds.items():
            assert model.component_bound(
                block, component, ThroughputMode.LOOP) == bound


class TestRecombinedCritical:
    def test_recombined_recomputes_critical_instructions(self):
        # Precedence-bound block: idealizing Precedence leaves Ports (or
        # another component) as the bottleneck; the recombined prediction
        # must report that bottleneck's critical instructions instead of
        # silently dropping them.
        block = BasicBlock.from_asm(
            "imul rax, rbx\nimul rcx, rax\nimul rdx, r8\nimul r9, r10")
        prediction = Facile(SKL).predict(block, ThroughputMode.UNROLLED)
        for excluded in Component:
            enabled = set(Component) - {excluded}
            recombined = prediction.recombined(enabled)
            fresh = Facile(SKL, exclude={excluded}).predict(
                block, ThroughputMode.UNROLLED)
            assert recombined.critical_instruction_indices == \
                fresh.critical_instruction_indices, excluded

    def test_ports_bottleneck_recombination_reports_contenders(self):
        block = BasicBlock.from_asm(
            "imul rax, rbx\nimul rcx, rdx\nimul rsi, rdi")
        prediction = Facile(SKL).predict(block, ThroughputMode.UNROLLED)
        without_ports_bottleneck = prediction.recombined(
            set(Component) - set(prediction.bottlenecks))
        if Component.PORTS in without_ports_bottleneck.bottlenecks:
            assert without_ports_bottleneck.critical_instruction_indices


class TestPortsMemo:
    def test_identical_multisets_share_the_result(self):
        from repro.core.ports import ports_bound
        from repro.uops.blockinfo import analyze_block, macro_ops
        db = UopsDatabase(SKL)
        ops_a = macro_ops(analyze_block(
            BasicBlock.from_asm("imul rax, rbx\nadd rcx, rdx"), SKL, db),
            SKL)
        ops_b = macro_ops(analyze_block(
            BasicBlock.from_asm("imul r8, r9\nadd r10, r11"), SKL, db),
            SKL)
        # Different blocks, same canonical port multiset: one result
        # object serves both.
        assert ports_bound(ops_a) is ports_bound(ops_b)

    def test_deterministic_critical_combination(self):
        from repro.core.ports import clear_ports_memo, ports_bound
        from repro.uops.blockinfo import analyze_block, macro_ops
        db = UopsDatabase(SKL)
        ops = macro_ops(analyze_block(
            BasicBlock.from_asm("imul rax, rbx\nadd rcx, rdx\n"
                                "shl rsi, 3"), SKL, db), SKL)
        first = ports_bound(ops)
        clear_ports_memo()
        second = ports_bound(ops)
        assert first == second
