"""Golden-file regression: both cores reproduce frozen predictions.

``tests/data/golden_predictions.json`` freezes the full wire-format
output (the ``facile predict`` / service serialization, exact fraction
strings included) of a fixed 32-block corpus across µarchs and modes.
Both prediction cores must reproduce it byte-for-byte — this catches
silent drift in *either* path: a model change shows up as both cores
moving together, a core bug as them splitting.

To regenerate after an intentional model change::

    PYTHONPATH=src python tests/engine/test_golden.py --regen
"""

import json
import os

import pytest

from repro.bhive.categories import CATEGORIES
from repro.bhive.generator import BlockGenerator
from repro.core.components import ThroughputMode
from repro.core.model import Facile
from repro.engine.columnar import ColumnarCore
from repro.isa.block import BasicBlock
from repro.service import serialize
from repro.uarch import uarch_by_name

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "data", "golden_predictions.json")

#: (seed, µarch rotation) pinning the corpus; 32 blocks total.
CORPUS_SEED = 2024
CORPUS_UARCHS = ("SKL", "RKL", "HSW", "SNB")


def build_corpus():
    """The fixed corpus: (hex, uarch, mode) triples.

    Generator blocks cover every category in both unrolled and loop
    form; µarchs rotate so front-end differences (LSD, JCC erratum,
    decoder widths) are all exercised.
    """
    generator = BlockGenerator(CORPUS_SEED)
    corpus = []
    index = 0
    while len(corpus) < 32:
        category = CATEGORIES[index % len(CATEGORIES)]
        block_u, block_l = generator.block_pair(category)
        uarch = CORPUS_UARCHS[index % len(CORPUS_UARCHS)]
        corpus.append((block_u.raw.hex(), uarch, "unrolled"))
        corpus.append((block_l.raw.hex(), uarch, "loop"))
        index += 1
    return corpus[:32]


def predictor_for(core, cfg):
    return ColumnarCore(cfg) if core == "columnar" else Facile(cfg)


def compute_records(core):
    """Serialized predictions of the corpus under one core."""
    predictors = {}
    records = []
    for hexstr, uarch, mode_value in build_corpus():
        if uarch not in predictors:
            predictors[uarch] = predictor_for(core, uarch_by_name(uarch))
        block = BasicBlock.from_bytes(bytes.fromhex(hexstr))
        prediction = predictors[uarch].predict(
            block, ThroughputMode(mode_value))
        records.append(serialize.prediction_to_dict(prediction, block,
                                                    uarch))
    return records


def load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_corpus_is_32_blocks():
    assert len(build_corpus()) == 32
    assert len({hexstr for hexstr, _, _ in build_corpus()}) == 32


@pytest.mark.parametrize("core", ("object", "columnar"))
def test_cores_reproduce_golden_predictions(core):
    golden = load_golden()
    records = compute_records(core)
    assert len(records) == len(golden["records"]) == 32
    for want, got in zip(golden["records"], records):
        assert want == got, (core, want["block"]["hex"])


def test_golden_file_is_canonical_json():
    # The committed file is regenerable byte-for-byte (sorted keys,
    # 2-space indent, trailing newline) so diffs stay reviewable.
    with open(GOLDEN_PATH, "rb") as handle:
        raw = handle.read()
    assert raw == _dump(load_golden())


def _dump(payload):
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()


def _regen():
    payload = {
        "seed": CORPUS_SEED,
        "uarchs": list(CORPUS_UARCHS),
        "records": compute_records("object"),
    }
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "wb") as handle:
        handle.write(_dump(payload))
    print(f"wrote {len(payload['records'])} records to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
