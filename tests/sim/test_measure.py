"""Measurement-harness tests."""

import pytest

from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.sim.measure import Measurement, clear_cache, measure, measure_suite
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")


class TestMeasure:
    def test_rounded_to_two_decimals(self):
        block = BasicBlock.from_asm("add rax, rbx\nnop5\nadd rcx, rdx")
        value = measure(block, SKL, ThroughputMode.UNROLLED,
                        use_cache=False)
        assert value == round(value, 2)

    def test_cache_hit_returns_same_value(self):
        clear_cache()
        block = BasicBlock.from_asm("imul rax, rbx")
        first = measure(block, SKL, ThroughputMode.UNROLLED)
        second = measure(block, SKL, ThroughputMode.UNROLLED)
        assert first == second

    def test_cache_key_includes_mode_and_uarch(self):
        clear_cache()
        block = BasicBlock.from_asm("add cx, 1000\nnop\njne -8")
        u = measure(block, SKL, ThroughputMode.UNROLLED)
        l = measure(block, SKL, ThroughputMode.LOOP)
        assert u != l  # LCP stalls only hit the unrolled path

    def test_measure_suite(self):
        blocks = [BasicBlock.from_asm("add rax, rbx"),
                  BasicBlock.from_asm("imul rax, rbx")]
        results = measure_suite(blocks, SKL, ThroughputMode.UNROLLED)
        assert [type(r) for r in results] == [Measurement, Measurement]
        assert results[0].cycles < results[1].cycles
