"""µop expansion tests."""

import pytest

from repro.isa.assembler import assemble_line
from repro.sim.uop import expand_macro_op
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import MacroOp
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")
DB = UopsDatabase(SKL)


def expand(asm: str, cfg=SKL, db=DB):
    instr = assemble_line(asm)
    op = MacroOp((instr,), db.info(instr), 0)
    return expand_macro_op(op, cfg)


class TestExpansion:
    def test_simple_alu(self):
        e = expand("add rax, rbx")
        assert len(e.uops) == 1
        assert e.uops[0].produces_results
        assert set(e.uops[0].reg_sources) == {"rax", "rbx"}
        assert len(e.fused) == 1

    def test_load_op_dataflow(self):
        e = expand("add rax, qword ptr [rsi]")
        load = next(u for u in e.uops if u.ports == frozenset({2, 3}))
        alu = next(u for u in e.uops if u is not load)
        assert load.reg_sources == ("rsi",)
        assert alu.internal_source == e.uops.index(load)
        assert alu.produces_results

    def test_lea_keeps_address_sources(self):
        e = expand("lea rax, [rbx+rcx*4]")
        assert set(e.uops[0].reg_sources) == {"rbx", "rcx"}

    def test_store_split_into_sta_std(self):
        e = expand("mov qword ptr [rsi+16], rax")
        agu = next(u for u in e.uops if u.reg_sources == ("rsi",))
        data = next(u for u in e.uops if u is not agu)
        assert not agu.produces_results
        assert "rax" in data.reg_sources

    def test_rmw_partition(self):
        e = expand("add qword ptr [rsi], rax")
        assert len(e.fused) == 2
        assert len(e.uops) == 4
        main = e.fused[0]
        store = e.fused[1]
        assert len(main.uop_indices) == 2
        assert len(store.uop_indices) == 2

    def test_eliminated_move_has_no_uops(self):
        e = expand("mov rax, rbx")
        assert e.uops == []
        assert len(e.fused) == 1
        assert not e.has_producer

    def test_div_one_uop_per_fused(self):
        e = expand("div rcx")
        assert len(e.fused) == 4
        assert all(len(f.uop_indices) == 1 for f in e.fused)
        assert sum(u.produces_results for u in e.uops) == 1

    def test_pure_load_produces_result(self):
        e = expand("mov rax, qword ptr [rsi]")
        assert len(e.uops) == 1
        assert e.uops[0].produces_results
        assert e.uops[0].latency == SKL.load_latency

    def test_unlaminated_issue_cost_on_snb(self):
        snb = uarch_by_name("SNB")
        snb_db = UopsDatabase(snb)
        e = expand("mov qword ptr [rsi+rbx*8], rax", snb, snb_db)
        assert sum(f.issue_cost for f in e.fused) == 2
