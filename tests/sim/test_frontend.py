"""Front-end delivery engine tests."""

import pytest

from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.sim.frontend import (
    DsbFrontEnd,
    LegacyFrontEnd,
    LsdFrontEnd,
    _PredecodeSchedule,
)
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block, macro_ops

SKL = uarch_by_name("SKL")
RKL = uarch_by_name("RKL")


def prepared(asm: str, cfg=SKL):
    block = BasicBlock.from_asm(asm)
    ops = macro_ops(analyze_block(block, cfg), cfg)
    fused_counts = [op.info.fused_uops for op in ops]
    return block, ops, fused_counts


class TestLsdFrontEnd:
    def test_window_boundary_creates_bubble(self):
        _, ops, counts = prepared(
            "add rax, rbx\nadd rcx, rdx\nadd rsi, rdi\n"
            "add r8, r9\nadd r10, r11")  # 5 µops, width 4, no unroll
        fe = LsdFrontEnd(counts, SKL)
        idq = []
        fe.tick(idq, 999)
        assert len(idq) == 4
        fe.tick(idq, 999)
        assert len(idq) == 5  # only 1 more: window boundary
        fe.tick(idq, 999)
        assert len(idq) == 9

    def test_iteration_tagging(self):
        _, ops, counts = prepared("add rax, rbx\nadd rcx, rdx")
        fe = LsdFrontEnd(counts, SKL)
        idq = []
        for _ in range(4):
            fe.tick(idq, 999)
        iterations = {u.iteration for u in idq}
        assert iterations == set(range(len(idq) // 2))


class TestDsbFrontEnd:
    def test_short_block_stalls_at_branch(self):
        # mov is not macro-fusible, so the branch stays a separate µop.
        block, ops, counts = prepared("mov rax, 1\njne -7")
        fe = DsbFrontEnd(counts, block.num_bytes, SKL)
        idq = []
        fe.tick(idq, 999)
        # 2 µops < dsb width 6, but the branch ends delivery.
        assert len(idq) == 2

    def test_long_block_streams_at_full_width(self):
        asm = "\n".join(["add rax, 1000000"] * 8)
        block, ops, counts = prepared(asm)
        assert block.num_bytes >= 32
        fe = DsbFrontEnd(counts, block.num_bytes, SKL)
        idq = []
        fe.tick(idq, 999)
        assert len(idq) == SKL.dsb_width

    def test_respects_idq_space(self):
        block, ops, counts = prepared("add rax, rbx\nadd rcx, rdx")
        fe = DsbFrontEnd(counts, block.num_bytes, SKL)
        idq = []
        fe.tick(idq, 1)
        assert len(idq) == 1


class TestPredecodeSchedule:
    def test_total_cycles_match_analytical_bound(self):
        from repro.core.predecoder import predec_bound
        for asm in ("add rax, rbx\nnop5\nadd rcx, rdx\nnop7\nadd rsi, rdi",
                    "add cx, 1000\nnop\nnop",
                    "\n".join(["nop15"] * 3)):
            block = BasicBlock.from_asm(asm)
            ops = macro_ops(analyze_block(block, SKL), SKL)
            schedule = _PredecodeSchedule(block, ops, unrolled=True)
            analytical = predec_bound(block, SKL, ThroughputMode.UNROLLED)
            assert schedule.period_cycles == \
                analytical * schedule.period_iterations

    def test_loop_mode_has_period_one_iteration(self):
        block = BasicBlock.from_asm("add rax, rbx\nnop5\njne -10")
        ops = macro_ops(analyze_block(block, SKL), SKL)
        schedule = _PredecodeSchedule(block, ops, unrolled=False)
        assert schedule.period_iterations == 1

    def test_deliveries_cover_all_ops_in_order(self):
        block = BasicBlock.from_asm("add rax, rbx\nnop5\nadd rcx, rdx")
        ops = macro_ops(analyze_block(block, SKL), SKL)
        schedule = _PredecodeSchedule(block, ops, unrolled=True)
        seen = []
        clock = 0
        while len(seen) < 2 * schedule.period_iterations * len(ops):
            seen.extend(schedule.ready_at(clock))
            clock += 1
        per_iter = {}
        for op_index, iteration in seen:
            per_iter.setdefault(iteration, []).append(op_index)
        for iteration, op_indices in per_iter.items():
            if len(op_indices) == len(ops):
                assert op_indices == sorted(op_indices)


class TestLegacyFrontEnd:
    def test_decode_group_per_cycle(self):
        block, ops, counts = prepared(
            "mov rax, 1\nmov rbx, 2\nmov rcx, 3\nmov rdx, 4\nmov rsi, 5")
        fe = LegacyFrontEnd(block, ops, counts, SKL, unrolled=True)
        idq = []
        # Give the predecoder a few cycles to fill the IQ.
        for _ in range(4):
            fe.tick(idq, 999)
        per_cycle = []
        for _ in range(6):
            before = len(idq)
            fe.tick(idq, 999)
            per_cycle.append(len(idq) - before)
        # At most one decode group of <= 4 instructions per cycle.
        assert all(n <= SKL.n_decoders for n in per_cycle)
