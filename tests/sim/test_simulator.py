"""Oracle-simulator tests: determinism, invariants, known timings."""

import pytest

from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile
from repro.isa.block import BasicBlock
from repro.sim.backend import SimOptions
from repro.sim.simulator import Simulator
from repro.uarch import ALL_UARCHS, uarch_by_name

SKL = uarch_by_name("SKL")
U = ThroughputMode.UNROLLED
L = ThroughputMode.LOOP


class TestKnownThroughputs:
    @pytest.mark.parametrize("asm,mode,expected", [
        ("add rax, rax", U, 1.0),              # 1-cycle chain
        ("imul rax, rax", U, 3.0),             # 3-cycle chain
        ("nop", U, 0.25),                      # issue width 4
        ("mov rax, qword ptr [rax]", U, 4.0),  # pointer chase
        ("imul rax, rbx\nadd rax, rcx", U, 4.0),
    ])
    def test_throughput(self, asm, mode, expected):
        sim = Simulator(SKL)
        tp = sim.throughput(BasicBlock.from_asm(asm), mode)
        assert tp == pytest.approx(expected, rel=0.08)

    def test_lsd_loop_on_snb(self):
        snb = uarch_by_name("SNB")
        # 4 fused µops: 3 movs + fused dec+jne. The fused branch only
        # executes on port 5 on SNB, which the three movs (p015) also
        # need: the port bound is 4/3, and the LSD sustains it.
        block = BasicBlock.from_asm(
            "mov rax, 1\nmov rbx, 2\nmov rcx, 3\ndec r15\njne -18")
        tp = Simulator(snb).throughput(block, L)
        assert tp == pytest.approx(4 / 3, rel=0.1)


class TestDeterminism:
    def test_same_inputs_same_results(self):
        block = BasicBlock.from_asm("add rax, rbx\nimul rcx, rdx\n"
                                    "mov qword ptr [rsi], rcx")
        a = Simulator(SKL).throughput(block, U)
        b = Simulator(SKL).throughput(block, U)
        assert a == b

    def test_retire_times_monotone(self):
        block = BasicBlock.from_asm("add rax, rbx\nadd rcx, rdx")
        times = Simulator(SKL).simulate(block, U, 30)
        ordered = [times[i] for i in sorted(times)]
        assert ordered == sorted(ordered)
        assert len(times) >= 30


class TestStructuralInvariants:
    """The long-run rate can never beat Facile's structural bounds
    (up to the documented decode/predecode coupling tolerance)."""

    @pytest.mark.parametrize("asm", [
        "add rax, rbx\nadd rcx, rdx\nadd rsi, rdi",
        "imul rax, rbx\nadd rax, rcx",
        "mov qword ptr [rdi], rax\nmov qword ptr [rdi+8], rbx",
        "\n".join(["nop15"] * 4),
        "add cx, 1000\nnop\nnop",
        "div rcx\nadd rax, rbx",
    ])
    @pytest.mark.parametrize("mode", [U, L])
    def test_measured_at_least_bounds(self, asm, mode):
        block = BasicBlock.from_asm(asm)
        measured = Simulator(SKL).throughput(block, mode)
        prediction = Facile(SKL).predict(block, mode)
        assert measured >= float(prediction.throughput) * 0.90

    def test_resource_limits_only_slow_things_down(self):
        block = BasicBlock.from_asm("\n".join(
            f"imul r{i}, r{i}" for i in (8, 9, 10, 11)))
        limited = Simulator(SKL, SimOptions(model_resources=True))
        unlimited = Simulator(SKL, SimOptions(model_resources=False))
        assert unlimited.throughput(block, U) <= \
            limited.throughput(block, U) + 1e-9


class TestModesAndUarchs:
    def test_loop_faster_than_unrolled_for_front_end_bound(self):
        # LCP stalls hit the predecoder: looping from the DSB avoids them.
        block = BasicBlock.from_asm("add cx, 1000\nadd dx, 2000\n"
                                    "nop\njne -13")
        sim = Simulator(SKL)
        assert sim.throughput(block, L) < sim.throughput(block, U)

    @pytest.mark.parametrize("uarch", [u.abbrev for u in ALL_UARCHS])
    def test_every_uarch_simulates(self, uarch):
        cfg = uarch_by_name(uarch)
        block = BasicBlock.from_asm("add rax, rbx\nmulps xmm1, xmm2\n"
                                    "mov rcx, qword ptr [rsi]")
        for mode in (U, L):
            tp = Simulator(cfg).throughput(block, mode)
            assert tp > 0

    def test_icl_issue_width_shows(self):
        # 13 fused µops of eliminated movaps + jmp, streamed from the
        # DSB/LSD: issue width is the only limiter (13/4 vs 13/5-ish).
        block = BasicBlock.from_asm(
            "\n".join(["movaps xmm1, xmm2"] * 12) + "\njmp -38")
        tp_skl = Simulator(SKL).throughput(block, L)
        tp_icl = Simulator(uarch_by_name("ICL")).throughput(block, L)
        assert tp_icl < tp_skl
