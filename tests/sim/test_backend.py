"""Back-end unit tests: issue, dispatch, rename, retire mechanics."""

import pytest

from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.sim.backend import BackEnd, SimOptions
from repro.sim.frontend import DeliveryUnit
from repro.sim.simulator import Simulator
from repro.sim.uop import expand_macro_op
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block, macro_ops
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")
DB = UopsDatabase(SKL)


def make_backend(asm: str, options=None):
    block = BasicBlock.from_asm(asm)
    ops = macro_ops(analyze_block(block, SKL, DB), SKL)
    expanded = [expand_macro_op(op, SKL) for op in ops]
    backend = BackEnd(expanded, SKL, options or SimOptions())
    backend.set_block_info(
        written_roots=[[r.name for r in op.instructions[0].regs_written()]
                       for op in ops],
        eliminated_sources=[None] * len(ops),
    )
    return block, ops, expanded, backend


def units_for_iteration(expanded, iteration):
    units = []
    for op_index, e in enumerate(expanded):
        for fused_index in range(len(e.fused)):
            units.append(DeliveryUnit(op_index, fused_index, iteration,
                                      False))
    units[-1].ends_iteration = True
    return units


class TestIssueLimits:
    def test_issue_width_enforced(self):
        _block, _ops, expanded, backend = make_backend(
            "\n".join(f"add r{i}, r{i}" for i in range(8, 14)))
        idq = units_for_iteration(expanded, 0)
        backend.tick(0, idq)
        # 6 µops offered, at most issue_width (4) accepted.
        assert len(idq) == 2

    def test_rs_capacity_blocks_issue(self):
        _block, _ops, expanded, backend = make_backend("imul rax, rax")
        backend._rs_occupancy = SKL.rs_size  # scheduler full
        idq = units_for_iteration(expanded, 0)
        backend.tick(0, idq)
        assert len(idq) == 1  # nothing issued

    def test_rob_capacity_blocks_issue(self):
        _block, _ops, expanded, backend = make_backend("add rax, rbx")

        class _Unfinished:
            def completed(self, cycle):
                return False

        backend._rob = [_Unfinished()] * SKL.rob_size  # type: ignore
        idq = units_for_iteration(expanded, 0)
        backend.tick(0, idq)
        assert len(idq) == 1


class TestDispatchMechanics:
    def test_one_dispatch_per_port_per_cycle(self):
        # Two imuls: both restricted to port 1 → serialized dispatch.
        _b, _o, expanded, backend = make_backend(
            "imul rax, rbx\nimul rcx, rdx")
        idq = units_for_iteration(expanded, 0)
        backend.tick(0, idq)   # issue both
        backend.tick(1, idq)   # first dispatch
        backend.tick(2, idq)   # second dispatch
        assert backend._pressure[1] == 0

    def test_dependent_uop_waits_for_producer(self):
        _b, _o, expanded, backend = make_backend(
            "imul rax, rbx\nadd rcx, rax")
        idq = units_for_iteration(expanded, 0)
        cycle = 0
        backend.tick(cycle, idq)
        # Run until everything retires; the add completes after the imul
        # result (3 cycles), so total ≥ 5 ticks.
        while 0 not in backend.retire_times:
            cycle += 1
            backend.tick(cycle, idq)
            assert cycle < 50
        assert backend.retire_times[0] >= 4


class TestRetirement:
    def test_in_order_retirement(self):
        block = BasicBlock.from_asm("imul rax, rbx\nnop")
        sim = Simulator(SKL)
        times = sim.simulate(block, ThroughputMode.UNROLLED, 10)
        ordered = [times[i] for i in sorted(times)]
        assert ordered == sorted(ordered)

    def test_retire_width_limits_throughput(self):
        # 6 NOPs/iteration: issue 1.5 cycles; with retire width 4 the
        # retirement cannot go faster than issue, and resources-off mode
        # is at least as fast.
        block = BasicBlock.from_asm("\n".join(["nop"] * 6))
        limited = Simulator(SKL, SimOptions(model_resources=True))
        unlimited = Simulator(SKL, SimOptions(model_resources=False))
        assert unlimited.throughput(block, ThroughputMode.UNROLLED) <= \
            limited.throughput(block, ThroughputMode.UNROLLED) + 1e-9


class TestRename:
    def test_eliminated_move_inherits_producer(self):
        # rbx ← imul; mov rax, rbx (eliminated); add rcx, rax sees the
        # imul latency through the eliminated move.
        block = BasicBlock.from_asm(
            "imul rbx, rdx\nmov rax, rbx\nadd rcx, rax")
        sim = Simulator(SKL)
        tp = sim.throughput(block, ThroughputMode.UNROLLED)
        # Loop-carried: imul(3) via rbx; chain imul→add adds latency but
        # across iterations only imul's self-dep (rbx) matters: ≥ 3.
        assert tp >= 3.0

    def test_zero_idiom_breaks_chains(self):
        with_idiom = BasicBlock.from_asm("xor rax, rax\nimul rax, rbx")
        without = BasicBlock.from_asm("imul rax, rbx")
        sim = Simulator(SKL)
        assert sim.throughput(with_idiom, ThroughputMode.UNROLLED) < \
            sim.throughput(without, ThroughputMode.UNROLLED)
