"""Documentation health: links resolve, CLI subcommands are documented.

Wires ``scripts/check_docs.py`` into tier-1 so README/docs rot fails
the suite, and unit-tests the checker against fabricated breakage so
the green path is known to be meaningful.
"""

import importlib.util
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         ".."))
CHECKER = os.path.join(REPO_ROOT, "scripts", "check_docs.py")


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = load_checker()


class TestRepositoryDocs:
    def test_all_checks_pass(self):
        assert check_docs.run_checks(REPO_ROOT) == []

    def test_cli_subcommands_include_serve_and_bench(self):
        commands = check_docs.cli_subcommands()
        assert "serve" in commands
        assert "bench" in commands
        assert "predict" in commands

    def test_docs_directory_is_covered(self):
        files = {os.path.basename(p)
                 for p in check_docs.markdown_files(REPO_ROOT)}
        assert {"README.md", "ARCHITECTURE.md", "SERVICE.md"} <= files

    def test_script_entry_point(self):
        result = subprocess.run([sys.executable, CHECKER],
                                capture_output=True, text=True,
                                timeout=120)
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout


class TestCheckerCatchesBreakage:
    def test_broken_link_detected(self, tmp_path):
        doc = tmp_path / "README.md"
        doc.write_text("see [the docs](docs/NOPE.md) and "
                       "[the web](https://example.com)")
        problems = check_docs.broken_links(str(doc))
        assert len(problems) == 1
        assert problems[0][0] == "docs/NOPE.md"

    def test_anchor_only_and_external_links_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[a](#section) [b](mailto:x@y.z) "
                       "[c](http://x) [d](https://x)")
        assert check_docs.broken_links(str(doc)) == []

    def test_anchored_file_link_resolves_on_file_part(self, tmp_path):
        (tmp_path / "other.md").write_text("# hi")
        doc = tmp_path / "doc.md"
        doc.write_text("[ok](other.md#hi) [bad](missing.md#hi)")
        problems = check_docs.broken_links(str(doc))
        assert [target for target, _ in problems] == ["missing.md#hi"]

    def test_undocumented_subcommand_detected(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text("only `facile predict` is described here")
        missing = check_docs.undocumented_subcommands(
            str(readme), ["predict", "serve"])
        assert missing == ["serve"]

    def test_run_checks_reports_missing_docs(self, tmp_path):
        problems = check_docs.run_checks(str(tmp_path))
        assert problems  # an empty tree must not look healthy


class TestApiConformance:
    def test_repo_service_doc_conforms(self):
        assert check_docs.api_conformance_problems(REPO_ROOT) == []

    def test_missing_service_doc_reported(self, tmp_path):
        problems = check_docs.api_conformance_problems(str(tmp_path))
        assert problems == ["docs/SERVICE.md is missing "
                            "(the service reference)"]

    def test_undocumented_route_detected(self, tmp_path):
        # A SERVICE.md that documents only part of the served surface:
        # every missing route must be flagged, and a phantom route that
        # the server does not serve must be flagged the other way.
        docs = tmp_path / "docs"
        docs.mkdir()
        from repro.service.serialize import ERROR_CODES
        rows = "\n".join(f"| `{code}` | {status} | x |"
                         for status, code in ERROR_CODES.items())
        (docs / "SERVICE.md").write_text(
            "`GET /health` and `GET /phantom` only\n" + rows + "\n")
        problems = check_docs.api_conformance_problems(str(tmp_path))
        assert any("`POST /v1/predict` is undocumented" in p
                   for p in problems)
        assert any("/phantom" in p and "does not serve" in p
                   for p in problems)

    def test_metric_catalog_drift_detected(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OBSERVABILITY.md").write_text(
            "only `facile_requests_total` and the phantom "
            "`facile_made_up_total` here; label hints like "
            "`facile_span_duration_ms{span=...}` parse too\n")
        problems = check_docs.metrics_conformance_problems(
            str(tmp_path))
        assert any("`facile_retries_total` is undocumented" in p
                   for p in problems)
        assert any("`facile_made_up_total`" in p and
                   "not in the metric catalog" in p for p in problems)
        assert not any("facile_span_duration_ms" in p
                       for p in problems)

    def test_repo_observability_doc_conforms(self):
        assert check_docs.metrics_conformance_problems(REPO_ROOT) == []

    def test_missing_observability_doc_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        problems = check_docs.metrics_conformance_problems(
            str(tmp_path))
        assert problems == ["docs/OBSERVABILITY.md is missing "
                            "(the observability reference)"]

    def test_error_code_drift_detected(self, tmp_path):
        from repro.service.server import ROUTES
        docs = tmp_path / "docs"
        docs.mkdir()
        routes = " ".join(f"`{method} {path}`"
                          for method, paths in ROUTES.items()
                          for path in paths)
        (docs / "SERVICE.md").write_text(
            routes + "\n| `bad_request` | 400 | x |\n"
            "| `teapot` | 418 | x |\n")
        problems = check_docs.api_conformance_problems(str(tmp_path))
        assert any("'overloaded'" in p and "missing" in p
                   for p in problems)
        assert any("'teapot'" in p and "does not emit" in p
                   for p in problems)
