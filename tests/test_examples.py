"""Run every documented example as a smoke test.

``examples/*.py`` are quoted in the README and must keep working; each
is executed as a subprocess (the way a reader would run it), pinned to
small suite sizes where the script accepts them so the whole directory
stays fast in tier-1.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         ".."))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

#: Extra argv per example (keep the slow ones small in CI).
EXAMPLE_ARGS = {
    "compare_predictors.py": ["SKL", "10"],
    "deviation_hunt.py": ["8"],
}

EXAMPLES = sorted(name for name in os.listdir(EXAMPLES_DIR)
                  if name.endswith(".py"))


def test_every_example_is_covered():
    # A new example lands in this test automatically; a stale argv
    # override for a deleted example fails loudly.
    assert EXAMPLES, "examples/ directory is empty?"
    assert set(EXAMPLE_ARGS) <= set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)]
        + EXAMPLE_ARGS.get(name, []),
        capture_output=True, text=True, timeout=300, cwd=REPO_ROOT,
        env=env)
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
    assert result.stdout.strip(), f"{name} printed nothing"
