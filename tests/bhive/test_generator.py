"""Benchmark-generator tests."""

import collections

import pytest

from repro.bhive.categories import CATEGORIES
from repro.bhive.generator import BlockGenerator
from repro.bhive.suite import BenchmarkSuite, default_suite
from repro.isa.decoder import decode_block
from repro.uarch import ALL_UARCHS
from repro.uops.database import UopsDatabase


class TestDeterminism:
    def test_same_seed_same_suite(self):
        a = BenchmarkSuite.generate(25, seed=99)
        b = BenchmarkSuite.generate(25, seed=99)
        assert [x.block_u.raw for x in a] == [y.block_u.raw for y in b]

    def test_different_seeds_differ(self):
        a = BenchmarkSuite.generate(25, seed=1)
        b = BenchmarkSuite.generate(25, seed=2)
        assert [x.block_u.raw for x in a] != [y.block_u.raw for y in b]

    def test_default_suite_is_cached(self):
        assert default_suite(10) is default_suite(10)


class TestBlockValidity:
    @pytest.fixture(scope="class")
    def suite(self):
        return BenchmarkSuite.generate(60, seed=5)

    def test_u_variant_has_no_branch(self, suite):
        for bench in suite:
            assert not bench.block_u.ends_in_branch

    def test_l_variant_ends_in_branch_to_start(self, suite):
        for bench in suite:
            block = bench.block_l
            assert block.ends_in_branch
            branch = block.instructions[-1]
            target = block.num_bytes + branch.operands[0].value
            assert target == 0  # jumps back to the first instruction

    def test_blocks_decode_from_their_bytes(self, suite):
        for bench in suite:
            decoded = decode_block(bench.block_l.raw)
            assert len(decoded) == len(bench.block_l)

    def test_blocks_supported_on_all_uarchs(self, suite):
        dbs = [UopsDatabase(cfg) for cfg in ALL_UARCHS]
        for bench in suite:
            for db in dbs:
                for instr in bench.block_l:
                    db.info(instr)  # must not raise

    def test_instruction_count_within_category_limits(self, suite):
        limits = {c.name: c for c in CATEGORIES}
        for bench in suite:
            category = limits[bench.category]
            assert (category.min_instructions <= len(bench.block_u)
                    <= category.max_instructions)


class TestDiversity:
    def test_all_categories_appear(self):
        suite = BenchmarkSuite.generate(200, seed=3)
        seen = {b.category for b in suite}
        assert seen == {c.name for c in CATEGORIES}

    def test_bottleneck_diversity(self):
        from repro.core.model import Facile
        from repro.uarch import uarch_by_name
        suite = BenchmarkSuite.generate(120, seed=4)
        model = Facile(uarch_by_name("SKL"))
        counts = collections.Counter(
            model.predict_unrolled(b.block_u).bottlenecks[0].value
            for b in suite)
        assert len(counts) >= 3  # several distinct bottleneck kinds
