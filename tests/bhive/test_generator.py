"""Benchmark-generator tests."""

import collections

import pytest

from repro.bhive.categories import CATEGORIES
from repro.bhive.generator import MUTATIONS, BlockGenerator
from repro.bhive.suite import BenchmarkSuite, default_suite
from repro.isa.assembler import assemble
from repro.isa.block import BasicBlock
from repro.isa.decoder import decode_block
from repro.uarch import ALL_UARCHS
from repro.uops.database import UopsDatabase


class TestDeterminism:
    def test_same_seed_same_suite(self):
        a = BenchmarkSuite.generate(25, seed=99)
        b = BenchmarkSuite.generate(25, seed=99)
        assert [x.block_u.raw for x in a] == [y.block_u.raw for y in b]

    @pytest.mark.parametrize("category", CATEGORIES,
                             ids=[c.name for c in CATEGORIES])
    def test_same_seed_byte_identical_per_category(self, category):
        # Same seed => byte-identical encodings, for every category.
        for seed in (0, 7, 2023):
            a = BlockGenerator(seed)
            b = BlockGenerator(seed)
            raws_a = [BasicBlock(assemble("\n".join(a.body(category)))).raw
                      for _ in range(5)]
            raws_b = [BasicBlock(assemble("\n".join(b.body(category)))).raw
                      for _ in range(5)]
            assert raws_a == raws_b

    def test_different_seeds_differ(self):
        a = BenchmarkSuite.generate(25, seed=1)
        b = BenchmarkSuite.generate(25, seed=2)
        assert [x.block_u.raw for x in a] != [y.block_u.raw for y in b]

    def test_default_suite_is_cached(self):
        assert default_suite(10) is default_suite(10)


class TestBlockValidity:
    @pytest.fixture(scope="class")
    def suite(self):
        return BenchmarkSuite.generate(60, seed=5)

    def test_u_variant_has_no_branch(self, suite):
        for bench in suite:
            assert not bench.block_u.ends_in_branch

    def test_l_variant_ends_in_branch_to_start(self, suite):
        for bench in suite:
            block = bench.block_l
            assert block.ends_in_branch
            branch = block.instructions[-1]
            target = block.num_bytes + branch.operands[0].value
            assert target == 0  # jumps back to the first instruction

    def test_blocks_decode_from_their_bytes(self, suite):
        for bench in suite:
            decoded = decode_block(bench.block_l.raw)
            assert len(decoded) == len(bench.block_l)

    def test_blocks_supported_on_all_uarchs(self, suite):
        dbs = [UopsDatabase(cfg) for cfg in ALL_UARCHS]
        for bench in suite:
            for db in dbs:
                for instr in bench.block_l:
                    db.info(instr)  # must not raise

    def test_instruction_count_within_category_limits(self, suite):
        limits = {c.name: c for c in CATEGORIES}
        for bench in suite:
            category = limits[bench.category]
            assert (category.min_instructions <= len(bench.block_u)
                    <= category.max_instructions)


class TestDiversity:
    def test_all_categories_appear(self):
        suite = BenchmarkSuite.generate(200, seed=3)
        seen = {b.category for b in suite}
        assert seen == {c.name for c in CATEGORIES}

    def test_bottleneck_diversity(self):
        from repro.core.model import Facile
        from repro.uarch import uarch_by_name
        suite = BenchmarkSuite.generate(120, seed=4)
        model = Facile(uarch_by_name("SKL"))
        counts = collections.Counter(
            model.predict_unrolled(b.block_u).bottlenecks[0].value
            for b in suite)
        assert len(counts) >= 3  # several distinct bottleneck kinds


class TestMutations:
    """The discovery layer's drop/duplicate/substitute hooks."""

    @pytest.mark.parametrize("category", CATEGORIES,
                             ids=[c.name for c in CATEGORIES])
    def test_mutants_always_assemble(self, category):
        generator = BlockGenerator(11)
        lines = generator.body(category)
        for _ in range(40):
            lines, op = generator.mutate(lines, category)
            assert op in MUTATIONS
            assert len(lines) >= 1
            block = BasicBlock(assemble("\n".join(lines)))
            assert decode_block(block.raw)  # round-trips through bytes

    def test_each_operator_behaves(self):
        category = CATEGORIES[0]
        generator = BlockGenerator(5)
        lines = generator.body(category)
        dropped, op = generator.mutate(lines, category, "drop")
        assert op == "drop" and len(dropped) == len(lines) - 1
        duplicated, op = generator.mutate(lines, category, "duplicate")
        assert op == "duplicate" and len(duplicated) == len(lines) + 1
        substituted, op = generator.mutate(lines, category, "substitute")
        assert op == "substitute" and len(substituted) == len(lines)

    def test_drop_on_single_line_falls_back_to_substitute(self):
        category = CATEGORIES[0]
        generator = BlockGenerator(5)
        mutated, op = generator.mutate(["add rax, rbx"], category, "drop")
        assert op == "substitute"
        assert len(mutated) == 1

    def test_unknown_operator_rejected(self):
        generator = BlockGenerator(5)
        with pytest.raises(ValueError):
            generator.mutate(["add rax, rbx"], CATEGORIES[0], "explode")

    def test_mutations_deterministic(self):
        category = CATEGORIES[2]
        runs = []
        for _ in range(2):
            generator = BlockGenerator(42)
            lines = generator.body(category)
            trail = []
            for _ in range(10):
                lines, op = generator.mutate(lines, category)
                trail.append((op, tuple(lines)))
            runs.append(trail)
        assert runs[0] == runs[1]
