"""Metric tests, cross-checked against scipy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.metrics import kendall_tau, mape


class TestMape:
    def test_perfect_prediction(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_simple_value(self):
        assert mape([2.0], [1.0]) == pytest.approx(0.5)

    def test_zero_measurements_skipped(self):
        assert mape([0.0, 2.0], [5.0, 1.0]) == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mape([1.0], [1.0, 2.0])

    def test_all_zero_measurements(self):
        with pytest.raises(ValueError):
            mape([0.0], [1.0])


class TestKendall:
    def test_perfect_correlation(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0

    def test_perfect_anticorrelation(self):
        assert kendall_tau([1, 2, 3], [30, 20, 10]) == -1.0

    def test_constant_predictions_are_uninformative(self):
        assert kendall_tau([1, 2, 3], [5, 5, 5]) == 0.0

    @given(st.lists(st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
                    min_size=2, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy(self, pairs):
        xs = [round(p[0], 2) for p in pairs]
        ys = [round(p[1], 2) for p in pairs]
        from scipy.stats import kendalltau
        expected = kendalltau(xs, ys).statistic
        ours = kendall_tau(xs, ys)
        if expected != expected:  # scipy returns NaN for all-tied input
            assert ours == 0.0
        else:
            assert ours == pytest.approx(expected, abs=1e-9)
