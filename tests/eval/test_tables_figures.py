"""Evaluation-harness tests on a small suite (fast smoke of §6)."""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.eval import figures, tables
from repro.eval.runner import evaluate_predictor, measured_suite
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def small_suite():
    return BenchmarkSuite.generate(20, seed=321)


class TestTable1:
    def test_table1_layout(self):
        rows = tables.table1()
        assert len(rows) == 9
        assert rows[0]["abbr"] == "RKL"
        assert "Skylake" in tables.render_table1()


class TestTable2:
    def test_facile_and_uica_lead(self, small_suite):
        rows = tables.table2(
            small_suite, [uarch_by_name("SKL")],
            ["Facile", "uiCA", "llvm-mca-15", "IACA 3.0"])
        by_name = {r.predictor: r for r in rows}
        assert by_name["Facile"].mape_u < by_name["llvm-mca-15"].mape_u
        assert by_name["Facile"].mape_u < by_name["IACA 3.0"].mape_u
        assert by_name["uiCA"].mape_u < 0.05
        assert by_name["Facile"].kendall_u > \
            by_name["llvm-mca-15"].kendall_u
        assert "SKL" in tables.render_table2(rows)


class TestTable3:
    def test_ablation_rows(self, small_suite):
        rows = tables.table3(small_suite, uarch_names=("SKL",))
        by_variant = {r.variant: r for r in rows}
        full = by_variant["Facile"]
        assert full.mape_u < by_variant["only Ports"].mape_u
        assert full.mape_u < by_variant["Facile w/o Predec"].mape_u
        # "only DSB" under TPU predicts 0 everywhere: 100% MAPE.
        assert by_variant["only DSB"].mape_u == pytest.approx(1.0)
        assert "only DSB" in tables.render_table3(rows)

    def test_without_precedence_hurts_loop_mode(self, small_suite):
        rows = tables.table3(small_suite, uarch_names=("SKL",))
        by_variant = {r.variant: r for r in rows}
        assert by_variant["Facile w/o Precedence"].mape_l >= \
            by_variant["Facile"].mape_l


class TestTable4:
    def test_speedups_at_least_one(self, small_suite):
        data = tables.table4(small_suite)
        assert set(data) == {u.abbrev for u in
                             __import__("repro.uarch",
                                        fromlist=["ALL_UARCHS"]).ALL_UARCHS}
        for row in data.values():
            for value in row.values():
                assert value >= 1.0
        assert "Predec" in tables.render_table4(data)


class TestFigures:
    def test_figure3_heatmaps(self, small_suite):
        maps = figures.figure3_heatmaps(small_suite, uarch="RKL",
                                        predictors=("Facile", "uiCA"))
        facile, uica = maps
        total = sum(sum(row) for row in facile.counts)
        assert total > 0
        # Accurate predictors concentrate near the diagonal.
        assert facile.diagonal_fraction > 0.5
        assert uica.diagonal_fraction > 0.5

    def test_facile_optimism(self, small_suite):
        fraction = figures.optimism_fraction(small_suite, uarch="RKL")
        assert fraction > 0.9

    def test_figure6_flow_conservation(self, small_suite):
        flows = figures.figure6_bottleneck_evolution(
            small_suite, uarch_names=("SNB", "RKL"))
        assert len(flows) == 1
        flow = flows[0]
        outgoing = sum(sum(row.values())
                       for row in flow["matrix"].values())
        assert outgoing == len(small_suite)
        assert sum(flow["from_shares"].values()) == len(small_suite)
        assert figures.render_figure6(flows)

    def test_figure4_timing_structure(self, small_suite):
        data = figures.figure4_component_times(small_suite, uarch="SKL")
        for mode in ("TPU", "TPL"):
            results = data[mode]
            assert "FACILE" in results and "Overhead" in results
            assert "Precedence" in results
            # Components cost less than the whole model.
            assert results["Precedence"].mean_ms <= \
                results["FACILE"].mean_ms + 0.5


class TestRunner:
    def test_evaluate_predictor_pairs_lengths(self, small_suite):
        from repro.baselines import all_predictors
        cfg = uarch_by_name("SKL")
        db = UopsDatabase(cfg)
        predictor = all_predictors(cfg, db, ["Facile"])[0]
        result = evaluate_predictor(predictor, small_suite,
                                    ThroughputMode.UNROLLED)
        assert len(result.measured) == len(result.predicted) == \
            len(small_suite)
        assert 0 <= result.mape < 0.2
        assert result.kendall > 0.7
