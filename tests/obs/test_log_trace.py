"""Structured logging and tracing: levels, JSON shape, spans."""

import json

import pytest

from repro.obs import log, metrics
from repro.obs.trace import (
    Span,
    current_trace,
    new_trace_id,
    tracing,
)


@pytest.fixture(autouse=True)
def restore_level(monkeypatch):
    """Every test leaves the process level as the env would set it."""
    yield
    monkeypatch.delenv(log.ENV_LEVEL, raising=False)
    log.refresh_level()


class TestLevels:
    def test_default_is_info(self):
        log.refresh_level()
        assert log.current_level() == "info"
        assert log.level_enabled("info")
        assert not log.level_enabled("debug")

    def test_set_level(self):
        log.set_level("debug")
        assert log.level_enabled("debug")
        log.set_level("off")
        assert not log.level_enabled("error")

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            log.set_level("verbose")

    def test_refresh_reads_the_env(self, monkeypatch):
        monkeypatch.setenv(log.ENV_LEVEL, "warning")
        log.refresh_level()
        assert log.current_level() == "warning"
        # Unknown env values fall back to the default instead of dying.
        monkeypatch.setenv(log.ENV_LEVEL, "nonsense")
        log.refresh_level()
        assert log.current_level() == log.DEFAULT_LEVEL

    def test_slow_threshold(self, monkeypatch):
        assert log.slow_threshold_ms() == log.DEFAULT_SLOW_MS
        monkeypatch.setenv(log.ENV_SLOW_MS, "12.5")
        assert log.slow_threshold_ms() == 12.5
        monkeypatch.setenv(log.ENV_SLOW_MS, "-3")
        assert log.slow_threshold_ms() == log.DEFAULT_SLOW_MS


class TestLogger:
    def test_one_json_object_per_line_on_stderr(self, capsys):
        logger = log.get_logger("test")
        logger.info("hello", answer=42, path="/x")
        err = capsys.readouterr().err
        (line,) = err.strip().splitlines()
        record = json.loads(line)
        assert record["level"] == "info"
        assert record["component"] == "test"
        assert record["event"] == "hello"
        assert record["answer"] == 42
        assert record["path"] == "/x"
        assert record["ts"] > 0
        # stdout stays clean — CI byte-compares command output there.
        assert capsys.readouterr().out == ""

    def test_below_threshold_emits_nothing(self, capsys):
        log.set_level("warning")
        log.get_logger("test").info("quiet")
        assert capsys.readouterr().err == ""

    def test_non_serializable_fields_are_stringified(self, capsys):
        log.get_logger("test").info("obj", thing=object())
        record = json.loads(capsys.readouterr().err)
        assert "object object at" in record["thing"]

    def test_loggers_are_memoized(self):
        assert log.get_logger("same") is log.get_logger("same")


class TestTrace:
    def test_trace_ids_are_16_hex_chars_and_distinct(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        for t in (a, b):
            assert len(t) == 16
            int(t, 16)

    def test_span_observes_the_histogram(self):
        hist = metrics.REGISTRY.histogram(
            "facile_span_duration_ms", labels=("span",))
        before = sum(st[2] for _, st in hist.samples())
        with Span("test.span") as span:
            pass
        assert span.duration_ms is not None and span.duration_ms >= 0
        samples = dict(hist.samples())
        assert ("test.span",) in samples
        assert sum(st[2] for st in samples.values()) == before + 1

    def test_tracing_context(self):
        assert current_trace() is None
        with tracing("abc123"):
            assert current_trace() == "abc123"
            with tracing(None):
                assert current_trace() is None
        assert current_trace() is None
