"""The metrics registry: determinism, exposition, and the catalog.

The registry's contract has three load-bearing edges:

* **determinism** — bucket bounds are fixed at construction and two
  registries fed the same observations render byte-identical text;
* **exposition** — the Prometheus 0.0.4 text renders and parses back
  through :func:`repro.obs.metrics.parse_exposition` without loss;
* **catalog** — every documented metric name appears in every scrape,
  observed or not (the padded-surface guarantee the CI smoke check and
  ``scripts/check_docs.py`` both lean on).
"""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    COUNTER,
    DURATION_BUCKETS_MS,
    Family,
    GAUGE,
    HISTOGRAM,
    METRIC_CATALOG,
    Registry,
    parse_exposition,
)


class TestCounters:
    def test_inc_and_value(self):
        reg = Registry()
        c = reg.counter("t_total", "help", labels=("k",))
        c.inc(k="a")
        c.inc(2.5, k="a")
        c.inc(k="b")
        assert c.value(k="a") == 3.5
        assert c.value(k="b") == 1.0
        assert c.value(k="never") == 0.0

    def test_counters_cannot_decrease(self):
        c = Registry().counter("t_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_names_are_enforced(self):
        c = Registry().counter("t_total", labels=("k",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(k="a", extra="b")

    def test_counter_value_reads_without_creating(self):
        reg = Registry()
        assert reg.counter_value("never_registered") == 0.0
        reg.gauge("a_gauge").set(1)
        with pytest.raises(ValueError):
            reg.counter_value("a_gauge")


class TestRegistryConsistency:
    def test_get_or_create_returns_the_same_object(self):
        reg = Registry()
        assert reg.counter("x", labels=("k",)) is \
            reg.counter("x", labels=("k",))

    def test_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_conflict_raises(self):
        reg = Registry()
        reg.counter("x", labels=("k",))
        with pytest.raises(ValueError):
            reg.counter("x", labels=("other",))


class TestHistogramDeterminism:
    def test_bucket_bounds_are_fixed_and_increasing(self):
        h = Registry().histogram("h_ms")
        assert h.buckets == DURATION_BUCKETS_MS
        assert all(a < b for a, b in zip(h.buckets, h.buckets[1:]))

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            Registry().histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Registry().histogram("h", buckets=())

    def test_observations_land_in_deterministic_buckets(self):
        h = Registry().histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 1.5, 7.0, 10.0, 99.0):
            h.observe(value)
        ((_, (counts, total, count)),) = h.samples()
        # le semantics via bisect_left: a value equal to a bound lands
        # in that bound's bucket.
        assert counts == [2, 1, 2, 1]
        assert count == 6
        assert total == pytest.approx(119.0)

    def test_two_registries_render_byte_identical_text(self):
        def build():
            reg = Registry()
            h = reg.histogram("h_ms", "spans", labels=("span",),
                              buckets=(1.0, 10.0))
            for v in (0.2, 3.0, 50.0):
                h.observe(v, span="a")
            reg.counter("c_total", "things", labels=("k",)).inc(k="x")
            return reg.exposition()

        assert build() == build()


class TestCollectors:
    def test_collector_families_merge_into_the_scrape(self):
        reg = Registry()
        reg.register_collector(lambda: [Family(
            "pulled_total", COUNTER, "pulled",
            [({"k": "a"}, 3.0)])])
        text = reg.exposition()
        assert '# TYPE pulled_total counter' in text
        assert 'pulled_total{k="a"} 3' in text
        assert reg.snapshot()["pulled_total"]["values"] == [
            {"labels": {"k": "a"}, "value": 3.0}]

    def test_broken_collector_contributes_nothing(self):
        reg = Registry()
        reg.counter("ok_total").inc()

        def broken():
            raise RuntimeError("scrape me not")

        reg.register_collector(broken)
        text = reg.exposition()
        assert "ok_total 1" in text

    def test_unregister(self):
        reg = Registry()
        fn = lambda: [Family("x_total", COUNTER, "", [({}, 1.0)])]  # noqa: E731
        reg.register_collector(fn)
        reg.unregister_collector(fn)
        assert "x_total" not in reg.exposition()


class TestExposition:
    def test_round_trips_through_the_parser(self):
        reg = Registry()
        reg.counter("req_total", "requests", labels=("route",)).inc(
            route="/v1/predict")
        reg.gauge("up_seconds", "uptime").set(12.5)
        h = reg.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(3.0)
        families = parse_exposition(reg.exposition())
        assert families["req_total"]["kind"] == COUNTER
        assert ("req_total", {"route": "/v1/predict"}, 1.0) in \
            families["req_total"]["samples"]
        assert families["up_seconds"]["kind"] == GAUGE
        hist = families["lat_ms"]
        assert hist["kind"] == HISTOGRAM
        # Cumulative buckets plus the implicit +Inf, then sum and count.
        assert ("lat_ms_bucket", {"le": "1"}, 1.0) in hist["samples"]
        assert ("lat_ms_bucket", {"le": "10"}, 2.0) in hist["samples"]
        assert ("lat_ms_bucket", {"le": "+Inf"}, 2.0) in hist["samples"]
        assert ("lat_ms_sum", {}, 3.5) in hist["samples"]
        assert ("lat_ms_count", {}, 2.0) in hist["samples"]

    def test_catalog_pads_unobserved_metrics(self):
        text = Registry().exposition(METRIC_CATALOG)
        families = parse_exposition(text)
        assert set(METRIC_CATALOG) <= set(families)
        for name, (kind, help_text) in METRIC_CATALOG.items():
            assert families[name]["kind"] == kind
            assert families[name]["help"] == help_text
        # Unlabelled counters get an explicit zero sample.
        assert ("facile_retries_total", {}, 0.0) in \
            families["facile_retries_total"]["samples"]

    def test_label_values_are_escaped(self):
        reg = Registry()
        reg.counter("c_total", labels=("k",)).inc(k='a"b\\c')
        families = parse_exposition(reg.exposition())
        ((_, labels, _),) = families["c_total"]["samples"]
        assert labels == {"k": 'a\\"b\\\\c'}

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_exposition("not a metric line at all }{")
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_exposition("undeclared_total 1\n")
        with pytest.raises(ValueError, match="bad sample value"):
            parse_exposition("# TYPE x counter\nx one\n")

    def test_counters_flat(self):
        reg = Registry()
        reg.counter("a_total", labels=("k",)).inc(2, k="x")
        reg.counter("b_total").inc()
        reg.gauge("g").set(9)  # gauges stay out of the flat view
        assert reg.counters_flat() == {'a_total{k="x"}': 2.0,
                                       "b_total": 1.0}


class TestCatalogHygiene:
    def test_catalog_names_and_kinds(self):
        for name, (kind, help_text) in METRIC_CATALOG.items():
            assert name.startswith("facile_")
            assert kind in (COUNTER, GAUGE, HISTOGRAM)
            assert help_text
            if kind == COUNTER:
                assert name.endswith("_total")

    def test_module_exposition_covers_the_catalog(self):
        # The real /v1/metrics surface: the process registry padded
        # with the catalog always advertises every documented name.
        families = parse_exposition(metrics.exposition())
        assert set(METRIC_CATALOG) <= set(families)
