"""Microarchitecture configuration tests (paper Table 1 wiring)."""

import pytest

from repro.uarch import ALL_UARCHS, UARCH_ORDER, uarch_by_name


class TestTable1:
    def test_nine_uarchs(self):
        assert len(ALL_UARCHS) == 9

    def test_order_newest_first(self):
        years = [u.released for u in ALL_UARCHS]
        assert years == sorted(years, reverse=True)

    def test_uarch_order_is_oldest_first(self):
        assert UARCH_ORDER[0].abbrev == "SNB"
        assert UARCH_ORDER[-1].abbrev == "RKL"

    def test_lookup_by_abbrev_and_name(self):
        assert uarch_by_name("SKL").name == "Skylake"
        assert uarch_by_name("Rocket Lake").abbrev == "RKL"

    def test_unknown_uarch(self):
        with pytest.raises(KeyError):
            uarch_by_name("ZEN3")


class TestPaperSpecificFacts:
    def test_skl_family_has_jcc_erratum(self):
        for abbr in ("SKL", "CLX"):
            assert uarch_by_name(abbr).jcc_erratum
        for abbr in ("SNB", "HSW", "ICL", "RKL"):
            assert not uarch_by_name(abbr).jcc_erratum

    def test_skl_lsd_disabled_by_skl150(self):
        assert not uarch_by_name("SKL").lsd_enabled
        assert not uarch_by_name("CLX").lsd_enabled
        assert uarch_by_name("SNB").lsd_enabled
        assert uarch_by_name("ICL").lsd_enabled

    def test_issue_width_grows_with_icl(self):
        assert uarch_by_name("SKL").issue_width == 4
        assert uarch_by_name("ICL").issue_width == 5

    def test_snb_has_no_move_elimination(self):
        assert not uarch_by_name("SNB").gpr_move_elim
        assert uarch_by_name("IVB").gpr_move_elim

    def test_icl_gpr_move_elim_disabled_by_erratum(self):
        assert not uarch_by_name("ICL").gpr_move_elim
        assert uarch_by_name("RKL").gpr_move_elim

    def test_fma_requires_haswell(self):
        assert not uarch_by_name("IVB").supports("fma")
        assert uarch_by_name("HSW").supports("fma")

    def test_port_counts_per_family(self):
        assert uarch_by_name("SNB").n_ports == 6
        assert uarch_by_name("SKL").n_ports == 8
        assert uarch_by_name("RKL").n_ports == 10


class TestPortMaps:
    @pytest.mark.parametrize("uarch", [u.abbrev for u in ALL_UARCHS])
    def test_port_maps_reference_existing_ports(self, uarch):
        cfg = uarch_by_name(uarch)
        for kind, ports in cfg.port_map.items():
            assert ports, kind
            assert ports <= set(cfg.ports), kind

    def test_store_agu_indexed_restriction_on_skl(self):
        cfg = uarch_by_name("SKL")
        assert cfg.ports_for("store_agu") == frozenset({2, 3, 7})
        assert cfg.ports_for("store_agu_indexed") == frozenset({2, 3})

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            uarch_by_name("SKL").ports_for("teleport")
