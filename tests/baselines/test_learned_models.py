"""Tests for the learned-predictor analogs and their features."""

import numpy as np
import pytest

from repro.baselines.difftune import DiffTuneAnalog
from repro.baselines.features import (
    DIM,
    MNEMONIC_CLASSES,
    chain_depth,
    class_counts,
    classify,
    feature_vector,
)
from repro.baselines.learning_baseline import LearningBaseline
from repro.baselines.training import training_data
from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")
DB = UopsDatabase(SKL)


class TestFeatures:
    def test_classify_covers_subset(self):
        from repro.isa.templates import all_templates
        for template in all_templates():
            assert classify(template.mnemonic) in MNEMONIC_CLASSES

    def test_class_counts(self):
        block = BasicBlock.from_asm("add rax, rbx\nadd rcx, rdx\n"
                                    "imul rsi, rdi")
        counts = class_counts(block)
        assert counts[MNEMONIC_CLASSES.index("add")] == 2
        assert counts[MNEMONIC_CLASSES.index("imul")] == 1
        assert counts.sum() == 3

    def test_feature_vector_dimension(self):
        block = BasicBlock.from_asm("add rax, rbx")
        assert feature_vector(block).shape == (DIM,)

    def test_bias_is_last(self):
        block = BasicBlock.from_asm("nop")
        assert feature_vector(block)[-1] == 1.0

    def test_chain_depth_grows_with_chains(self):
        chained = BasicBlock.from_asm("add rax, rbx\nadd rax, rcx\n"
                                      "add rax, rdx")
        parallel = BasicBlock.from_asm("add rax, rbx\nadd rcx, rbx\n"
                                       "add rdx, rbx")
        assert chain_depth(chained) > chain_depth(parallel)

    def test_weighted_chain_depth_sees_latency(self):
        light = BasicBlock.from_asm("add rax, rbx")
        heavy = BasicBlock.from_asm("imul rax, rbx")
        assert chain_depth(heavy, weighted=True) > \
            chain_depth(light, weighted=True)


class TestTrainingData:
    def test_cached_per_uarch(self):
        first = training_data(SKL, size=30, seed=1234)
        second = training_data(SKL, size=30, seed=1234)
        assert first is second

    def test_values_positive(self):
        blocks, values = training_data(SKL, size=30, seed=1234)
        assert len(blocks) == len(values) == 30
        assert all(v > 0 for v in values)


class TestDiffTune:
    def test_fit_improves_over_initial_params(self):
        model = DiffTuneAnalog(SKL, DB)
        model.prepare()
        uops, rtp, lat_scale = model._params
        # Parameters moved away from their initialization.
        assert not np.allclose(uops, np.ones(len(uops)))

    def test_predict_positive_and_rounded(self):
        model = DiffTuneAnalog(SKL, DB)
        block = BasicBlock.from_asm("addps xmm1, xmm2\nmulps xmm3, xmm4")
        value = model.predict(block, ThroughputMode.UNROLLED)
        assert value >= 0.25
        assert value == round(value, 2)


class TestLearningBaseline:
    def test_costs_nonnegative(self):
        model = LearningBaseline(SKL, DB)
        model.prepare()
        assert (model._costs >= 0).all()

    def test_costs_are_additive_in_counts(self):
        model = LearningBaseline(SKL, DB)
        model.prepare()
        assert model._costs.sum() > 0  # not degenerate
        body = "add rax, rbx\nmov rcx, qword ptr [rsi]\nimul rdx, rdi"
        short = BasicBlock.from_asm(body)
        long = BasicBlock.from_asm("\n".join([body] * 4))
        assert model.predict(long, ThroughputMode.UNROLLED) > \
            model.predict(short, ThroughputMode.UNROLLED)

    def test_reasonable_on_training_distribution(self):
        from repro.eval.metrics import mape
        from repro.sim.measure import measure
        model = LearningBaseline(SKL, DB)
        blocks, values = training_data(SKL)
        predictions = [model.predict(b, ThroughputMode.UNROLLED)
                       for b in blocks[:50]]
        assert mape(values[:50], predictions) < 0.5
