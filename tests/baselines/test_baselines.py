"""Baseline-predictor tests: modeling-scope differences must show."""

import pytest

from repro.baselines import all_predictors, predictor_names
from repro.baselines.cqa import CqaAnalog
from repro.baselines.iaca import IacaAnalog
from repro.baselines.ithemal import IthemalAnalog
from repro.baselines.llvm_mca import LlvmMcaAnalog
from repro.baselines.osaca import OsacaAnalog
from repro.baselines.uica import UicaAnalog
from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")
DB = UopsDatabase(SKL)
U = ThroughputMode.UNROLLED
L = ThroughputMode.LOOP


class TestRegistry:
    def test_all_paper_tools_registered(self):
        names = predictor_names()
        for expected in ("Facile", "uiCA", "llvm-mca-15", "llvm-mca-8",
                         "CQA", "IACA 3.0", "IACA 2.3", "OSACA",
                         "Ithemal", "DiffTune", "learning-bl"):
            assert expected in names

    def test_instantiation(self):
        predictors = all_predictors(SKL, DB)
        assert len(predictors) == len(predictor_names())


class TestModelingScope:
    def test_llvm_mca_misses_front_end(self):
        # A predecode-bound NOP block: llvm-mca sees almost nothing.
        block = BasicBlock.from_asm("\n".join(["nop15"] * 4))
        mca = LlvmMcaAnalog(SKL, DB).predict(block, U)
        uica = UicaAnalog(SKL, DB).predict(block, U)
        assert mca < uica  # optimistic: no predecoder model

    def test_llvm_mca_misses_fusion(self):
        # Macro-fused cmp+jcc: llvm-mca counts both instructions toward
        # the dispatch width (9 instructions vs 8 fused µops).
        asm = "\n".join(f"mov r{i}, 1" for i in range(8, 15))
        fused = BasicBlock.from_asm(asm + "\ncmp rax, rbx\njne -36")
        mca = LlvmMcaAnalog(SKL, DB).predict(fused, L)
        facile = all_predictors(SKL, DB, ["Facile"])[0]
        assert mca > facile.predict(fused, L)

    def test_iaca_misses_dependences(self):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        iaca = IacaAnalog(SKL, DB).predict(block, L)
        assert iaca < 4.0  # true value is the 4-cycle chain

    def test_osaca_sees_critical_path(self):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        assert OsacaAnalog(SKL, DB).predict(block, L) == 4.0

    def test_cqa_uses_loop_notion_for_both_modes(self):
        block = BasicBlock.from_asm("add cx, 1000\nnop\nnop")
        cqa = CqaAnalog(SKL, DB)
        assert cqa.predict(block, U) == cqa.predict(block, L)

    def test_uica_analog_close_to_oracle(self):
        from repro.sim.measure import measure
        block = BasicBlock.from_asm("add rax, rbx\nimul rcx, rdx\n"
                                    "mov qword ptr [rsi], rcx")
        predicted = UicaAnalog(SKL, DB).predict(block, U)
        measured = measure(block, SKL, U, DB, use_cache=False)
        assert predicted == pytest.approx(measured, rel=0.05)


class TestLearnedModels:
    def test_ithemal_trains_and_predicts_positive(self):
        model = IthemalAnalog(SKL, DB)
        block = BasicBlock.from_asm("add rax, rbx\nimul rcx, rdx")
        value = model.predict(block, U)
        assert value >= 0.25

    def test_ithemal_identical_for_both_modes(self):
        # A TPU-trained model cannot distinguish the notions.
        model = IthemalAnalog(SKL, DB)
        block = BasicBlock.from_asm("add rax, rbx\nnop5\njne -10")
        assert model.predict(block, U) == model.predict(block, L)

    def test_training_is_cached_across_instances(self):
        first = IthemalAnalog(SKL, DB)
        first.prepare()
        second = IthemalAnalog(SKL, DB)
        second.prepare()
        assert second._weights is first._weights
