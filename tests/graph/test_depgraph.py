"""Dependence-graph construction tests (paper §4.9 structure)."""

import pytest

from repro.graph.depgraph import DependenceGraphBuilder
from repro.graph.howard import howard_max_cycle_ratio
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def db():
    return UopsDatabase(uarch_by_name("SKL"))


def ratio_of(asm: str, db) -> float:
    block = BasicBlock.from_asm(asm)
    graph = DependenceGraphBuilder(db).build(block)
    ratio, _cycle = howard_max_cycle_ratio(graph)
    return float(ratio) if ratio is not None else 0.0


class TestChains:
    def test_self_chained_add(self, db):
        assert ratio_of("add rax, rax", db) == 1.0

    def test_imul_add_chain(self, db):
        assert ratio_of("imul rax, rbx\nadd rax, rcx", db) == 4.0

    def test_independent_instructions_have_no_cycle(self, db):
        assert ratio_of("mov rax, 1\nmov rbx, 2", db) == 0.0

    def test_zero_idiom_breaks_chain(self, db):
        # xor rax, rax resets the chain: imul's input does not depend on
        # the previous iteration's output.
        assert ratio_of("xor rax, rax\nimul rax, rbx", db) == 0.0

    def test_eliminated_move_contributes_zero_latency(self, db):
        # mov is eliminated on SKL: chain is imul only (3), carried
        # through two registers.
        chained = ratio_of("imul rax, rbx\nmov rcx, rax\n"
                           "imul rax, rcx", db)
        assert chained == 6.0  # two imuls, zero-cost move

    def test_flags_dependencies_are_tracked(self, db):
        # adc consumes and produces CF: a 1-cycle flag chain.
        assert ratio_of("adc rax, rbx", db) >= 1.0

    def test_load_latency_on_pointer_chase(self, db):
        # mov rax, [rax]: classic pointer chase = load latency.
        assert ratio_of("mov rax, qword ptr [rax]", db) == 4.0

    def test_live_in_values_do_not_create_cycles(self, db):
        # rbx is only read: its consumers have no producer edges.
        assert ratio_of("mov rax, rbx", db) == 0.0


class TestGraphShape:
    def test_node_naming_scheme(self, db):
        block = BasicBlock.from_asm("add rax, rbx")
        graph = DependenceGraphBuilder(db).build(block)
        kinds = {node[0] for node in graph.nodes}
        assert kinds == {"c", "p"}

    def test_intra_vs_inter_iteration_counts(self, db):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rcx, rax")
        graph = DependenceGraphBuilder(db).build(block)
        dep_edges = [e for e in graph.edges() if e.weight == 0]
        counts = {e.count for e in dep_edges}
        assert counts == {0, 1}  # both intra- and loop-carried edges

    def test_cycle_instruction_extraction(self, db):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx\n"
                                    "mov rdx, 5")
        builder = DependenceGraphBuilder(db)
        graph = builder.build(block)
        _ratio, cycle = howard_max_cycle_ratio(graph)
        assert builder.cycle_instructions(cycle) == [0, 1]
