"""Maximum-cycle-ratio algorithm tests: Howard vs Lawler vs brute force."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.bruteforce import bruteforce_max_cycle_ratio
from repro.graph.core import RatioGraph
from repro.graph.howard import howard_max_cycle_ratio
from repro.graph.lawler import lawler_max_cycle_ratio


def make_graph(edges):
    g = RatioGraph()
    for u, v, w, t in edges:
        g.add_edge(u, v, w, t)
    return g


class TestKnownGraphs:
    def test_single_self_loop(self):
        g = make_graph([("a", "a", 7, 2)])
        assert howard_max_cycle_ratio(g)[0] == Fraction(7, 2)

    def test_two_node_cycle(self):
        g = make_graph([("a", "b", 3, 0), ("b", "a", 2, 1)])
        assert howard_max_cycle_ratio(g)[0] == 5

    def test_max_over_two_cycles(self):
        g = make_graph([
            ("a", "b", 1, 0), ("b", "a", 1, 1),   # ratio 2
            ("c", "d", 9, 0), ("d", "c", 0, 1),   # ratio 9
        ])
        assert howard_max_cycle_ratio(g)[0] == 9

    def test_acyclic_graph_returns_none(self):
        g = make_graph([("a", "b", 5, 0), ("b", "c", 5, 1)])
        ratio, cycle = howard_max_cycle_ratio(g)
        assert ratio is None and cycle == []
        assert lawler_max_cycle_ratio(g) is None

    def test_shared_node_cycles(self):
        # Two cycles through "a": ratios 4/1 and 7/2.
        g = make_graph([
            ("a", "b", 4, 0), ("b", "a", 0, 1),
            ("a", "c", 3, 1), ("c", "a", 4, 1),
        ])
        assert howard_max_cycle_ratio(g)[0] == 4

    def test_critical_cycle_edges_form_cycle(self):
        g = make_graph([
            ("a", "b", 1, 0), ("b", "a", 1, 1),
            ("b", "c", 10, 0), ("c", "b", 2, 1),
        ])
        ratio, cycle = howard_max_cycle_ratio(g)
        assert ratio == 12
        nodes = {e.src for e in cycle} | {e.dst for e in cycle}
        assert nodes == {"b", "c"}


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 7))
    n_edges = draw(st.integers(n, 3 * n))
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        w = draw(st.integers(0, 12))
        # Back/self edges always carry an iteration count so no
        # zero-count cycle can form (as in real dependence graphs).
        t = draw(st.integers(0, 1)) if u < v else 1
        edges.append((u, v, w, t))
    return make_graph(edges)


class TestCrossValidation:
    @given(random_graphs())
    @settings(max_examples=200, deadline=None)
    def test_howard_equals_lawler_equals_bruteforce(self, g):
        h = howard_max_cycle_ratio(g)[0]
        l = lawler_max_cycle_ratio(g)
        b = bruteforce_max_cycle_ratio(g)
        assert h == l == b

    @given(random_graphs())
    @settings(max_examples=100, deadline=None)
    def test_critical_cycle_attains_reported_ratio(self, g):
        ratio, cycle = howard_max_cycle_ratio(g)
        if ratio is None:
            return
        weight = sum(e.weight for e in cycle)
        count = sum(e.count for e in cycle)
        assert count > 0
        assert Fraction(weight, count) == ratio


class TestTarjanScc:
    def test_components_partition_nodes(self):
        rng = random.Random(3)
        g = RatioGraph()
        for _ in range(40):
            g.add_edge(rng.randrange(12), rng.randrange(12), 1, 1)
        components = g.strongly_connected_components()
        seen = [n for comp in components for n in comp]
        assert sorted(seen) == sorted(g.nodes)

    def test_against_networkx(self):
        import networkx as nx
        rng = random.Random(11)
        for _ in range(20):
            g = RatioGraph()
            nxg = nx.DiGraph()
            n = rng.randint(3, 10)
            nxg.add_nodes_from(range(n))
            for node in range(n):
                g.add_node(node)
            for _ in range(2 * n):
                u, v = rng.randrange(n), rng.randrange(n)
                g.add_edge(u, v, 1, 1)
                nxg.add_edge(u, v)
            ours = {frozenset(c) for c in g.strongly_connected_components()}
            theirs = {frozenset(c)
                      for c in nx.strongly_connected_components(nxg)}
            assert ours == theirs

    def test_unbounded_ratio_detected_by_lawler(self):
        g = make_graph([("a", "b", 3, 0), ("b", "a", 2, 0)])
        with pytest.raises(ValueError):
            lawler_max_cycle_ratio(g)
