"""BasicBlock container tests."""

import pytest

from repro.isa.block import BasicBlock


@pytest.fixture
def loop_block():
    return BasicBlock.from_asm("add rax, rbx\ncmp rax, rcx\njne -9")


class TestConstruction:
    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock([])

    def test_from_bytes_roundtrip(self, loop_block):
        again = BasicBlock.from_bytes(loop_block.raw)
        assert again == loop_block
        assert again.text() == loop_block.text()

    def test_num_bytes_matches_raw(self, loop_block):
        assert loop_block.num_bytes == len(loop_block.raw)


class TestBranchHandling:
    def test_ends_in_branch(self, loop_block):
        assert loop_block.ends_in_branch

    def test_without_final_branch(self, loop_block):
        stripped = loop_block.without_final_branch()
        assert len(stripped) == len(loop_block) - 1
        assert not stripped.ends_in_branch

    def test_without_final_branch_is_noop_for_plain_block(self):
        block = BasicBlock.from_asm("add rax, rbx")
        assert block.without_final_branch() is block


class TestOffsets:
    def test_instruction_offsets(self, loop_block):
        offsets = loop_block.instruction_offsets()
        assert offsets[0] == 0
        assert offsets == sorted(offsets)
        last = loop_block.instructions[-1]
        assert offsets[-1] + last.length == loop_block.num_bytes

    def test_hashable_and_equal_by_bytes(self, loop_block):
        again = BasicBlock.from_bytes(loop_block.raw)
        assert hash(again) == hash(loop_block)
        assert {again, loop_block} == {loop_block}
