"""Tests for the encoder: byte-accuracy against known x86-64 encodings."""

import pytest

from repro.isa.assembler import assemble_line


def enc(text: str) -> str:
    return assemble_line(text).raw.hex()


class TestKnownEncodings:
    """Golden encodings cross-checked against real assemblers."""

    @pytest.mark.parametrize("text,expected", [
        ("add rax, rbx", "4801d8"),
        ("add eax, ebx", "01d8"),
        ("xor r11, r11", "4d31db"),
        ("cmp r12, r13", "4d39ec"),
        ("mov rcx, qword ptr [rsi+rax*8+16]", "488b4cc610"),
        ("mov qword ptr [rdi], rdx", "488917"),
        ("push rbp", "55"),
        ("pop r15", "415f"),
        ("jne -12", "75f4"),
        ("jmp -20", "ebec"),
        ("lea r8, [rbx+rcx*4]", "4c8d048b"),
        ("imul r9, r10", "4d0fafca"),
        ("shl rdx, 3", "48c1e203"),
        ("mov ax, 500", "66b8f401"),
        ("addps xmm3, xmm4", "0f58dc"),
        ("pxor xmm1, xmm2", "660fefca"),
        ("vfmadd231ps ymm0, ymm1, ymm2", "c4e275b8c2"),
        ("vpxor ymm1, ymm2, ymm3", "c5edefcb"),
        ("popcnt rax, rbx", "f3480fb8c3"),
        ("movzx eax, bl", "0fb6c3"),
        ("cqo", "4899"),
        ("cdq", "99"),
        ("div rcx", "48f7f1"),
        ("setge al", "0f9dc0"),
        ("cmovne rax, rbx", "480f45c3"),
        ("bswap r9", "490fc9"),
    ])
    def test_encoding(self, text, expected):
        assert enc(text) == expected


class TestEncodingStructure:
    def test_movabs_is_ten_bytes(self):
        instr = assemble_line("mov rbx, 81985529216486895")
        assert instr.length == 10

    def test_disp8_vs_disp32_selection(self):
        short = assemble_line("mov rax, qword ptr [rbx+16]")
        long = assemble_line("mov rax, qword ptr [rbx+1000]")
        assert long.length == short.length + 3

    def test_rbp_base_forces_disp(self):
        # [rbp] has no disp-less encoding; a disp8 of zero is emitted.
        plain = assemble_line("mov rax, qword ptr [rbx]")
        rbp = assemble_line("mov rax, qword ptr [rbp]")
        assert rbp.length == plain.length + 1

    def test_rsp_base_forces_sib(self):
        plain = assemble_line("mov rax, qword ptr [rbx]")
        rsp = assemble_line("mov rax, qword ptr [rsp]")
        assert rsp.length == plain.length + 1

    def test_rip_relative_has_disp32(self):
        instr = assemble_line("mov rax, qword ptr [rip+1024]")
        assert instr.length == 7  # REX + opcode + modrm + disp32

    def test_opcode_offset_counts_prefixes(self):
        assert assemble_line("add rax, rbx").opcode_offset == 1  # REX
        assert assemble_line("add eax, ebx").opcode_offset == 0
        assert assemble_line("popcnt rax, rbx").opcode_offset == 2
        assert assemble_line("mov ax, 500").opcode_offset == 1  # 0x66

    def test_vex_two_byte_when_possible(self):
        # vpxor ymm1, ymm2, ymm3 needs no B/X extension: 2-byte VEX.
        assert assemble_line("vpxor ymm1, ymm2, ymm3").length == 4
        # With an extended rm register the 3-byte VEX form is required.
        assert assemble_line("vpxor ymm1, ymm2, ymm9").length == 5

    def test_max_length_is_fifteen(self):
        for text in ("nop15", "mov rbx, 81985529216486895",
                     "add qword ptr [r12+r13*8+100000], rax"):
            assert assemble_line(text).length <= 15


class TestRexComputation:
    def test_no_rex_for_legacy_regs_32bit(self):
        assert assemble_line("add eax, ebx").raw[0] == 0x01

    def test_rex_b_for_extended_rm(self):
        raw = assemble_line("add r8, rax").raw
        assert raw[0] == 0x49  # REX.W + REX.B

    def test_rex_r_for_extended_reg_field(self):
        raw = assemble_line("add rax, r8").raw
        assert raw[0] == 0x4C  # REX.W + REX.R

    def test_rex_x_for_extended_index(self):
        raw = assemble_line("mov rax, qword ptr [rbx+r9*2]").raw
        assert raw[0] & 0x42 == 0x42  # REX.X set
