"""Tests for operand types."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.operands import ImmOperand, MemOperand, RegOperand, imm_fits
from repro.isa.registers import register_by_name


class TestImmOperand:
    def test_encoding_little_endian(self):
        imm = ImmOperand(0x1234, 32)
        assert imm.encoded_bytes() == b"\x34\x12\x00\x00"

    def test_negative_encoding_two_complement(self):
        imm = ImmOperand(-1, 8)
        assert imm.encoded_bytes() == b"\xff"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ImmOperand(300, 8)

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_imm32_roundtrip(self, value):
        raw = ImmOperand(value, 32).encoded_bytes()
        assert int.from_bytes(raw, "little", signed=True) == value

    def test_imm_fits_boundaries(self):
        assert imm_fits(127, 8)
        assert not imm_fits(128, 8)
        assert imm_fits(-128, 8)
        assert not imm_fits(-129, 8)


class TestMemOperand:
    def test_requires_some_component(self):
        with pytest.raises(ValueError):
            MemOperand()

    def test_rsp_index_rejected(self):
        with pytest.raises(ValueError):
            MemOperand(base=register_by_name("rax"),
                       index=register_by_name("rsp"))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            MemOperand(base=register_by_name("rax"), scale=3)

    def test_address_regs(self):
        mem = MemOperand(base=register_by_name("rbx"),
                         index=register_by_name("rcx"), scale=4, disp=8)
        assert [r.name for r in mem.address_regs()] == ["rbx", "rcx"]

    def test_rip_relative_reads_no_gpr(self):
        mem = MemOperand(base=register_by_name("rip"), disp=100)
        assert mem.is_rip_relative
        assert mem.address_regs() == []

    def test_text_rendering(self):
        mem = MemOperand(base=register_by_name("rax"),
                         index=register_by_name("rbx"), scale=8,
                         disp=16, width=64)
        assert str(mem) == "qword ptr [rax+rbx*8+16]"

    def test_address_key_distinguishes_disp(self):
        base = register_by_name("rax")
        a = MemOperand(base=base, disp=0, width=64)
        b = MemOperand(base=base, disp=8, width=64)
        assert a.address_key() != b.address_key()


class TestRegOperand:
    def test_width_delegates_to_register(self):
        assert RegOperand(register_by_name("ecx")).width == 32

    def test_str(self):
        assert str(RegOperand(register_by_name("r10"))) == "r10"
