"""Tests for the instruction template table."""

import pytest

from repro.isa.templates import (
    CMP_FUSIBLE_CCS,
    CONDITION_CODES,
    INCDEC_FUSIBLE_CCS,
    all_templates,
    nop_bytes,
    template_by_name,
    templates_by_mnemonic,
)


class TestTableIntegrity:
    def test_names_unique(self):
        names = [t.name for t in all_templates()]
        assert len(names) == len(set(names))

    def test_reasonable_size(self):
        assert len(all_templates()) > 150

    def test_every_template_has_archetype(self):
        for t in all_templates():
            assert t.uop_archetype

    def test_slot_count_matches_imm_width(self):
        from repro.isa.templates import SlotKind
        for t in all_templates():
            has_imm_slot = any(s.kind is SlotKind.IMM for s in t.slots)
            assert has_imm_slot == (t.encoding.imm_width > 0), t.name


class TestLcpMarking:
    def test_imm16_forms_have_lcp(self):
        assert template_by_name("ADD_R16_IMM16").has_lcp
        assert template_by_name("MOV_R16_IMM16").has_lcp

    def test_imm32_forms_have_no_lcp(self):
        assert not template_by_name("ADD_R64_IMM32").has_lcp

    def test_sse_66_prefix_is_not_lcp(self):
        # The mandatory 0x66 of PADDD does not change any immediate.
        assert not template_by_name("PADDD_X_X").has_lcp

    def test_multibyte_nops_have_no_lcp(self):
        assert not template_by_name("NOP15").has_lcp


class TestBranchClassification:
    def test_jcc_is_conditional(self):
        t = template_by_name("JNE_REL8")
        assert t.is_branch and t.is_cond_branch
        assert t.reads_flags

    def test_jmp_is_unconditional(self):
        t = template_by_name("JMP_REL32")
        assert t.is_branch and not t.is_cond_branch

    def test_condition_code_values(self):
        assert template_by_name("JE_REL8").cc == CONDITION_CODES["e"]
        assert template_by_name("JNE_REL32").cc == CONDITION_CODES["ne"]


class TestFusionClasses:
    def test_test_and_are_test_class(self):
        assert template_by_name("TEST_R64_R64").fusible_first == "test"
        assert template_by_name("AND_R64_R64").fusible_first == "test"

    def test_cmp_add_sub_are_cmp_class(self):
        for name in ("CMP_R64_R64", "ADD_R64_R64", "SUB_R64_IMM8"):
            assert template_by_name(name).fusible_first == "cmp"

    def test_inc_dec_class(self):
        assert template_by_name("INC_R64").fusible_first == "incdec"

    def test_mov_is_not_fusible(self):
        assert template_by_name("MOV_R64_R64").fusible_first is None

    def test_incdec_ccs_exclude_carry(self):
        assert CONDITION_CODES["b"] not in INCDEC_FUSIBLE_CCS
        assert CONDITION_CODES["e"] in INCDEC_FUSIBLE_CCS

    def test_cmp_ccs_include_carry(self):
        assert CONDITION_CODES["b"] in CMP_FUSIBLE_CCS
        assert CONDITION_CODES["s"] not in CMP_FUSIBLE_CCS


class TestMemoryFlags:
    def test_load_form(self):
        t = template_by_name("ADD_R64_M64")
        assert t.loads and not t.stores

    def test_store_form(self):
        t = template_by_name("MOV_M64_R64")
        assert t.stores and not t.loads

    def test_rmw_form(self):
        t = template_by_name("ADD_M64_R64")
        assert t.loads and t.stores

    def test_lea_reads_memory_slot_but_archetype_is_lea(self):
        t = template_by_name("LEA_R64_M")
        assert t.uop_archetype == "lea"


class TestNops:
    def test_all_lengths_present(self):
        for length in range(1, 16):
            assert len(nop_bytes(length)) == length

    def test_lookup_by_mnemonic(self):
        assert len(templates_by_mnemonic("nop5")) == 1
        assert len(templates_by_mnemonic("nop")) == 1
