"""Decoder tests, including the hypothesis round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.decoder import DecodeError, decode, decode_block
from repro.isa.instruction import Instruction
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.isa.registers import gpr, register_by_name, vec
from repro.isa.templates import (
    Access,
    SlotKind,
    all_templates,
    template_by_name,
)

# ---------------------------------------------------------------------------
# Hypothesis strategy: a random valid instruction of the subset.
# ---------------------------------------------------------------------------

_TEMPLATES = all_templates()


@st.composite
def instructions(draw):
    template = draw(st.sampled_from(_TEMPLATES))
    operands = []
    for slot in template.slots:
        if slot.kind is SlotKind.REG:
            enc = draw(st.integers(0, 15))
            if slot.regclass == "vec":
                reg = vec(enc, slot.width)
            else:
                reg = gpr(enc, slot.width)
            operands.append(RegOperand(reg))
        elif slot.kind is SlotKind.MEM:
            base_enc = draw(st.one_of(st.none(), st.integers(0, 15)))
            index_enc = draw(st.one_of(st.none(), st.integers(0, 15)
                                       .filter(lambda e: e != 4)))
            disp = draw(st.sampled_from((0, 1, 8, 127, 128, -128, 4096)))
            base = gpr(base_enc, 64) if base_enc is not None else None
            index = gpr(index_enc, 64) if index_enc is not None else None
            scale = draw(st.sampled_from((1, 2, 4, 8)))
            if base is None and index is None and disp == 0:
                disp = 64
            operands.append(MemOperand(base=base, index=index, scale=scale,
                                       disp=disp, width=slot.width))
        else:
            width = template.encoding.imm_width
            lo = -(1 << (width - 1))
            hi = (1 << (width - 1)) - 1
            operands.append(ImmOperand(draw(st.integers(lo, hi)), width))
    return Instruction.create(template, tuple(operands))


class TestRoundTripProperty:
    @given(instructions())
    @settings(max_examples=400, deadline=None)
    def test_encode_decode_roundtrip(self, instr):
        decoded, end = decode(instr.raw)
        assert end == len(instr.raw)
        assert decoded.template.name == instr.template.name
        assert decoded.raw == instr.raw
        assert decoded.opcode_offset == instr.opcode_offset
        assert decoded.text() == instr.text()

    @given(st.lists(instructions(), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_block_roundtrip(self, instrs):
        raw = b"".join(i.raw for i in instrs)
        decoded = decode_block(raw)
        assert [d.template.name for d in decoded] == \
            [i.template.name for i in instrs]


class TestErrors:
    def test_truncated_input(self):
        full = template_by_name("ADD_R64_IMM32")
        from repro.isa.assembler import assemble_line
        raw = assemble_line("add rax, 100000").raw
        with pytest.raises(DecodeError):
            decode(raw[:-2])

    def test_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode(b"\x06")  # invalid in 64-bit mode

    def test_empty_input(self):
        with pytest.raises(DecodeError):
            decode(b"")


class TestSpecificDecodes:
    def test_nop_lengths_recognized(self):
        for length in (1, 5, 9, 15):
            from repro.isa.templates import nop_bytes
            instr, end = decode(nop_bytes(length))
            assert end == length
            assert instr.template.name == f"NOP{length}"

    def test_modrm_digit_disambiguation(self):
        # 0x83 /0 = add, /5 = sub: same opcode byte, distinct digit.
        from repro.isa.assembler import assemble_line
        add = assemble_line("add rax, 5")
        sub = assemble_line("sub rax, 5")
        assert decode(add.raw)[0].mnemonic == "add"
        assert decode(sub.raw)[0].mnemonic == "sub"

    def test_mem_vs_reg_form_disambiguation(self):
        from repro.isa.assembler import assemble_line
        rr = assemble_line("mov rax, rbx")
        store = assemble_line("mov qword ptr [rax], rbx")
        assert decode(rr.raw)[0].template.name == "MOV_R64_R64"
        assert decode(store.raw)[0].template.name == "MOV_M64_R64"

    def test_rex_w_disambiguation(self):
        # 0x99 is CDQ without REX.W and CQO with it.
        assert decode(b"\x99")[0].mnemonic == "cdq"
        assert decode(b"\x48\x99")[0].mnemonic == "cqo"

    def test_simd_prefix_disambiguation(self):
        # 0F BD = bsr; F3 0F BD = lzcnt.
        from repro.isa.assembler import assemble_line
        bsr = assemble_line("bsr rax, rbx")
        lzcnt = assemble_line("lzcnt rax, rbx")
        assert decode(bsr.raw)[0].mnemonic == "bsr"
        assert decode(lzcnt.raw)[0].mnemonic == "lzcnt"
