"""Tests for the register file."""

import pytest

from repro.isa.registers import (
    FLAGS,
    RIP,
    Register,
    RegisterKind,
    SCRATCH_GPR64,
    all_registers,
    gpr,
    is_register_name,
    register_by_name,
    vec,
)


class TestLookup:
    def test_gpr_by_name(self):
        rax = register_by_name("rax")
        assert rax.width == 64
        assert rax.enc == 0
        assert rax.kind is RegisterKind.GPR

    def test_lookup_is_case_insensitive(self):
        assert register_by_name("RAX") is register_by_name("rax")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            register_by_name("rxx")

    def test_is_register_name(self):
        assert is_register_name("r13d")
        assert not is_register_name("13rd")

    def test_all_widths_resolve_to_same_root(self):
        for name in ("rax", "eax", "ax", "al"):
            assert register_by_name(name).root().name == "rax"

    def test_extended_gpr_aliases(self):
        for name, width in (("r9", 64), ("r9d", 32), ("r9w", 16),
                            ("r9b", 8)):
            reg = register_by_name(name)
            assert reg.width == width
            assert reg.enc == 9
            assert reg.root().name == "r9"


class TestVectorRegisters:
    def test_xmm_roots_at_ymm(self):
        assert register_by_name("xmm5").root().name == "ymm5"

    def test_ymm_is_its_own_root(self):
        ymm = register_by_name("ymm11")
        assert ymm.root() is ymm

    def test_vec_constructor(self):
        assert vec(3, 128).name == "xmm3"
        assert vec(3, 256).name == "ymm3"


class TestEncodingProperties:
    def test_needs_rex_for_extended(self):
        assert register_by_name("r8").needs_rex
        assert not register_by_name("rdi").needs_rex

    def test_byte_rex_only_registers(self):
        assert register_by_name("sil").is_byte_rex_only
        assert not register_by_name("al").is_byte_rex_only

    def test_gpr_constructor_matches_names(self):
        assert gpr(4, 64).name == "rsp"
        assert gpr(4, 8).name == "spl"
        assert gpr(12, 32).name == "r12d"


class TestSpecialRegisters:
    def test_flags_kind(self):
        assert FLAGS.kind is RegisterKind.FLAGS

    def test_rip_kind(self):
        assert RIP.kind is RegisterKind.IP

    def test_scratch_pool_excludes_rsp(self):
        names = {r.name for r in SCRATCH_GPR64}
        assert "rsp" not in names
        assert "rax" in names

    def test_registry_size(self):
        # 16 GPRs x 4 widths + 16 vector x 2 widths + rip + rflags.
        assert len(all_registers()) == 16 * 4 + 16 * 2 + 2
