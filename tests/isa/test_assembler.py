"""Assembler tests."""

import pytest

from repro.isa.assembler import AssemblyError, assemble, assemble_line
from repro.isa.operands import ImmOperand, MemOperand


class TestBasicParsing:
    def test_two_register_form(self):
        instr = assemble_line("add rax, rbx")
        assert instr.template.name == "ADD_R64_R64"

    def test_width_matching(self):
        assert assemble_line("add eax, ebx").template.name == "ADD_R32_R32"

    def test_comment_stripping(self):
        instr = assemble_line("add rax, rbx ; increment accumulator")
        assert instr.mnemonic == "add"

    def test_multi_line_assembly(self):
        block = assemble("add rax, rbx\n; pure comment\n\nsub rcx, rdx\n")
        assert [i.mnemonic for i in block] == ["add", "sub"]

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble_line("frobnicate rax")

    def test_arity_mismatch(self):
        with pytest.raises(AssemblyError):
            assemble_line("add rax")


class TestImmediateSelection:
    def test_prefers_imm8_when_it_fits(self):
        assert assemble_line("add rax, 100").template.name == \
            "ADD_R64_IMM8"

    def test_falls_back_to_imm32(self):
        assert assemble_line("add rax, 1000").template.name == \
            "ADD_R64_IMM32"

    def test_16bit_register_selects_imm16(self):
        assert assemble_line("add cx, 1000").template.name == \
            "ADD_R16_IMM16"

    def test_hex_immediates(self):
        instr = assemble_line("add rax, 0x40")
        imm = instr.operands[1]
        assert isinstance(imm, ImmOperand) and imm.value == 0x40

    def test_negative_immediates(self):
        instr = assemble_line("add rax, -5")
        assert instr.operands[1].value == -5


class TestMemoryOperands:
    def test_full_addressing_form(self):
        instr = assemble_line("mov rax, qword ptr [rbx+rcx*4+24]")
        mem = instr.operands[1]
        assert isinstance(mem, MemOperand)
        assert mem.base.name == "rbx"
        assert mem.index.name == "rcx"
        assert mem.scale == 4
        assert mem.disp == 24

    def test_negative_displacement(self):
        mem = assemble_line("mov rax, qword ptr [rbx-8]").operands[1]
        assert mem.disp == -8

    def test_width_inferred_from_slot(self):
        # Without a ptr annotation the slot width applies.
        instr = assemble_line("movaps xmm1, [rsi]")
        assert instr.operands[1].width == 128

    def test_bad_scale_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_line("mov rax, qword ptr [rbx+rcx*3]")

    def test_two_plain_registers_use_second_as_index(self):
        mem = assemble_line("lea rax, [rbx+rcx]").operands[1]
        assert mem.base.name == "rbx"
        assert mem.index.name == "rcx"
        assert mem.scale == 1


class TestSpecialForms:
    def test_shift_by_cl(self):
        instr = assemble_line("shl rdx, cl")
        assert instr.template.name == "SHL_R64_CL"
        assert len(instr.operands) == 1

    def test_shift_by_imm_still_works(self):
        assert assemble_line("shl rdx, 5").template.name == "SHL_R64_IMM8"

    def test_three_operand_vex(self):
        instr = assemble_line("vaddps ymm1, ymm2, ymm3")
        assert instr.template.name == "VADDPS_Y_Y_Y"

    def test_nop_sizes(self):
        assert assemble_line("nop7").length == 7
