"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestPredict:
    def test_predict_from_asm(self, capsys):
        code = main(["predict", "--uarch", "SKL", "--mode", "loop",
                     "--asm", "imul rax, rbx\\nadd rax, rcx\\n"
                              "cmp rax, r14\\njne -14"])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted throughput: 4.00" in out
        assert "bottleneck" in out
        assert "Precedence" in out

    def test_predict_from_hex(self, capsys):
        code = main(["predict", "--uarch", "RKL", "--hex", "4801d8"])
        assert code == 0
        assert "add rax, rbx" in capsys.readouterr().out

    def test_predict_requires_input(self, capsys):
        assert main(["predict", "--uarch", "SKL"]) == 2

    def test_predict_from_file(self, tmp_path, capsys):
        path = tmp_path / "block.s"
        path.write_text("add rax, rbx\nadd rcx, rdx\n")
        assert main(["predict", "--file", str(path)]) == 0
        assert "2 instructions" in capsys.readouterr().out


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Rocket Lake" in out and "Sandy Bridge" in out

    def test_table2_single_uarch_small(self, capsys):
        assert main(["table2", "--size", "6", "--uarch", "SKL"]) == 0
        out = capsys.readouterr().out
        assert "Facile" in out and "uiCA" in out

    def test_figure6_small(self, capsys):
        assert main(["figure6", "--size", "8"]) == 0
        assert "SNB -> HSW" in capsys.readouterr().out


class TestHunt:
    def test_hunt_tiny_campaign_with_report(self, tmp_path, capsys):
        out = tmp_path / "hunt.json"
        code = main(["hunt", "--seed", "0", "--budget", "8",
                     "--mode", "unrolled", "--max-witnesses", "2",
                     "--predictors", "Facile", "llvm-mca-15",
                     "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "facile hunt: deviation report" in text
        assert f"wrote {out}" in text
        import json
        report = json.loads(out.read_text())
        assert report["schema"] == "facile-hunt-report/v2"
        assert report["config"]["budget"] == 8

    def test_hunt_rejects_unknown_uarch(self, capsys):
        code = main(["hunt", "--budget", "4", "--uarchs", "NOPE"])
        assert code == 2
        assert "unknown µarch" in capsys.readouterr().err

    def test_hunt_rejects_unknown_predictor(self, capsys):
        code = main(["hunt", "--budget", "4",
                     "--predictors", "Facile", "wat"])
        assert code == 2
        assert "unknown predictor" in capsys.readouterr().err

    def test_hunt_known_requires_generalize(self, capsys):
        code = main(["hunt", "--budget", "4", "--known", "x.json"])
        assert code == 2
        assert "--generalize" in capsys.readouterr().err

    def test_hunt_rejects_unreadable_known(self, tmp_path, capsys):
        code = main(["hunt", "--budget", "4", "--generalize",
                     "--known", str(tmp_path / "nope.json")])
        assert code == 2
        assert "--known" in capsys.readouterr().err


class TestGeneralize:
    def test_rejects_missing_report(self, tmp_path, capsys):
        code = main(["generalize", str(tmp_path / "nope.json")])
        assert code == 2
        assert "nope.json" in capsys.readouterr().err

    def test_rejects_non_report_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something-else/v1"}')
        code = main(["generalize", str(path)])
        assert code == 2
        assert "not a facile hunt report" in capsys.readouterr().err

    def test_generalizes_a_hunt_report(self, tmp_path, capsys):
        report = tmp_path / "hunt.json"
        assert main(["hunt", "--seed", "0", "--budget", "8",
                     "--mode", "unrolled", "--max-witnesses", "2",
                     "--predictors", "Facile", "llvm-mca-15",
                     "--out", str(report)]) == 0
        capsys.readouterr()
        out = tmp_path / "families.json"
        code = main(["generalize", str(report), "--max-families", "1",
                     "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "Abstract deviation families" in text
        import json
        generalized = json.loads(out.read_text())
        assert generalized["schema"] == "facile-hunt-report/v2"
        assert generalized["config"]["generalize"] is True
        assert "families" in generalized
