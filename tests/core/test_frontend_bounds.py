"""DSB, LSD, Issue bound tests (paper §4.5-4.7)."""

from fractions import Fraction

import pytest

from repro.core.dsb import dsb_bound
from repro.core.issue import issue_bound
from repro.core.lsd import lsd_bound, lsd_fits, lsd_unroll_count
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block, macro_ops

SKL = uarch_by_name("SKL")
SNB = uarch_by_name("SNB")
RKL = uarch_by_name("RKL")


def ops_for(asm: str, cfg):
    block = BasicBlock.from_asm(asm)
    return macro_ops(analyze_block(block, cfg), cfg), block


class TestDsb:
    def test_small_block_rounds_up(self):
        ops, block = ops_for("add rax, rbx\nadd rcx, rdx\n"
                             "add rsi, rdi\nadd r8, r9\n"
                             "add r10, r11\nadd r12, r13\nadd r14, r15",
                             SKL)
        assert block.num_bytes < 32
        # 7 µops at width 6: exact 7/6, but the branch rule rounds up.
        assert dsb_bound(ops, block.num_bytes, SKL) == 2

    def test_large_block_keeps_fraction(self):
        asm = "\n".join(["add rax, 1000000"] * 6)  # 7 bytes each
        ops, block = ops_for(asm, SKL)
        assert block.num_bytes >= 32
        assert dsb_bound(ops, block.num_bytes, SKL) == Fraction(6, 6)

    def test_counts_fused_domain_uops(self):
        # An RMW contributes 2 fused µops; 8 of them exceed 32 bytes so
        # the exact fraction applies.
        asm = "\n".join(["add qword ptr [rsi+64], rax"] * 8)
        ops, block = ops_for(asm, SKL)
        assert block.num_bytes >= 32
        assert dsb_bound(ops, block.num_bytes, SKL) == Fraction(16, 6)


class TestLsd:
    def test_fits_depends_on_idq_size_and_enablement(self):
        ops, _ = ops_for("add rax, rbx", SNB)
        assert lsd_fits(ops, SNB)
        assert not lsd_fits(ops, SKL)  # SKL150 erratum

    def test_large_loop_does_not_fit(self):
        asm = "\n".join(["add rax, rbx"] * 30)
        ops, _ = ops_for(asm, SNB)  # 30 µops > 28-entry IDQ
        assert not lsd_fits(ops, SNB)

    def test_boundary_bubble_without_unrolling(self):
        # SNB does not unroll: 5 µops at width 4 -> ceil(5/4) = 2.
        asm = "\n".join(["add rax, rbx"] * 5)
        ops, _ = ops_for(asm, SNB)
        assert lsd_bound(ops, SNB) == 2

    def test_unrolling_amortizes_bubble_on_rkl(self):
        asm = "\n".join(["add rax, rbx"] * 3)
        ops, _ = ops_for(asm, RKL)
        unroll = lsd_unroll_count(3, RKL)
        assert unroll > 1
        assert lsd_bound(ops, RKL) < 1

    def test_unroll_count_bounded_by_idq(self):
        assert lsd_unroll_count(30, RKL) * 30 <= RKL.idq_size
        assert lsd_unroll_count(69, RKL) == 1


class TestIssue:
    def test_counts_issued_uops(self):
        ops, _ = ops_for("add rax, rbx\nadd rcx, rdx", SKL)
        assert issue_bound(ops, SKL) == Fraction(2, 4)

    def test_eliminated_moves_still_use_issue_slots(self):
        ops, _ = ops_for("mov rax, rbx\nmov rcx, rdx", SKL)
        assert issue_bound(ops, SKL) == Fraction(2, 4)

    def test_unlamination_raises_issue_count_on_snb(self):
        plain_ops, _ = ops_for("add rax, qword ptr [rsi]", SNB)
        indexed_ops, _ = ops_for("add rax, qword ptr [rsi+rbx*8]", SNB)
        assert issue_bound(indexed_ops, SNB) == \
            2 * issue_bound(plain_ops, SNB)

    def test_wider_issue_on_rkl(self):
        ops_skl, _ = ops_for("add rax, rbx", SKL)
        ops_rkl, _ = ops_for("add rax, rbx", RKL)
        assert issue_bound(ops_rkl, RKL) < issue_bound(ops_skl, SKL)
