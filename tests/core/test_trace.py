"""Trace-prediction tests (the §7 future-work extension)."""

import pytest

from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile
from repro.core.trace import TraceFacile, TraceSegment
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")


@pytest.fixture(scope="module")
def tracer():
    return TraceFacile(SKL)


class TestBasics:
    def test_single_block_matches_facile(self, tracer):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        trace = tracer.predict([TraceSegment(block)])
        single = Facile(SKL).predict_unrolled(block)
        assert trace.cycles == pytest.approx(single.cycles)
        assert trace.bottleneck is Component.PRECEDENCE

    def test_frequency_scales_contribution(self, tracer):
        block = BasicBlock.from_asm("imul rax, rbx")
        once = tracer.predict([TraceSegment(block, 1.0)])
        thrice = tracer.predict([TraceSegment(block, 3.0)])
        assert thrice.cycles == pytest.approx(3 * once.cycles)

    def test_mode_defaults_from_branch(self, tracer):
        loop = BasicBlock.from_asm("add rax, rbx\njne -5")
        straight = BasicBlock.from_asm("add rax, rbx")
        trace = tracer.predict([TraceSegment(loop),
                                TraceSegment(straight)])
        modes = [p.mode for _s, p, _c in trace.segments]
        assert modes == [ThroughputMode.LOOP, ThroughputMode.UNROLLED]

    def test_empty_trace_rejected(self, tracer):
        with pytest.raises(ValueError):
            tracer.predict([])

    def test_nonpositive_frequency_rejected(self, tracer):
        block = BasicBlock.from_asm("nop")
        with pytest.raises(ValueError):
            tracer.predict([TraceSegment(block, 0.0)])


class TestAggregation:
    def test_component_attribution_sums_to_total(self, tracer):
        segments = [
            TraceSegment(BasicBlock.from_asm("imul rax, rbx\n"
                                             "add rax, rcx"), 1.0),
            TraceSegment(BasicBlock.from_asm("\n".join(["nop15"] * 4)),
                         2.0),
        ]
        trace = tracer.predict(segments)
        assert sum(trace.component_cycles.values()) == \
            pytest.approx(trace.cycles, abs=0.05)

    def test_dominant_component_reported(self, tracer):
        # A hot dependence-bound block dominates a rarely-taken
        # front-end-bound one.
        trace = tracer.predict([
            TraceSegment(BasicBlock.from_asm("imul rax, rbx\n"
                                             "add rax, rcx"), 10.0),
            TraceSegment(BasicBlock.from_asm("\n".join(["nop15"] * 4)),
                         0.1),
        ])
        assert trace.bottleneck is Component.PRECEDENCE


class TestCounterfactuals:
    def test_idealizing_dominant_component_speeds_up(self, tracer):
        trace = tracer.predict([
            TraceSegment(BasicBlock.from_asm("imul rax, rbx\n"
                                             "add rax, rcx"), 4.0),
            TraceSegment(BasicBlock.from_asm("add r8, r9"), 1.0),
        ])
        speedup = trace.idealized_speedup(Component.PRECEDENCE)
        assert speedup is not None and speedup > 1.5

    def test_idealizing_irrelevant_component_is_neutral(self, tracer):
        trace = tracer.predict([
            TraceSegment(BasicBlock.from_asm("imul rax, rbx\n"
                                             "add rax, rcx"), 1.0),
        ])
        assert trace.idealized_speedup(Component.DSB) == \
            pytest.approx(1.0)


class TestBranchyLoop:
    def test_probability_weighted_arms(self, tracer):
        prologue = BasicBlock.from_asm("add rcx, 1\ncmp rcx, rdx")
        fast_arm = BasicBlock.from_asm("add rax, rbx")
        slow_arm = BasicBlock.from_asm("imul rax, rbx\nimul rax, rbx")
        balanced = tracer.predict_branchy_loop(
            prologue, [(fast_arm, 0.5), (slow_arm, 0.5)])
        skewed = tracer.predict_branchy_loop(
            prologue, [(fast_arm, 0.9), (slow_arm, 0.1)])
        assert skewed.cycles < balanced.cycles

    def test_segment_names(self, tracer):
        prologue = BasicBlock.from_asm("add rcx, 1")
        arm = BasicBlock.from_asm("add rax, rbx")
        trace = tracer.predict_branchy_loop(prologue, [(arm, 1.0)])
        names = [s.name for s, _p, _c in trace.segments]
        assert names == ["prologue", "arm0"]
