"""JCC-erratum detection tests."""

import pytest

from repro.core.jcc import affected_by_jcc_erratum
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block

SKL = uarch_by_name("SKL")
RKL = uarch_by_name("RKL")


def affected(asm: str, cfg=SKL) -> bool:
    block = BasicBlock.from_asm(asm)
    return affected_by_jcc_erratum(block, cfg, analyze_block(block, cfg))


class TestDetection:
    def test_small_loop_unaffected(self):
        assert not affected("add rax, rbx\njne -5")

    def test_branch_ending_on_32_byte_boundary(self):
        # 30 bytes of NOPs + 2-byte jcc = ends exactly at byte 31.
        assert affected("nop15\nnop15\njne -32")

    def test_branch_crossing_32_byte_boundary(self):
        # 31 bytes of NOPs, then a 2-byte jcc spans bytes 31-32.
        assert affected("nop15\nnop15\nnop\njne -33")

    def test_branch_inside_region_ok(self):
        # Branch fully inside the first 32-byte region, not at its end.
        assert not affected("nop15\nnop10\njne -27")

    def test_fused_pair_counts_from_flag_producer(self):
        # cmp (3 bytes) + jcc: the fused jump starts at the cmp; place
        # the pair so that only the pair (not the jcc alone) crosses.
        prefix = "nop15\nnop15\n"  # 30 bytes
        # cmp at 30-32 crosses the boundary; jcc at 33.
        assert affected(prefix + "cmp rax, rbx\njne -37")

    def test_non_erratum_uarch_never_affected(self):
        assert not affected("nop15\nnop15\njne -32", RKL)

    def test_unconditional_jmp_also_counts(self):
        assert affected("nop15\nnop15\njmp -32")
