"""Facile combination-logic tests (paper §4.1-4.2)."""

from fractions import Fraction

import pytest

from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")
SNB = uarch_by_name("SNB")
RKL = uarch_by_name("RKL")
U = ThroughputMode.UNROLLED
L = ThroughputMode.LOOP


@pytest.fixture(scope="module")
def dep_loop():
    return BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx\n"
                               "cmp rax, r14\njne -14")


class TestCombination:
    def test_tpu_is_max_of_components(self, dep_loop):
        pred = Facile(SKL).predict(dep_loop, U)
        relevant = [Component.PREDEC, Component.DEC, Component.ISSUE,
                    Component.PORTS, Component.PRECEDENCE]
        assert pred.throughput == max(pred.bounds[c] for c in relevant)

    def test_bottleneck_bound_equals_throughput(self, dep_loop):
        pred = Facile(SKL).predict(dep_loop, U)
        for comp in pred.bottlenecks:
            assert pred.bounds[comp] == pred.throughput

    def test_loop_mode_reports_fe_path(self, dep_loop):
        pred = Facile(SKL).predict(dep_loop, L)
        assert pred.fe_component is Component.DSB  # LSD off on SKL

    def test_lsd_path_on_rkl(self, dep_loop):
        pred = Facile(RKL).predict(dep_loop, L)
        assert pred.fe_component is Component.LSD
        assert pred.lsd_applicable

    def test_dsb_path_for_large_loops_on_rkl(self):
        asm = "\n".join(["add rax, 1000000"] * 80) + "\njne -126"
        pred = Facile(RKL).predict(BasicBlock.from_asm(asm), L)
        assert pred.fe_component is Component.DSB

    def test_jcc_erratum_forces_legacy_path(self):
        block = BasicBlock.from_asm("nop15\nnop15\njne -32")
        pred = Facile(SKL).predict(block, L)
        assert pred.jcc_affected
        assert pred.fe_component in (Component.PREDEC, Component.DEC)

    def test_predictions_rounded_to_two_decimals(self, dep_loop):
        pred = Facile(SKL).predict(dep_loop, U)
        assert pred.cycles == round(pred.cycles, 2)


class TestAblationVariants:
    def test_exclusion_never_raises_prediction(self, dep_loop):
        full = Facile(SKL).predict(dep_loop, U)
        for comp in Component:
            reduced = Facile(SKL, exclude={comp}).predict(dep_loop, U)
            if reduced.throughput is not None:
                assert reduced.throughput <= full.throughput

    def test_only_component_prediction(self, dep_loop):
        only = Facile(SKL, components={Component.PRECEDENCE})
        pred = only.predict(dep_loop, U)
        assert pred.bottlenecks == [Component.PRECEDENCE]
        assert pred.throughput == pred.bounds[Component.PRECEDENCE]

    def test_only_dsb_in_unrolled_mode_predicts_nothing(self, dep_loop):
        only = Facile(SKL, components={Component.DSB})
        pred = only.predict(dep_loop, U)
        assert pred.throughput is None
        assert pred.cycles == 0.0

    def test_simple_variants_change_bounds(self):
        block = BasicBlock.from_asm("\n".join(["nop"] * 12))
        full = Facile(SKL).predict(block, U)
        simple = Facile(SKL, simple_predec=True).predict(block, U)
        assert simple.bounds[Component.PREDEC] < \
            full.bounds[Component.PREDEC]

    def test_recombined_matches_fresh_model(self, dep_loop):
        pred = Facile(SKL).predict(dep_loop, L)
        enabled = set(Component) - {Component.PRECEDENCE}
        recombined = pred.recombined(enabled)
        fresh = Facile(SKL, exclude={Component.PRECEDENCE}).predict(
            dep_loop, L)
        assert recombined.throughput == fresh.throughput


class TestComponentBound:
    def test_component_bound_matches_predict(self, dep_loop):
        model = Facile(SKL)
        pred = model.predict(dep_loop, L)
        for comp, value in pred.bounds.items():
            assert model.component_bound(dep_loop, comp, L) == value
