"""Decoder-model tests (paper §4.4, Algorithm 1)."""

from fractions import Fraction

import pytest

from repro.core.decoder import dec_bound, simple_dec_bound
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block, macro_ops

SKL = uarch_by_name("SKL")
ICL = uarch_by_name("ICL")
SNB = uarch_by_name("SNB")


def ops_for(asm: str, cfg):
    block = BasicBlock.from_asm(asm)
    return macro_ops(analyze_block(block, cfg), cfg)


class TestSteadyState:
    def test_four_simple_instructions_need_one_cycle(self):
        ops = ops_for("mov rax, 1\nmov rbx, 2\nmov rcx, 3\nmov rdx, 4",
                      SKL)
        assert dec_bound(ops, SKL) == 1

    def test_single_instruction_rotates_across_decoders(self):
        ops = ops_for("mov rax, 1", SKL)
        assert dec_bound(ops, SKL) == Fraction(1, 4)

    def test_complex_instruction_forces_decoder_zero(self):
        # Every div needs the complex decoder: one cycle per div.
        ops = ops_for("div rcx\ndiv rcx", SKL)
        assert dec_bound(ops, SKL) == 2

    def test_five_decoders_on_icl(self):
        asm = "\n".join(f"mov r{i}, 1" for i in range(8, 13))
        assert dec_bound(ops_for(asm, ICL), ICL) == 1
        assert dec_bound(ops_for(asm, SKL), SKL) > 1

    def test_branch_ends_decode_group(self):
        # The branch ends its decode group: the following four movs form
        # a second group, even though five decodes would fit otherwise.
        ops = ops_for("jmp -5\nmov rax, 1\nmov rbx, 2\nmov rcx, 3\n"
                      "mov rdx, 4", SKL)
        assert dec_bound(ops, SKL) == 2

    def test_fusible_cannot_use_last_decoder_on_skl(self):
        # Four fusible instructions: on SKL the 4th cannot go to the last
        # decoder, costing an extra group.
        asm = "cmp rax, rbx\ncmp rcx, rdx\ncmp rsi, rdi\ncmp r8, r9"
        assert dec_bound(ops_for(asm, SKL), SKL) > 1
        assert dec_bound(ops_for(asm, ICL), ICL) < 1.01

    def test_macro_fused_pair_decodes_as_one(self):
        # Four instructions, three macro-ops: one decode group per
        # iteration (the pair avoids the last-decoder restriction).
        fused = ops_for("mov rax, 1\nmov rbx, 2\ncmp rsi, rdi\n"
                        "jne -12", SKL)
        assert len(fused) == 3
        assert dec_bound(fused, SKL) == 1

    def test_fused_pair_on_last_decoder_restriction(self):
        # With the pair as the 4th macro-op, SKL wraps it to a new group.
        fused = ops_for("mov rax, 1\nmov rbx, 2\nmov rcx, 3\n"
                        "cmp rsi, rdi\njne -15", SKL)
        assert len(fused) == 4
        assert dec_bound(fused, SKL) == 2


class TestSimpleDec:
    def test_simple_model_counts_and_divides(self):
        ops = ops_for("mov rax, 1\nmov rbx, 2\nmov rcx, 3", SKL)
        assert simple_dec_bound(ops, SKL) == Fraction(3, 4)

    def test_simple_model_complex_floor(self):
        ops = ops_for("div rcx\ndiv rcx\nmov rax, 1", SKL)
        assert simple_dec_bound(ops, SKL) == 2

    def test_simple_is_lower_bound_of_full_model(self):
        for asm in ("mov rax, 1\nnop\nnop\nnop\nnop",
                    "cmp rax, rbx\ncmp rcx, rdx\ncmp rsi, rdi",
                    "div rcx\nmov rax, 1\nmov rbx, 2"):
            ops = ops_for(asm, SKL)
            assert simple_dec_bound(ops, SKL) <= dec_bound(ops, SKL)
