"""Port-contention bound tests, incl. the heuristic-vs-LP property."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ports import (
    critical_instructions,
    ports_bound,
    ports_bound_lp,
)
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block, macro_ops

SKL = uarch_by_name("SKL")


def ops_for(asm: str, cfg=SKL):
    block = BasicBlock.from_asm(asm)
    return macro_ops(analyze_block(block, cfg), cfg)


class TestPairwiseHeuristic:
    def test_single_port_class(self):
        # Three imuls all on port 1: bound 3.
        ops = ops_for("imul rax, rbx\nimul rcx, rdx\nimul rsi, rdi")
        result = ports_bound(ops)
        assert result.bound == 3
        assert result.critical_combination == frozenset({1})

    def test_union_of_pairs_found(self):
        # Loads on {2,3} and stores' AGU on {2,3,7} + STD {4}: the union
        # {2,3,7} confines loads and STAs together.
        ops = ops_for("mov rax, qword ptr [rsi]\n"
                      "mov rbx, qword ptr [rsi+8]\n"
                      "mov qword ptr [rdi], rcx")
        result = ports_bound(ops)
        assert result.bound == Fraction(3, 3)

    def test_eliminated_uops_excluded(self):
        ops = ops_for("mov rax, rbx\nmov rcx, rdx")
        assert ports_bound(ops).bound == 0

    def test_nops_excluded(self):
        ops = ops_for("nop\nnop\nnop")
        assert ports_bound(ops).bound == 0

    def test_macro_fused_branch_counts_once(self):
        ops = ops_for("cmp rax, rbx\njne -7")
        assert ports_bound(ops).bound == Fraction(1, 2)  # one µop on {0,6}

    def test_critical_instruction_report(self):
        ops = ops_for("imul rax, rbx\nadd rcx, rdx\nimul rsi, rdi")
        result = ports_bound(ops)
        critical = critical_instructions(ops, result)
        assert 0 in critical and 2 in critical
        assert 1 not in critical


class TestLpEquivalence:
    """§4.8 claims the pairwise heuristic equals the LP bound on BHive;
    we check it on generated suites and hand-made blocks."""

    @pytest.mark.parametrize("asm", [
        "imul rax, rbx\nadd rcx, rdx",
        "mov rax, qword ptr [rsi]\nmov qword ptr [rdi], rbx",
        "addps xmm1, xmm2\nmulps xmm3, xmm4\npaddd xmm5, xmm6",
        "shl rax, 2\nshl rbx, 3\nadd rcx, rdx\nadd rsi, rdi",
        "div rcx\nimul rax, rbx\nmov rdx, qword ptr [rsi]",
    ])
    def test_heuristic_matches_lp(self, asm):
        ops = ops_for(asm)
        assert ports_bound(ops).bound == ports_bound_lp(ops)

    def test_heuristic_never_exceeds_lp_on_suite(self):
        from repro.bhive import default_suite
        for bench in default_suite(40):
            ops = ops_for(bench.block_u.text())
            heuristic = ports_bound(ops).bound
            lp = ports_bound_lp(ops)
            assert heuristic <= lp
            assert heuristic == lp  # observed equality, as in the paper

    def test_empty_block_of_eliminated_uops(self):
        ops = ops_for("mov rax, rbx")
        assert ports_bound_lp(ops) == 0
