"""Precedence-bound tests (paper §4.9)."""

from fractions import Fraction

import pytest

from repro.core.precedence import precedence_bound, precedence_bound_lawler
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase


@pytest.fixture(scope="module")
def db():
    return UopsDatabase(uarch_by_name("SKL"))


class TestBounds:
    def test_dependency_free_block(self, db):
        block = BasicBlock.from_asm("mov rax, 1\nmov rbx, 2")
        result = precedence_bound(block, db)
        assert result.bound == 0
        assert result.critical_chain == []

    def test_single_chain(self, db):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        result = precedence_bound(block, db)
        assert result.bound == 4
        assert result.critical_chain == [0, 1]

    def test_longest_of_multiple_chains_wins(self, db):
        block = BasicBlock.from_asm(
            "add rbx, rbx\n"            # chain of 1
            "imul rax, rax\n"           # chain of 3
            "mulps xmm1, xmm2")         # chain of 4 (RW accumulator)
        result = precedence_bound(block, db)
        assert result.bound == 4
        assert result.critical_chain == [2]

    def test_fractional_ratio_from_two_iteration_cycle(self, db):
        # xchg swaps rax and rbx (2 cycles); imul rax (3 cycles) then
        # sees its own output only every second iteration... simpler:
        # build a two-register round trip: rax -> rbx -> rax spanning
        # two iterations.
        block = BasicBlock.from_asm("mov rbx, rax\nimul rax, rcx")
        # mov is eliminated: rbx_k = rax_{k}; imul writes rax from rcx
        # only: no cycle through both. Bound comes from imul's own RW.
        result = precedence_bound(block, db)
        assert result.bound == 3

    def test_lawler_agrees_with_howard(self, db):
        for asm in ("imul rax, rbx\nadd rax, rcx",
                    "mov rax, qword ptr [rax]",
                    "adc rax, rbx\nadc rbx, rax",
                    "addps xmm1, xmm2\nmulps xmm2, xmm1"):
            block = BasicBlock.from_asm(asm)
            assert precedence_bound(block, db).bound == \
                precedence_bound_lawler(block, db)

    def test_agreement_on_generated_suite(self, db):
        from repro.bhive import default_suite
        for bench in default_suite(30):
            howard = precedence_bound(bench.block_l, db).bound
            lawler = precedence_bound_lawler(bench.block_l, db)
            assert howard == lawler
