"""Predecoder-model tests (paper §4.3)."""

from fractions import Fraction

import pytest

from repro.core.components import ThroughputMode
from repro.core.predecoder import predec_bound, simple_predec_bound
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")
U = ThroughputMode.UNROLLED
L = ThroughputMode.LOOP


class TestBasicCounting:
    def test_sixteen_byte_block_of_short_instructions(self):
        # 8 two-byte-ish instructions in exactly 16 bytes: 6 instructions
        # of 2 bytes (nop2) + one 4-byte: lengths 16, ends 7 -> 2 cycles.
        block = BasicBlock.from_asm("\n".join(["nop2"] * 6 + ["nop4"]))
        assert block.num_bytes == 16
        assert predec_bound(block, SKL, U) == Fraction(
            -(-7 // 5))  # ceil(7/5) = 2

    def test_five_wide_limit(self):
        # Five 3-byte instructions: 15 bytes, one block per iteration on
        # average, but more than 5 ends can share a block after tiling.
        block = BasicBlock.from_asm("\n".join(["nop3"] * 5))
        bound = predec_bound(block, SKL, U)
        assert bound >= Fraction(15, 16)

    def test_long_nops_are_fetch_limited(self):
        block = BasicBlock.from_asm("nop15\nnop15")
        # 30 bytes; at most 16 bytes/cycle: at least 1.875 cycles.
        assert predec_bound(block, SKL, U) >= Fraction(30, 16)


class TestLcpPenalty:
    def test_lcp_costs_three_cycles(self):
        plain = BasicBlock.from_asm("add ecx, 1000\nnop\nnop\nnop")
        lcp = BasicBlock.from_asm("add cx, 1000\nnop\nnop\nnop\nnop")
        assert lcp.num_bytes == plain.num_bytes  # same layout
        diff = predec_bound(lcp, SKL, U) - predec_bound(plain, SKL, U)
        assert diff >= 2  # 3-cycle penalty, partially hidden

    def test_lcp_penalty_partially_hidden_by_busy_predecessor(self):
        # A predecessor block needing several predecode cycles hides part
        # of the penalty.
        many = BasicBlock.from_asm("\n".join(
            ["nop2"] * 8 + ["add cx, 1000"]))
        few = BasicBlock.from_asm("nop15\nadd cx, 1000")
        bound_many = predec_bound(many, SKL, L)
        bound_few = predec_bound(few, SKL, L)
        # Both are 20-21 bytes; the busy version hides more.
        assert bound_many <= bound_few + 1


class TestModes:
    def test_loop_mode_uses_one_iteration(self):
        block = BasicBlock.from_asm("nop5\nnop5\nnop3")  # 13 bytes
        assert predec_bound(block, SKL, L) == 1

    def test_unrolled_mode_tiles_the_16_byte_grid(self):
        block = BasicBlock.from_asm("nop5\nnop5\nnop3")  # 13 bytes
        bound = predec_bound(block, SKL, U)
        # 13 bytes tile with period 16 iterations; at least l/16 cycles.
        assert bound >= Fraction(13, 16)
        assert bound.denominator <= 16

    def test_aligned_block_same_in_both_modes(self):
        block = BasicBlock.from_asm("nop8\nnop8")  # exactly 16 bytes
        assert predec_bound(block, SKL, U) == predec_bound(block, SKL, L)


class TestSimplePredec:
    def test_simple_model_is_length_over_16(self):
        block = BasicBlock.from_asm("nop15\nnop15\nnop2")
        assert simple_predec_bound(block, SKL, U) == Fraction(32, 16)

    def test_simple_underestimates_instruction_limited_blocks(self):
        block = BasicBlock.from_asm("\n".join(["nop"] * 12))
        assert simple_predec_bound(block, SKL, U) < \
            predec_bound(block, SKL, U)
