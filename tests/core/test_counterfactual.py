"""Counterfactual-analysis tests (paper §6.4)."""

import pytest

from repro.core.components import Component, ThroughputMode
from repro.core.counterfactual import idealized_speedup, speedup_table
from repro.core.model import Facile
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")


class TestIdealizedSpeedup:
    def test_bottleneck_idealization_speeds_up(self):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        pred = Facile(SKL).predict_unrolled(block)
        assert pred.bottlenecks == [Component.PRECEDENCE]
        speedup = idealized_speedup(pred, Component.PRECEDENCE)
        assert speedup is not None and speedup > 1.0

    def test_non_bottleneck_idealization_is_neutral(self):
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        pred = Facile(SKL).predict_unrolled(block)
        assert idealized_speedup(pred, Component.PORTS) == 1.0

    def test_tied_bottlenecks_limit_speedup(self):
        # NOP-only block: Predec and Dec are close; removing one leaves
        # the other as the limiter.
        block = BasicBlock.from_asm("\n".join(["nop"] * 8))
        pred = Facile(SKL).predict_unrolled(block)
        speedup = idealized_speedup(pred, Component.DEC)
        assert speedup is not None
        assert speedup < 1.5

    def test_degenerate_all_zero_returns_none(self):
        # A block whose only bound is the idealized one.
        block = BasicBlock.from_asm("imul rax, rbx")
        pred = Facile(SKL, components={Component.PRECEDENCE}).predict(
            block, ThroughputMode.UNROLLED)
        assert idealized_speedup(pred, Component.PRECEDENCE) is None


class TestSpeedupTable:
    def test_speedups_at_least_one(self):
        blocks = [
            BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx"),
            BasicBlock.from_asm("\n".join(["nop"] * 10)),
            BasicBlock.from_asm("mov rax, qword ptr [rsi]\n"
                                "mov rbx, qword ptr [rdi]"),
        ]
        table = speedup_table(SKL, blocks, list(Component))
        for comp, value in table.items():
            assert value >= 1.0, comp

    def test_balanced_design_limits_single_component_gains(self):
        from repro.bhive import default_suite
        blocks = [b.block_u for b in default_suite(30)]
        table = speedup_table(
            SKL, blocks,
            (Component.PREDEC, Component.PORTS, Component.PRECEDENCE))
        # The paper's Table 4 observation: no single component yields a
        # dramatic average speedup on a balanced design.
        assert all(v < 3.0 for v in table.values())
