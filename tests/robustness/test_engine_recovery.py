"""Engine fault tolerance: crashes, hangs, retries, typed failures.

The headline property: a parallel batch that suffered injected worker
kills and task exceptions recovers to results *byte-identical* to a
fault-free serial run — retries and the in-process fallback make worker
death an execution detail, never a results change.
"""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.engine.engine import Engine, measure_many
from repro.robustness import (
    EngineTaskError,
    FaultPlan,
    PredictorError,
    injected,
)
from repro.service.serialize import json_bytes, prediction_to_dict
from repro.sim.measure import measure
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")
MODE = ThroughputMode.LOOP


@pytest.fixture(scope="module")
def blocks():
    return [b.block_l for b in BenchmarkSuite.generate(8, seed=5)]


def result_bytes(results, blocks):
    return json_bytes({"results": [
        prediction_to_dict(prediction, block, "SKL")
        for prediction, block in zip(results, blocks)]})


@pytest.fixture(scope="module")
def golden(blocks):
    with injected(None):
        with Engine(SKL) as engine:
            return result_bytes(engine.predict_many(blocks, MODE),
                                blocks)


class TestCrashRecovery:
    def test_worker_kill_and_exception_recover_byte_identical(
            self, blocks, golden):
        # Small chunks + a short timeout: a killed worker's chunk is
        # declared lost after chunksize * task_timeout seconds, so the
        # test exercises the requeue path without waiting long.
        plan = FaultPlan.from_spec(
            "seed=0; worker_kill@engine.task:2; "
            "predictor_error@engine.task:5")
        with injected(plan):
            with Engine(SKL, n_workers=2, task_timeout=1.5,
                        chunksize=2) as engine:
                results = engine.predict_many(blocks, MODE)
        assert result_bytes(results, blocks) == golden
        assert engine.tasks_retried > 0
        assert engine.pool_respawns >= 1
        assert engine.tasks_failed == 0

    def test_repeated_kills_still_converge(self, blocks, golden):
        # Retried tasks get their fault cleared, so even a plan that
        # kills several first-round tasks converges to golden results.
        plan = FaultPlan.from_spec("seed=0; worker_kill@engine.task:0,3")
        with injected(plan):
            with Engine(SKL, n_workers=2, task_timeout=1.5,
                        chunksize=2) as engine:
                results = engine.predict_many(blocks, MODE)
        assert result_bytes(results, blocks) == golden


class TestTypedFailures:
    def test_timeout_records_typed_error_slot(self, blocks):
        # chunksize=1 so exactly the hung task's slot degrades;
        # max_task_retries=0 so the test does not wait out retries.
        plan = FaultPlan.from_spec("seed=0; timeout@engine.task:2")
        with injected(plan):
            with Engine(SKL, n_workers=2, task_timeout=1.0,
                        max_task_retries=0, chunksize=1) as engine:
                results = engine.predict_many(blocks, MODE,
                                              on_error="record")
        error = results[2]
        assert isinstance(error, PredictorError)
        assert error.kind == "timeout"
        assert error.index == 2
        assert error.to_dict()["error"] == "timeout"
        assert engine.tasks_failed == 1
        assert all(not isinstance(r, PredictorError)
                   for i, r in enumerate(results) if i != 2)

    def test_timeout_raises_engine_task_error_by_default(self, blocks):
        plan = FaultPlan.from_spec("seed=0; timeout@engine.task:1")
        with injected(plan):
            with Engine(SKL, n_workers=2, task_timeout=1.0,
                        max_task_retries=0, chunksize=1) as engine:
                with pytest.raises(EngineTaskError) as exc:
                    engine.predict_many(blocks, MODE)
        assert exc.value.error.kind == "timeout"

    def test_serial_record_path_degrades_one_slot(self, blocks,
                                                  monkeypatch):
        engine = Engine(SKL)
        # The serial path predicts through whichever core the engine
        # resolved (columnar by default), so inject there.
        real = engine.predictor.predict
        def flaky(block, mode):
            if block.raw == blocks[3].raw:
                raise RuntimeError("boom")
            return real(block, mode)
        monkeypatch.setattr(engine.predictor, "predict", flaky)
        results = engine.predict_many(blocks, MODE, on_error="record")
        assert isinstance(results[3], PredictorError)
        assert results[3].kind == "exception"
        assert "boom" in results[3].detail
        assert sum(isinstance(r, PredictorError) for r in results) == 1

    def test_on_error_validation(self, blocks):
        with pytest.raises(ValueError):
            Engine(SKL).predict_many(blocks, MODE, on_error="ignore")
        with pytest.raises(ValueError):
            Engine(SKL, task_timeout=0.0)
        with pytest.raises(ValueError):
            Engine(SKL, max_task_retries=-1)


class TestMeasureRecovery:
    def test_measure_many_survives_worker_kill(self, blocks):
        with injected(None):
            serial = [measure(block, SKL, MODE) for block in blocks]
        plan = FaultPlan.from_spec("seed=0; worker_kill@engine.measure:1")
        with injected(plan):
            measured = measure_many(SKL, blocks, MODE, n_workers=2,
                                    task_timeout=5.0)
        assert measured == serial
