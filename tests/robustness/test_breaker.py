"""The circuit-breaker state machine (driven by an injected clock)."""

import pytest

from repro.robustness import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def make(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("cooldown", 10.0)
    return CircuitBreaker("tool", clock=clock, **kwargs)


def fail_times(breaker, n):
    for _ in range(n):
        breaker.before_call()
        breaker.record_failure()


class TestStateMachine:
    def test_starts_closed_and_admits(self, clock):
        breaker = make(clock)
        assert breaker.state == CLOSED
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_opens_after_consecutive_failures(self, clock):
        breaker = make(clock)
        fail_times(breaker, 3)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as exc:
            breaker.before_call()
        assert exc.value.name == "tool"
        assert 0 < exc.value.retry_after <= 10.0

    def test_success_resets_the_failure_streak(self, clock):
        breaker = make(clock)
        fail_times(breaker, 2)
        breaker.before_call()
        breaker.record_success()
        fail_times(breaker, 2)  # streak restarted: still closed
        assert breaker.state == CLOSED

    def test_cooldown_advances_to_half_open(self, clock):
        breaker = make(clock)
        fail_times(breaker, 3)
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_successful_probe_closes(self, clock):
        breaker = make(clock)
        fail_times(breaker, 3)
        clock.advance(10.0)
        breaker.before_call()  # the probe
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_failed_probe_reopens_and_restarts_cooldown(self, clock):
        breaker = make(clock)
        fail_times(breaker, 3)
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_probe_limit_rejects_concurrent_probes(self, clock):
        breaker = make(clock, probe_limit=1)
        fail_times(breaker, 3)
        clock.advance(10.0)
        breaker.before_call()  # probe slot taken, not yet answered
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_retry_after_counts_down(self, clock):
        breaker = make(clock)
        fail_times(breaker, 3)
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after() == pytest.approx(6.0)

    def test_stats_snapshot(self, clock):
        breaker = make(clock)
        fail_times(breaker, 3)
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        stats = breaker.stats()
        assert stats["state"] == OPEN
        assert stats["failures"] == 3
        assert stats["rejections"] == 1
        assert stats["times_opened"] == 1

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            make(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            make(clock, cooldown=-1.0)


class TestRetryPolicy:
    def test_delays_are_bounded_and_jittered(self):
        import random
        policy = RetryPolicy(base=0.1, cap=2.0,
                             rng=random.Random(42), sleep=lambda _: None)
        for attempt in range(8):
            bound = min(2.0, 0.1 * 2 ** attempt)
            assert 0.0 <= policy.delay(attempt) <= bound

    def test_backoff_honors_retry_after_floor(self):
        import random
        slept = []
        policy = RetryPolicy(base=0.0, cap=2.0,
                             rng=random.Random(0), sleep=slept.append)
        policy.backoff(0, floor=1.5)  # jitter is 0 (base 0): floor wins
        assert slept == [1.5]

    def test_attempts_left(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        assert policy.attempts_left(2)
        assert not policy.attempts_left(3)

    def test_schedule_is_deterministic_with_seeded_rng(self):
        import random
        def schedule(seed):
            slept = []
            policy = RetryPolicy(base=0.1, cap=2.0,
                                 rng=random.Random(seed),
                                 sleep=slept.append)
            for attempt in range(5):
                policy.backoff(attempt)
            return slept
        assert schedule(7) == schedule(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base=-0.1)
