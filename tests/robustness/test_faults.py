"""The deterministic fault-injection harness (REPRO_FAULTS)."""

import pytest

from repro.robustness import (
    FaultPlan,
    FaultSpecError,
    FaultInjected,
    active_plan,
    injected,
    maybe_inject,
)
from repro.robustness import faults as faults_mod


class TestSpecParsing:
    def test_indices_clause(self):
        plan = FaultPlan.from_spec("seed=7; worker_kill@engine.task:2,5")
        assert plan.seed == 7
        clause, = plan.clauses
        assert clause.kind == "worker_kill"
        assert clause.pattern == "engine.task"
        assert clause.indices == (2, 5)

    def test_probability_and_delay_clause(self):
        plan = FaultPlan.from_spec(
            "predictor_error@predictor.*:p=0.25; "
            "slow@service./predict:0:ms=20")
        first, second = plan.clauses
        assert first.rate == 0.25
        assert second.indices == (0,)
        assert second.delay_ms == 20.0

    @pytest.mark.parametrize("spec", [
        "",                                     # no clauses at all
        "explode@engine.task:0",                # unknown kind
        "worker_kill",                          # no site
        "worker_kill@:0",                       # empty site
        "worker_kill@engine.task",              # never fires
        "worker_kill@engine.task:1:p=0.5",      # indices AND p=
        "worker_kill@engine.task:p=2.0",        # p out of range
        "slow@engine.task:0:ms=-1",             # negative delay
        "seed=x; worker_kill@engine.task:0",    # bad seed
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(spec)


class TestDeterminism:
    SPEC = ("seed=11; worker_kill@engine.task:3; "
            "predictor_error@predictor.*:p=0.3; "
            "slow@service.*:p=0.1:ms=5")

    def sequence(self, site, n=50):
        plan = FaultPlan.from_spec(self.SPEC)
        return [(f.kind, f.index) if f else None
                for f in plan.sequence(site, n)]

    def test_same_spec_same_sequence(self):
        # The acceptance property of the harness: two plans parsed from
        # the same spec inject the identical fault sequence.
        for site in ("engine.task", "predictor.uiCA", "service./predict"):
            assert self.sequence(site) == self.sequence(site)

    def test_sites_count_independently(self):
        plan = FaultPlan.from_spec("seed=0; worker_kill@engine.task:1")
        assert plan.check("predictor.uiCA") is None  # index 0 there
        assert plan.check("engine.task") is None     # index 0
        fault = plan.check("engine.task")            # index 1 -> fires
        assert fault is not None and fault.kind == "worker_kill"

    def test_reset_replays_the_schedule(self):
        plan = FaultPlan.from_spec(self.SPEC)
        first = [(f.kind, f.index) if f else None
                 for f in plan.sequence("predictor.uiCA", 30)]
        plan.reset()
        replay = [(f.kind, f.index) if f else None
                  for f in plan.sequence("predictor.uiCA", 30)]
        assert first == replay

    def test_pattern_matching_is_fnmatch(self):
        plan = FaultPlan.from_spec("predictor_error@predictor.*:0")
        assert plan.check("engine.task") is None
        assert plan.check("predictor.llvm-mca-15") is not None

    def test_seed_changes_probability_draws(self):
        spec = "predictor_error@predictor.x:p=0.5"
        a = FaultPlan.from_spec(f"seed=1; {spec}")
        b = FaultPlan.from_spec(f"seed=2; {spec}")
        seq_a = [f is not None for f in a.sequence("predictor.x", 64)]
        seq_b = [f is not None for f in b.sequence("predictor.x", 64)]
        assert seq_a != seq_b  # astronomically unlikely to collide


class TestActivation:
    def test_no_plan_is_a_noop(self):
        with injected(None):
            maybe_inject("predictor.anything")  # must not raise

    def test_injected_scopes_and_restores(self):
        plan = FaultPlan.from_spec("predictor_error@predictor.x:0")
        before = active_plan()
        with injected(plan):
            assert active_plan() is plan
            with pytest.raises(FaultInjected):
                maybe_inject("predictor.x")
            maybe_inject("predictor.x")  # index 1: clean
        assert active_plan() is before

    def test_slow_fault_returns_after_delay(self):
        plan = FaultPlan.from_spec("slow@service.x:0:ms=1")
        with injected(plan):
            maybe_inject("service.x")  # sleeps ~1ms, then succeeds

    def test_env_plan_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS",
                           "seed=3; worker_kill@engine.task:0")
        plan = faults_mod._plan_from_env()
        assert plan is not None and plan.seed == 3

    def test_invalid_env_plan_warns_not_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "not a spec")
        with pytest.warns(UserWarning, match="REPRO_FAULTS"):
            assert faults_mod._plan_from_env() is None
