"""Chaos smoke: core paths stay byte-deterministic under active faults.

These tests run twice in CI: once in the regular suite (with the
default plan below) and once in the dedicated chaos job, which sets
``REPRO_FAULTS`` so the *ambient environment* supplies the plan — the
tests pick up whatever plan is active and still demand fault-free
outputs, because every injected fault here is of a recoverable kind.
"""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.engine.engine import Engine
from repro.robustness import FaultPlan, active_plan, injected
from repro.service import PredictionService, ServiceClient
from repro.service.serialize import json_bytes, prediction_to_dict
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")
MODE = ThroughputMode.LOOP

#: The plan used when the environment does not provide one: a worker
#: kill, a predictor blip, and some service latency — all recoverable.
DEFAULT_PLAN = ("seed=0; worker_kill@engine.task:1; "
                "predictor_error@predictor.*:0; "
                "slow@service.*:p=0.2:ms=2")

pytestmark = pytest.mark.chaos


def chaos_plan():
    """The ambient plan (CI chaos job) or the default one, rewound."""
    plan = active_plan()
    if plan is None:
        plan = FaultPlan.from_spec(DEFAULT_PLAN)
    plan.reset()
    return plan


@pytest.fixture(scope="module")
def blocks():
    return [b.block_l for b in BenchmarkSuite.generate(6, seed=17)]


@pytest.fixture(scope="module")
def golden(blocks):
    with injected(None):
        with Engine(SKL) as engine:
            predictions = engine.predict_many(blocks, MODE)
    return json_bytes({"results": [
        prediction_to_dict(prediction, block, "SKL")
        for prediction, block in zip(predictions, blocks)]})


def test_parallel_engine_recovers_under_faults(blocks, golden):
    with injected(chaos_plan()):
        with Engine(SKL, n_workers=2, task_timeout=1.5,
                    chunksize=2) as engine:
            results = engine.predict_many(blocks, MODE)
    assert json_bytes({"results": [
        prediction_to_dict(prediction, block, "SKL")
        for prediction, block in zip(results, blocks)]}) == golden


def test_service_bulk_identical_under_faults(blocks):
    body = {"blocks": [{"hex": block.raw.hex()} for block in blocks],
            "mode": MODE.value}
    with injected(None):
        with PredictionService(uarch="SKL", port=0,
                               max_wait_ms=0.0) as service:
            clean = ServiceClient(port=service.port).request_raw(
                "/predict/bulk", body)
    with injected(chaos_plan()):
        with PredictionService(uarch="SKL", port=0,
                               max_wait_ms=0.0) as service:
            chaotic = ServiceClient(port=service.port).request_raw(
                "/predict/bulk", body)
    assert chaotic == clean


def test_guarded_compare_recovers_under_faults():
    # A predictor blip is retried inside the request; the response is
    # complete (nothing skipped) and identical to the clean one.
    def compare_once():
        with PredictionService(uarch="SKL", port=0,
                               max_wait_ms=0.0) as service:
            return ServiceClient(port=service.port).request_raw(
                "/compare", {"hex": "4801d875f4",
                             "predictors": ["Facile", "uiCA"]})
    with injected(None):
        clean = compare_once()
    with injected(chaos_plan()):
        chaotic = compare_once()
    assert chaotic == clean
