"""Metrics under deterministic fault injection.

A seeded :class:`FaultPlan` (the same object ``REPRO_FAULTS`` parses
into) injects an exactly-known fault sequence; the observability
counters must match that plan *exactly* — one retry backoff per
absorbed fault, one breaker-open per trip, one engine task retry per
killed worker.  Anything else means the counters double-count or miss
recovery paths.
"""

import random

import pytest

from repro.core.components import ThroughputMode
from repro.baselines.base import GuardedPredictor
from repro.bhive.suite import BenchmarkSuite
from repro.engine.engine import Engine
from repro.obs import metrics
from repro.robustness import FaultPlan, injected
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.errors import FaultInjected
from repro.robustness.retry import RetryPolicy
from repro.uarch import uarch_by_name

MODE = ThroughputMode.LOOP
SKL = uarch_by_name("SKL")


class _StubPredictor:
    """A minimal inner predictor: always succeeds, never sleeps."""

    def __init__(self, name="stub"):
        self.name = name
        self.cfg = None
        self.db = None
        self.native_mode = MODE

    def prepare(self):
        pass

    def predict(self, block, mode):
        return 1.0

    def databases(self):
        return []


def _guarded(max_attempts=3, failure_threshold=3):
    """A guarded stub with no real sleeping and pinned jitter."""
    return GuardedPredictor(
        _StubPredictor(),
        retry=RetryPolicy(max_attempts=max_attempts, base=0.0, cap=0.0,
                          rng=random.Random(0), sleep=lambda _s: None),
        breaker=CircuitBreaker("stub",
                               failure_threshold=failure_threshold))


def _retries():
    return metrics.counter_value("facile_retries_total")


def _breaker_opens(name):
    return metrics.counter_value("facile_breaker_open_total",
                                 breaker=name)


class TestRetryCounter:
    def test_one_backoff_per_absorbed_fault(self):
        # Faults at site-call indices 0 and 2: call #1 draws index 0
        # (fault -> one retry -> index 1, clean), call #2 draws index 2
        # (fault -> one retry -> index 3, clean).  Exactly two backoffs.
        plan = FaultPlan.from_spec(
            "seed=0; predictor_error@predictor.stub:0,2")
        guarded = _guarded()
        before = _retries()
        with injected(plan):
            assert guarded.predict(None, MODE) == 1.0
            assert guarded.predict(None, MODE) == 1.0
        assert _retries() - before == 2
        # Fully absorbed: the breaker never moved.
        assert guarded.breaker.times_opened == 0

    def test_no_faults_no_retries(self):
        guarded = _guarded()
        before = _retries()
        with injected(None):
            guarded.predict(None, MODE)
        assert _retries() == before


class TestBreakerCounter:
    def test_one_trip_per_threshold_crossing(self):
        # Retrying disabled (max_attempts=1): three consecutive failed
        # calls trip a threshold-3 breaker exactly once, and no backoff
        # ever runs.
        plan = FaultPlan.from_spec(
            "seed=0; predictor_error@predictor.stub:0,1,2")
        guarded = _guarded(max_attempts=1, failure_threshold=3)
        retries_before = _retries()
        opens_before = _breaker_opens("stub")
        with injected(plan):
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    guarded.predict(None, MODE)
        assert _breaker_opens("stub") - opens_before == 1
        assert _retries() == retries_before
        assert guarded.breaker.times_opened == 1

    def test_counter_matches_times_opened_exactly(self):
        breaker = CircuitBreaker("probe", failure_threshold=1,
                                 cooldown=0.0)
        before = _breaker_opens("probe")
        breaker.record_failure()          # closed -> open
        assert breaker.state == "half_open"  # cooldown 0: probe allowed
        breaker.before_call()
        breaker.record_failure()          # failed probe -> open again
        assert _breaker_opens("probe") - before == 2
        assert breaker.times_opened == 2


class TestEngineCounters:
    def test_worker_kill_moves_the_task_retry_counter(self):
        blocks = [b.block_l for b in BenchmarkSuite.generate(4, seed=17)]
        plan = FaultPlan.from_spec("seed=0; worker_kill@engine.task:1")
        before = metrics.counter_value(
            "facile_engine_tasks_retried_total")
        respawns_before = metrics.counter_value(
            "facile_engine_pool_respawns_total")
        with injected(plan):
            with Engine(SKL, n_workers=2, task_timeout=5.0,
                        chunksize=1) as engine:
                engine.predict_many(blocks, MODE)
                engine_retried = engine.tasks_retried
                engine_respawns = engine.pool_respawns
        # The registry moved in lockstep with the engine's own
        # telemetry: exactly one retried task for the one killed
        # worker, and one respawn count per pool teardown.
        assert engine_retried == 1
        assert metrics.counter_value(
            "facile_engine_tasks_retried_total") - before == 1
        assert metrics.counter_value(
            "facile_engine_pool_respawns_total") - respawns_before \
            == engine_respawns
