"""End-to-end invariants tying the whole system together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bhive.categories import CATEGORIES
from repro.bhive.generator import BlockGenerator
from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile
from repro.isa.block import BasicBlock
from repro.sim.measure import measure
from repro.uarch import ALL_UARCHS, uarch_by_name
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")
U = ThroughputMode.UNROLLED
L = ThroughputMode.LOOP


@st.composite
def generated_blocks(draw):
    seed = draw(st.integers(0, 10_000))
    category = draw(st.sampled_from(CATEGORIES))
    generator = BlockGenerator(seed)
    block_u, block_l = generator.block_pair(category)
    return block_u, block_l


class TestFacileOracleAgreement:
    @given(generated_blocks())
    @settings(max_examples=25, deadline=None)
    def test_facile_error_bounded(self, blocks):
        block_u, block_l = blocks
        model = Facile(SKL)
        for block, mode in ((block_u, U), (block_l, L)):
            measured = measure(block, SKL, mode)
            predicted = model.predict(block, mode).cycles
            assert predicted > 0
            # Individual-block error is bounded; suite MAPE is ~1-3%.
            assert abs(measured - predicted) / measured < 0.60

    @given(generated_blocks())
    @settings(max_examples=25, deadline=None)
    def test_facile_is_almost_always_optimistic(self, blocks):
        block_u, block_l = blocks
        model = Facile(SKL)
        for block, mode in ((block_u, U), (block_l, L)):
            measured = measure(block, SKL, mode)
            predicted = model.predict(block, mode).cycles
            # The documented decode/predecode-coupling corner allows a
            # small pessimistic margin; anything more is a bug.
            assert predicted <= measured * 1.12


class TestCrossMode:
    def test_loop_not_slower_for_front_end_bound_blocks(self):
        # Front-end-stressed blocks benefit from the DSB/LSD in loop mode.
        block_l = BasicBlock.from_asm(
            "add cx, 1000\nadd dx, 2000\nnop\nnop\njne -15")
        block_u = block_l.without_final_branch()
        assert measure(block_l, SKL, L) <= measure(block_u, SKL, U) + 0.01


class TestCrossUarch:
    @pytest.mark.parametrize("uarch", [u.abbrev for u in ALL_UARCHS])
    def test_full_stack_runs_everywhere(self, uarch):
        cfg = uarch_by_name(uarch)
        block = BasicBlock.from_asm(
            "mov rax, qword ptr [rsi]\naddps xmm1, xmm2\n"
            "add rbx, rax\ncmp rbx, rcx\njne -17")
        model = Facile(cfg)
        for mode in (U, L):
            prediction = model.predict(block, mode)
            measured = measure(block, cfg, mode)
            assert prediction.cycles > 0
            assert measured > 0
            assert prediction.bottlenecks

    def test_newer_uarchs_faster_on_issue_bound_loop(self):
        # Issue-bound loop of eliminated moves: RKL (5-wide) beats SKL
        # (4-wide).
        block = BasicBlock.from_asm(
            "\n".join(["movaps xmm1, xmm2"] * 12) + "\njmp -38")
        skl = measure(block, SKL, L)
        rkl = measure(block, uarch_by_name("RKL"), L)
        assert rkl < skl


class TestInterpretability:
    def test_ports_bottleneck_reports_contenders(self):
        block = BasicBlock.from_asm(
            "imul rax, rbx\nimul rcx, rdx\nimul rsi, rdi\nadd r8, r9")
        prediction = Facile(SKL).predict_unrolled(block)
        assert prediction.bottlenecks[0] is Component.PORTS
        assert set(prediction.critical_instruction_indices) >= {0, 1, 2}

    def test_precedence_bottleneck_reports_chain(self):
        block = BasicBlock.from_asm(
            "imul rax, rbx\nadd rax, rcx\nmov r8, 1\nmov r9, 2")
        prediction = Facile(SKL).predict_unrolled(block)
        assert prediction.bottlenecks[0] is Component.PRECEDENCE
        assert prediction.critical_instruction_indices == [0, 1]
