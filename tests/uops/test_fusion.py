"""Macro-fusion rule tests."""

import pytest

from repro.isa.assembler import assemble_line
from repro.uarch import uarch_by_name
from repro.uops.fusion import can_macro_fuse


@pytest.fixture(scope="module")
def skl():
    return uarch_by_name("SKL")


def fuses(first: str, second: str, cfg) -> bool:
    return can_macro_fuse(assemble_line(first), assemble_line(second), cfg)


class TestFusionPairs:
    def test_test_fuses_with_every_jcc(self, skl):
        for cond in ("e", "ne", "b", "s", "o", "g"):
            assert fuses("test rax, rax", f"j{cond} -5", skl)

    def test_and_is_test_class(self, skl):
        assert fuses("and rax, rbx", "js -5", skl)

    def test_cmp_fuses_with_compare_conditions(self, skl):
        assert fuses("cmp rax, rbx", "jne -5", skl)
        assert fuses("cmp rax, rbx", "jb -5", skl)

    def test_cmp_does_not_fuse_with_sign_conditions(self, skl):
        assert not fuses("cmp rax, rbx", "js -5", skl)

    def test_inc_dec_exclude_carry_conditions(self, skl):
        assert fuses("dec rcx", "jne -5", skl)
        assert not fuses("dec rcx", "jb -5", skl)

    def test_memory_operands_block_fusion(self, skl):
        assert not fuses("cmp qword ptr [rsi], rax", "jne -5", skl)

    def test_non_flag_writers_never_fuse(self, skl):
        assert not fuses("mov rax, rbx", "jne -5", skl)

    def test_second_must_be_conditional(self, skl):
        assert not fuses("cmp rax, rbx", "jmp -5", skl)
