"""Block-level analysis (macro-op construction) tests."""

import pytest

from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.blockinfo import analyze_block, macro_ops


@pytest.fixture(scope="module")
def skl():
    return uarch_by_name("SKL")


class TestFusionPairing:
    def test_cmp_jne_pair_collapses(self, skl):
        block = BasicBlock.from_asm("add rax, rbx\ncmp rax, rcx\njne -9")
        analyzed = analyze_block(block, skl)
        assert analyzed[1].fused_with_next
        assert analyzed[2].fused_into_prev
        ops = macro_ops(analyzed, skl)
        assert len(ops) == 2
        fused = ops[-1]
        assert fused.is_fused_pair
        assert fused.info.fused_uops == 1
        assert fused.info.port_sets == (skl.ports_for("fused_branch"),)

    def test_no_double_fusion(self, skl):
        # cmp cmp jne: only the second cmp fuses.
        block = BasicBlock.from_asm("cmp rax, rbx\ncmp rcx, rdx\njne -9")
        ops = macro_ops(analyze_block(block, skl), skl)
        assert len(ops) == 2
        assert not ops[0].is_fused_pair
        assert ops[1].is_fused_pair

    def test_unfused_jcc_stays_separate(self, skl):
        block = BasicBlock.from_asm("mov rax, rbx\njne -6")
        ops = macro_ops(analyze_block(block, skl), skl)
        assert len(ops) == 2

    def test_is_macro_fusible_marks_potential_firsts(self, skl):
        block = BasicBlock.from_asm("cmp rax, rbx\nmov rcx, rdx")
        ops = macro_ops(analyze_block(block, skl), skl)
        assert ops[0].is_macro_fusible   # cmp could fuse
        assert not ops[1].is_macro_fusible

    def test_fused_pair_length_covers_both(self, skl):
        block = BasicBlock.from_asm("cmp rax, rbx\njne -7")
        ops = macro_ops(analyze_block(block, skl), skl)
        assert ops[0].length == block.num_bytes

    def test_branch_flag(self, skl):
        block = BasicBlock.from_asm("cmp rax, rbx\njne -7")
        ops = macro_ops(analyze_block(block, skl), skl)
        assert ops[0].is_branch
