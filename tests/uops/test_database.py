"""Tests for the uops.info-substitute database."""

import pytest

from repro.isa.assembler import assemble_line
from repro.uarch import uarch_by_name
from repro.uops.database import UnsupportedInstruction, UopsDatabase


@pytest.fixture(scope="module")
def skl():
    return UopsDatabase(uarch_by_name("SKL"))


@pytest.fixture(scope="module")
def snb():
    return UopsDatabase(uarch_by_name("SNB"))


@pytest.fixture(scope="module")
def icl():
    return UopsDatabase(uarch_by_name("ICL"))


class TestBasicCharacterization:
    def test_simple_alu(self, skl):
        info = skl.info(assemble_line("add rax, rbx"))
        assert info.fused_uops == 1
        assert info.issued_uops == 1
        assert info.port_sets == (frozenset({0, 1, 5, 6}),)
        assert info.latency == 1
        assert not info.requires_complex_decoder

    def test_load_op_is_microfused(self, skl):
        info = skl.info(assemble_line("add rax, qword ptr [rsi]"))
        assert info.fused_uops == 1
        assert info.dispatched_uops == 2
        assert info.load_latency == 4

    def test_rmw_is_two_fused_four_dispatched(self, skl):
        info = skl.info(assemble_line("add qword ptr [rsi], rax"))
        assert info.fused_uops == 2
        assert info.dispatched_uops == 4
        assert info.requires_complex_decoder

    def test_store_has_agu_and_data_uops(self, skl):
        info = skl.info(assemble_line("mov qword ptr [rsi], rax"))
        assert info.fused_uops == 1
        assert info.dispatched_uops == 2

    def test_nop_dispatches_nothing(self, skl):
        info = skl.info(assemble_line("nop"))
        assert info.is_nop
        assert info.fused_uops == 1
        assert info.dispatched_uops == 0

    def test_div_is_complex(self, skl):
        info = skl.info(assemble_line("div rcx"))
        assert info.fused_uops == 4
        assert info.requires_complex_decoder
        assert info.n_available_simple_decoders == 1


class TestEliminationRules:
    def test_mov_elim_on_skl(self, skl):
        info = skl.info(assemble_line("mov rax, rbx"))
        assert info.eliminated
        assert info.dispatched_uops == 0

    def test_no_mov_elim_on_snb(self, snb):
        info = snb.info(assemble_line("mov rax, rbx"))
        assert not info.eliminated
        assert info.dispatched_uops == 1

    def test_icl_gpr_elim_disabled_but_vec_enabled(self, icl):
        assert not icl.info(assemble_line("mov rax, rbx")).eliminated
        assert icl.info(assemble_line("movaps xmm1, xmm2")).eliminated

    def test_zero_idiom_always_eliminated(self, snb):
        info = snb.info(assemble_line("xor rax, rax"))
        assert info.eliminated
        assert info.latency == 0

    def test_non_idiom_xor_not_eliminated(self, skl):
        assert not skl.info(assemble_line("xor rax, rbx")).eliminated


class TestPerUarchDeltas:
    def test_cmov_uop_count(self, snb, skl):
        instr = assemble_line("cmovne rax, rbx")
        assert snb.info(instr).fused_uops == 2   # pre-Broadwell
        assert skl.info(instr).fused_uops == 1

    def test_fp_add_latency(self, snb, skl):
        instr = assemble_line("addps xmm1, xmm2")
        assert snb.info(instr).latency == 3
        assert skl.info(instr).latency == 4

    def test_fp_add_ports(self, snb, skl):
        instr = assemble_line("addps xmm1, xmm2")
        assert snb.info(instr).port_sets == (frozenset({1}),)
        assert skl.info(instr).port_sets == (frozenset({0, 1}),)

    def test_div_latency_improves_on_icl(self, skl, icl):
        instr = assemble_line("div rcx")
        assert skl.info(instr).latency == 36
        assert icl.info(instr).latency == 18

    def test_unlamination_on_snb_only(self, snb, skl):
        instr = assemble_line("add rax, qword ptr [rsi+rbx*8]")
        assert snb.info(instr).issued_uops == 2   # unlaminated
        assert skl.info(instr).issued_uops == 1

    def test_indexed_store_agu_restriction(self, skl):
        plain = skl.info(assemble_line("mov qword ptr [rsi], rax"))
        indexed = skl.info(
            assemble_line("mov qword ptr [rsi+rbx*8], rax"))
        assert frozenset({2, 3, 7}) in plain.port_sets
        assert frozenset({2, 3}) in indexed.port_sets


class TestFeatureGating:
    def test_fma_rejected_on_snb(self, snb):
        with pytest.raises(UnsupportedInstruction):
            snb.info(assemble_line("vfmadd231ps ymm0, ymm1, ymm2"))

    def test_avx1_allowed_on_snb(self, snb):
        assert snb.info(assemble_line("vaddps ymm0, ymm1, ymm2"))


class TestDependenceLatencies:
    def test_alu_edges(self, skl):
        instr = assemble_line("add rax, rbx")
        edges = skl.dep_latencies(instr)
        # Sources rax, rbx; destinations rax, flags.
        assert len(edges) == 4
        assert all(lat == 1 for _s, _d, lat in edges)

    def test_load_address_pays_load_latency(self, skl):
        instr = assemble_line("add rax, qword ptr [rsi]")
        by_pair = {(s.name, d.name): lat
                   for s, d, lat in skl.dep_latencies(instr)}
        assert by_pair[("rsi", "rax")] == 5  # 4 (load) + 1 (alu)
        assert by_pair[("rax", "rax")] == 1

    def test_eliminated_move_has_zero_latency(self, skl):
        edges = skl.dep_latencies(assemble_line("mov rax, rbx"))
        assert all(lat == 0 for _s, _d, lat in edges)

    def test_lea_latency_depends_on_components(self, skl):
        simple = assemble_line("lea rax, [rbx+8]")
        slow = assemble_line("lea rax, [rbx+rcx*4+8]")
        assert skl.info(simple).latency == 1
        assert skl.info(slow).latency == 3

    def test_caching_returns_same_object(self, skl):
        a = skl.info(assemble_line("add rax, rbx"))
        b = skl.info(assemble_line("add rcx, rdx"))
        assert a is b  # same template + shape → cached record
