"""Client-side retry behaviour against a scripted fake server.

The real service is not needed here: a tiny stdlib HTTP server scripted
to answer a fixed status sequence pins down exactly when the client
retries (429 and connection errors), when it gives up (``max_attempts``)
and when it must not retry at all (any other error status).
"""

import http.server
import json
import random
import socket
import threading
import urllib.error

import pytest

from repro.robustness import RetryPolicy
from repro.service import ServiceClient, ServiceError


class ScriptedServer:
    """Answers the scripted (status, headers) list, then 200s forever."""

    def __init__(self, script):
        self.script = list(script)
        self.hits = 0
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                self.rfile.read(
                    int(self.headers.get("Content-Length") or 0))
                index = outer.hits
                outer.hits += 1
                status, headers = (outer.script[index]
                                   if index < len(outer.script)
                                   else (200, {}))
                body = json.dumps({"ok": True} if status == 200
                                  else {"error": f"scripted {status}"})
                body = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        self.server = http.server.ThreadingHTTPServer(
            ("127.0.0.1", 0), Handler)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture()
def scripted():
    servers = []

    def start(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


def recording_policy(slept, max_attempts=3):
    return RetryPolicy(max_attempts=max_attempts, base=0.0, cap=2.0,
                       rng=random.Random(0), sleep=slept.append)


class TestShedRetries:
    def test_429_then_200_succeeds_after_backoff(self, scripted):
        server = scripted([(429, {"Retry-After": "2"})])
        slept = []
        client = ServiceClient(port=server.port,
                               retry_policy=recording_policy(slept))
        assert client.request("/predict", {"hex": "90"}) == {"ok": True}
        assert server.hits == 2
        # base=0.0 makes the jitter zero, so the slept delay is exactly
        # the Retry-After floor the server asked for.
        assert slept == [2.0]

    def test_persistent_429_gives_up_after_max_attempts(self, scripted):
        server = scripted([(429, {"Retry-After": "1"})] * 10)
        slept = []
        client = ServiceClient(port=server.port,
                               retry_policy=recording_policy(slept))
        with pytest.raises(ServiceError) as exc:
            client.request("/predict", {"hex": "90"})
        assert exc.value.status == 429
        assert exc.value.retry_after == 1.0
        assert server.hits == 3  # max_attempts, not one more
        assert len(slept) == 2   # a sleep between tries, not after

    def test_non_429_errors_are_never_retried(self, scripted):
        for status in (400, 404, 500, 503):
            server = scripted([(status, {})] * 5)
            slept = []
            client = ServiceClient(port=server.port,
                                   retry_policy=recording_policy(slept))
            with pytest.raises(ServiceError) as exc:
                client.request("/predict", {"hex": "90"})
            assert exc.value.status == status
            assert server.hits == 1
            assert slept == []

    def test_max_attempts_one_disables_retries(self, scripted):
        server = scripted([(429, {"Retry-After": "1"})])
        client = ServiceClient(port=server.port, max_attempts=1)
        with pytest.raises(ServiceError):
            client.request("/predict", {"hex": "90"})
        assert server.hits == 1


class TestConnectionRetries:
    @pytest.fixture()
    def dead_port(self):
        # Bind-then-close: nothing listens there for the test's lifetime.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_connection_refused_retries_then_raises(self, dead_port):
        # base > 0 so each inter-attempt wait is an observable sleep
        # (zero-duration backoffs skip the sleep call entirely).
        slept = []
        policy = RetryPolicy(max_attempts=3, base=0.001, cap=0.002,
                             rng=random.Random(1), sleep=slept.append)
        client = ServiceClient(port=dead_port, retry_policy=policy)
        with pytest.raises(urllib.error.URLError):
            client.request("/health")
        assert len(slept) == 2  # three connection attempts, two waits

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceClient(max_attempts=0)
