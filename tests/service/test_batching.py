"""MicroBatcher and bounded-LRU cache property tests.

The batching queue must be invisible in results: whatever the window
sizes and however many threads submit, the predictions are exactly the
serial ``Engine.predict_many`` output.
"""

import threading

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.engine import AnalysisCache, Engine, MicroBatcher
from repro.isa.block import BasicBlock
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

SKL = uarch_by_name("SKL")


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite.generate(16, seed=123)


class TestMicroBatcher:
    def test_bulk_matches_serial_engine(self, suite):
        blocks = [b.block_l for b in suite]
        serial = Engine(SKL).predict_many(blocks, ThroughputMode.LOOP)
        with MicroBatcher(Engine(SKL), max_batch=4,
                          max_wait_ms=1.0) as batcher:
            batched = batcher.predict_many(blocks, ThroughputMode.LOOP)
        assert batched == serial

    def test_concurrent_submitters_match_serial(self, suite):
        blocks = [b.block_u for b in suite]
        serial = Engine(SKL).predict_many(blocks,
                                          ThroughputMode.UNROLLED)
        with MicroBatcher(Engine(SKL), max_batch=8,
                          max_wait_ms=2.0) as batcher:
            results = [None] * len(blocks)

            def submit(index):
                results[index] = batcher.predict(
                    blocks[index], ThroughputMode.UNROLLED)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(len(blocks))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert results == serial

    def test_mixed_modes_in_one_window(self, suite):
        # Both modes submitted back-to-back: the dispatcher groups by
        # mode inside a window, so results must match per-mode serial
        # runs even when a window carries both.
        blocks = [b.block_l for b in suite]
        serial = {mode: Engine(SKL).predict_many(blocks, mode)
                  for mode in (ThroughputMode.UNROLLED,
                               ThroughputMode.LOOP)}
        with MicroBatcher(Engine(SKL), max_batch=64,
                          max_wait_ms=20.0) as batcher:
            futures = [(mode, index,
                        batcher.submit(blocks[index], mode))
                       for index in range(len(blocks))
                       for mode in (ThroughputMode.UNROLLED,
                                    ThroughputMode.LOOP)]
            for mode, index, future in futures:
                assert future.result(timeout=30) == serial[mode][index]

    def test_stats_account_for_all_requests(self, suite):
        blocks = [b.block_l for b in suite]
        with MicroBatcher(Engine(SKL), max_batch=4,
                          max_wait_ms=0.0) as batcher:
            batcher.predict_many(blocks, ThroughputMode.LOOP)
            stats = batcher.stats()
        assert stats["requests"] == len(blocks)
        assert batcher.batched_requests == len(blocks)
        assert 1 <= stats["max_batch_seen"] <= 4
        assert stats["batches"] >= len(blocks) / 4
        assert stats["mean_batch_size"] > 0

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(Engine(SKL))
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(BasicBlock.from_asm("nop"),
                           ThroughputMode.LOOP)

    def test_invalid_window_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(Engine(SKL), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(Engine(SKL), max_wait_ms=-1.0)


class TestCacheLRUBound:
    def blocks(self, n):
        return [BasicBlock.from_asm(f"add rax, {17 + i}")
                for i in range(n)]

    def test_eviction_counts_and_size_bound(self):
        cache = AnalysisCache(UopsDatabase(SKL), max_blocks=4)
        for block in self.blocks(10):
            cache.analysis(block)
        assert len(cache) == 4
        assert cache.evictions == 6
        assert cache.stats()["evictions"] == 6
        assert cache.stats()["size"] == 4

    def test_hit_refreshes_recency(self):
        cache = AnalysisCache(UopsDatabase(SKL), max_blocks=2)
        first, second, third = self.blocks(3)
        cache.analysis(first)
        cache.analysis(second)
        cache.analysis(first)   # refresh: `second` is now the LRU entry
        cache.analysis(third)   # evicts `second`, not `first`
        hits = cache.hits
        cache.analysis(first)
        assert cache.hits == hits + 1  # still resident
        misses = cache.misses
        cache.analysis(second)
        assert cache.misses == misses + 1  # was evicted

    def test_stats_payload_shape(self):
        cache = AnalysisCache(UopsDatabase(SKL), max_blocks=8)
        block, = self.blocks(1)
        cache.analysis(block)
        cache.analysis(block)
        stats = cache.stats()
        assert stats == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1,
            "max_blocks": 8, "hit_rate": 0.5, "disk_hits": 0,
        }

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AnalysisCache(UopsDatabase(SKL), max_blocks=0)
