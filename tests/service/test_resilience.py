"""Service robustness: structured errors, deadlines, shedding, breakers.

Regression surface for the fault-tolerant service layer: every error
leaves the server as a small JSON object (never a stack trace), expired
deadlines shed as 504, a full admission queue sheds as 429 with a
``Retry-After`` hint, and an open predictor breaker degrades ``/health``
and turns ``/compare`` entries into typed skips instead of failures.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.robustness import FaultPlan, injected
from repro.service import PredictionService, ServiceClient, ServiceError


def raw_error(port, path, data):
    """POST raw bytes; return (status, headers, decoded body) of the error."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"}, method="POST")
    with pytest.raises(urllib.error.HTTPError) as httperr:
        urllib.request.urlopen(request, timeout=10)
    exc = httperr.value
    return exc.code, exc.headers, exc.read().decode("utf-8")


@pytest.fixture(scope="module")
def service():
    with PredictionService(uarch="SKL", port=0, max_batch=16,
                           max_wait_ms=2.0) as running:
        yield running


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port, max_attempts=1)


class TestStructuredErrors:
    def test_400_body_is_json_with_no_internals(self, service):
        status, _, body = raw_error(
            service.port, "/predict", json.dumps({"hex": "zz"}).encode())
        assert status == 400
        payload = json.loads(body)  # structured, parseable
        assert set(payload) == {"error"}
        assert "Traceback" not in body
        assert "repro/" not in body  # no source paths leak

    def test_unparseable_body_is_structured_400(self, service):
        status, _, body = raw_error(service.port, "/predict", b"{not json")
        assert status == 400
        assert set(json.loads(body)) == {"error"}
        assert "Traceback" not in body

    def test_internal_error_is_opaque_500(self, service):
        # An injected fault inside the handler is the stand-in for any
        # unexpected exception: the client sees only "internal error".
        plan = FaultPlan.from_spec(
            "seed=0; predictor_error@service./predict:p=1.0")
        with injected(plan):
            status, _, body = raw_error(
                service.port, "/predict",
                json.dumps({"hex": "4801d8"}).encode())
        assert status == 500
        assert json.loads(body) == {"error": "internal error"}
        assert "Traceback" not in body
        assert "FaultInjected" not in body

    def test_timeout_ms_is_validated(self, client):
        for bad in (-5, 0, "soon", [1]):
            with pytest.raises(ServiceError) as exc:
                client.request("/predict", {"hex": "4801d8",
                                            "timeout_ms": bad})
            assert exc.value.status == 400
            assert "timeout_ms" in exc.value.message


class TestDeadlines:
    def test_expired_deadline_sheds_as_504(self, client):
        # A deadline this tight always expires before dispatch; the
        # request is dropped without doing the prediction work.
        with pytest.raises(ServiceError) as exc:
            client.request("/predict", {"hex": "4801d8",
                                        "timeout_ms": 0.0001})
        assert exc.value.status == 504

    def test_generous_deadline_succeeds(self, client):
        result = client.request("/predict", {"hex": "4801d8",
                                             "timeout_ms": 60000})
        assert result["cycles"] > 0

    def test_deadline_drops_counted_in_stats(self, client):
        before = client.stats()["uarchs"]["SKL"]["batcher"]
        with pytest.raises(ServiceError):
            client.request("/predict", {"hex": "4801d8",
                                        "timeout_ms": 0.0001})
        after = client.stats()["uarchs"]["SKL"]["batcher"]
        assert after["deadline_drops"] == before["deadline_drops"] + 1


class TestAdmissionControl:
    def test_overfull_bulk_sheds_as_429_with_retry_after(self):
        # Admission is atomic: a bulk that can never fit the queue is
        # rejected as a unit, with a Retry-After hint for the client.
        with PredictionService(uarch="SKL", port=0, max_queue=2,
                               max_wait_ms=2.0) as tiny:
            client = ServiceClient(port=tiny.port, max_attempts=1)
            with pytest.raises(ServiceError) as exc:
                client.predict_bulk(["90"] * 8)
            assert exc.value.status == 429
            assert exc.value.retry_after is not None
            assert exc.value.retry_after >= 1
            # The shed counter is per *block*, so the whole rejected
            # bulk shows up — that is what capacity planning needs.
            assert client.stats()["uarchs"]["SKL"]["batcher"]["shed"] == 8
            assert client.health()["shed_total"] == 8

    def test_retry_after_is_also_a_header(self):
        with PredictionService(uarch="SKL", port=0, max_queue=2,
                               max_wait_ms=2.0) as tiny:
            body = json.dumps(
                {"blocks": [{"hex": "90"}] * 8}).encode()
            status, headers, _ = raw_error(tiny.port, "/predict/bulk",
                                           body)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1


class TestBreakerDegradation:
    @pytest.fixture()
    def fragile(self):
        # One failure opens the breaker; a long cooldown keeps it open
        # for the duration of the test.
        with PredictionService(uarch="SKL", port=0, breaker_failures=1,
                               breaker_cooldown=300.0) as running:
            yield running

    def test_open_breaker_becomes_typed_skip_and_degrades_health(
            self, fragile):
        client = ServiceClient(port=fragile.port)
        plan = FaultPlan.from_spec("seed=1; "
                                   "predictor_error@predictor.uiCA:p=1.0")
        with injected(plan):
            first = client.compare("4801d8", predictors=["Facile",
                                                         "uiCA"])
        # Retries were exhausted against a persistent fault: uiCA is a
        # typed skip, Facile still answered.
        assert "Facile" in first["predictions"]
        assert "uiCA" not in first["predictions"]
        assert first["skipped"]["uiCA"]["reason"] == "error"

        # The failure tripped the breaker: later calls are rejected
        # up-front (no fault plan active any more) as circuit_open.
        second = client.compare("4801d8", predictors=["Facile", "uiCA"])
        assert second["skipped"]["uiCA"]["reason"] == "circuit_open"
        assert second["skipped"]["uiCA"]["retry_after_sec"] > 0

        health = client.health()
        assert health["status"] == "degraded"
        assert health["open_breakers"] == {"SKL": ["uiCA"]}
        assert any("breaker" in reason
                   for reason in health["degraded_reasons"])

        breakers = client.stats()["uarchs"]["SKL"]["breakers"]
        assert breakers["uiCA"]["state"] == "open"
        assert breakers["uiCA"]["times_opened"] == 1

    def test_healthy_service_reports_ok(self, service, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["open_breakers"] == {}
        assert health["degraded_reasons"] == []
