"""Regression: /stats persistent counters under --no-shard.

The sharded path flushes each shard's persistent analysis cache after
every worker batch, so its ``/stats`` ``cache.persistent`` counters are
always live.  The in-process ``--no-shard`` engine only synced at
``close()`` and ``warm()``, so a running no-shard service with a
persistent cache reported stale (all-zero) ``stores`` for its whole
lifetime — and ``disk_hits`` after restart showed the same lag.  The
``_PersistentSyncEngine`` batcher backend gives the no-shard path the
sharded path's per-batch flush; these tests pin the live-read behavior
on both sides of a restart.
"""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.service import PredictionService, ServiceClient


@pytest.fixture(scope="module")
def hexes():
    suite = BenchmarkSuite.generate(6, seed=23)
    return [b.block_l.raw.hex() for b in suite]


def test_noshard_persistent_counters_are_live(hexes, tmp_path):
    cache_dir = str(tmp_path / "cache")

    with PredictionService(uarch="SKL", port=0, shard=False,
                           cache_dir=cache_dir) as service:
        client = ServiceClient(port=service.port)
        first = client.predict_bulk(hexes, mode="loop")
        # Read /stats while the service is running: before the fix the
        # persistent counters were only synced at close(), so a live
        # read saw stores == 0 here.
        cache = client.stats()["uarchs"]["SKL"]["cache"]
        persistent = cache["persistent"]
        assert persistent["loaded"] == 0  # cold start
        assert persistent["stores"] == len(hexes)
        assert cache["misses"] >= len(hexes)

    with PredictionService(uarch="SKL", port=0, shard=False,
                           cache_dir=cache_dir) as service:
        client = ServiceClient(port=service.port)
        second = client.predict_bulk(hexes, mode="loop")
        cache = client.stats()["uarchs"]["SKL"]["cache"]
        assert cache["persistent"]["loaded"] == len(hexes)
        assert cache["disk_hits"] == len(hexes)
        assert cache["persistent"]["stores"] == 0  # stable set: no-op
    assert second.data == first.data


def test_noshard_without_persistent_uses_plain_engine(hexes):
    # No cache_dir: the wrapper must stay out of the path (no
    # persistent layer to sync), and /stats has no persistent entry.
    with PredictionService(uarch="SKL", port=0, shard=False) as service:
        client = ServiceClient(port=service.port)
        client.predict_bulk(hexes, mode="loop")
        cache = client.stats()["uarchs"]["SKL"]["cache"]
        assert "persistent" not in cache
