"""End-to-end service tests over a real socket.

The acceptance property of the service layer: responses are
*byte-identical* to serializing the predictions of a serial
``Engine.predict_many`` over the same blocks — concurrency and
micro-batching change latency, never payloads — and ``/stats`` reports
cache and batching statistics that reflect the traffic served.
"""

import threading

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.core.model import Facile
from repro.engine.engine import Engine
from repro.service import PredictionService, ServiceClient, ServiceError, \
    json_bytes, prediction_to_dict
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")

#: Concurrent bulk-predict clients of the acceptance test.
N_CLIENTS = 32


@pytest.fixture(scope="module")
def service():
    with PredictionService(uarch="SKL", port=0, max_batch=16,
                           max_wait_ms=2.0) as running:
        yield running


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port)


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite.generate(20, seed=99)


def expected_bulk_bytes(suite, mode: ThroughputMode) -> bytes:
    """What a serial engine pass serializes to (the golden response)."""
    blocks = [b.block(mode is ThroughputMode.LOOP) for b in suite]
    predictions = Engine(SKL).predict_many(blocks, mode)
    return json_bytes({
        "uarch": "SKL",
        "mode": mode.value,
        "n_blocks": len(blocks),
        "predictions": [
            prediction_to_dict(prediction, block, "SKL")
            for prediction, block in zip(predictions, blocks)
        ],
    })


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["default_uarch"] == "SKL"
        assert "SKL" in health["uarchs_available"]

    def test_predict_matches_model(self, client):
        response = client.predict({"asm": "imul rax, rbx\nadd rax, rcx"},
                                  mode="unrolled")
        from repro.isa.block import BasicBlock
        block = BasicBlock.from_asm("imul rax, rbx\nadd rax, rcx")
        prediction = Facile(SKL).predict(block,
                                         ThroughputMode.UNROLLED)
        assert response["cycles"] == prediction.cycles
        assert response["bottlenecks"] == [c.value for c in
                                           prediction.bottlenecks]
        assert response["block"]["hex"] == block.raw.hex()

    def test_predict_other_uarch(self, client):
        from repro.isa.block import BasicBlock
        response = client.predict("4801d8", mode="loop", uarch="RKL")
        block = BasicBlock.from_bytes(bytes.fromhex("4801d8"))
        prediction = Facile(uarch_by_name("RKL")).predict(
            block, ThroughputMode.LOOP)
        assert response["uarch"] == "RKL"
        assert response["cycles"] == prediction.cycles

    def test_predict_counterfactuals(self, client):
        response = client.predict("4801d8", counterfactuals=True)
        assert "counterfactual_speedups" in response
        assert all(v >= 1.0
                   for v in response["counterfactual_speedups"].values())

    def test_bulk_round_trip(self, client, suite):
        hexes = [b.block_l.raw.hex() for b in suite]
        response = client.predict_bulk(hexes, mode="loop")
        assert response["n_blocks"] == len(hexes)
        assert [p["block"]["hex"] for p in response["predictions"]] \
            == hexes

    def test_compare(self, client):
        response = client.compare("4801d8", mode="loop",
                                  predictors=["Facile", "uiCA"])
        assert set(response["predictions"]) == {"Facile", "uiCA"}
        assert all(v > 0 for v in response["predictions"].values())

    def test_stats_reports_cache_and_batcher(self, client, suite):
        hexes = [b.block_l.raw.hex() for b in suite]
        client.predict_bulk(hexes, mode="loop")
        # The repeat is served from the response-fragment cache on the
        # event loop; the counterfactual request has a different
        # fragment key, so it reaches the shard again and hits the
        # worker's analysis cache instead.
        client.predict_bulk(hexes, mode="loop")
        client.predict(hexes[0], mode="loop", counterfactuals=True)
        stats = client.stats()
        skl = stats["uarchs"]["SKL"]
        assert skl["cache"]["hits"] > 0
        assert 0.0 < skl["cache"]["hit_rate"] <= 1.0
        assert skl["response_cache"]["hits"] >= len(hexes)
        assert skl["batcher"]["requests"] >= len(hexes)
        assert skl["batcher"]["batches"] >= 1
        assert stats["requests"]["total"] > 0
        assert "/v1/predict/bulk" in stats["requests"]["by_endpoint"]


class TestConcurrentDeterminism:
    @pytest.mark.parametrize("mode", (ThroughputMode.UNROLLED,
                                      ThroughputMode.LOOP),
                             ids=lambda m: m.value)
    def test_32_concurrent_bulk_clients_byte_identical(self, service,
                                                       suite, mode):
        # The headline acceptance criterion: >= 32 concurrent bulk
        # clients, every response byte-identical to the serial engine.
        golden = expected_bulk_bytes(suite, mode)
        loop = mode is ThroughputMode.LOOP
        body = {"blocks": [{"hex": b.block(loop).raw.hex()}
                           for b in suite],
                "mode": mode.value}
        responses = [None] * N_CLIENTS
        errors = []

        def hit(index):
            try:
                responses[index] = ServiceClient(
                    port=service.port).request_raw("/predict/bulk", body)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(raw == golden for raw in responses)

    def test_interleaved_modes_and_sizes(self, service, suite):
        # Mixed traffic: different modes and shard sizes in flight at
        # once; every response must still match its serial golden bytes.
        goldens = {}
        bodies = {}
        for mode in (ThroughputMode.UNROLLED, ThroughputMode.LOOP):
            loop = mode is ThroughputMode.LOOP
            goldens[mode] = expected_bulk_bytes(suite, mode)
            bodies[mode] = {"blocks": [{"hex": b.block(loop).raw.hex()}
                                       for b in suite],
                            "mode": mode.value}
        results = []
        lock = threading.Lock()

        def hit(mode):
            raw = ServiceClient(port=service.port).request_raw(
                "/predict/bulk", bodies[mode])
            with lock:
                results.append((mode, raw))

        threads = [threading.Thread(
            target=hit,
            args=((ThroughputMode.LOOP if i % 2 else
                   ThroughputMode.UNROLLED),))
            for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        for mode, raw in results:
            assert raw == goldens[mode]


class TestMalformedRequests:
    def test_invalid_json(self, service):
        # Raw POST with a body that is not JSON at all.
        import urllib.error
        import urllib.request
        request = urllib.request.Request(
            f"http://127.0.0.1:{service.port}/predict",
            data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as httperr:
            urllib.request.urlopen(request, timeout=10)
        assert httperr.value.code == 400

    def test_empty_body(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("/predict", {})
        assert exc.value.status == 400

    def test_both_hex_and_asm(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("/predict", {"hex": "4801d8", "asm": "nop"})
        assert exc.value.status == 400
        assert "exactly one" in exc.value.message

    def test_undecodable_hex(self, client):
        with pytest.raises(ServiceError) as exc:
            client.predict("zz")
        assert exc.value.status == 400

    def test_unknown_mode(self, client):
        with pytest.raises(ServiceError) as exc:
            client.predict("4801d8", mode="sideways")
        assert exc.value.status == 400

    def test_unknown_uarch_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.predict("4801d8", uarch="Z80")
        assert exc.value.status == 404

    def test_unknown_predictor_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.compare("4801d8", predictors=["gcc"])
        assert exc.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("/nope")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("/predict")  # GET on a POST route
        assert exc.value.status == 405
        with pytest.raises(ServiceError) as exc:
            client.request("/health", {"hex": "90"})  # POST on GET
        assert exc.value.status == 405

    def test_bulk_rejects_non_array(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("/predict/bulk", {"blocks": "4801d8"})
        assert exc.value.status == 400

    def test_invalid_window_parameters_fail_at_construction(self):
        # Runtimes are built lazily; bad window parameters must not be
        # deferred to the first request (which would 500 forever).
        with pytest.raises(ValueError):
            PredictionService(uarch="SKL", port=0, max_batch=0)
        with pytest.raises(ValueError):
            PredictionService(uarch="SKL", port=0, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            PredictionService(uarch="SKL", port=0, max_bulk=0)
        with pytest.raises(KeyError):
            PredictionService(uarch="Z80", port=0)

    def test_bulk_over_limit_is_413(self):
        with PredictionService(uarch="SKL", port=0,
                               max_bulk=2) as tiny:
            with pytest.raises(ServiceError) as exc:
                ServiceClient(port=tiny.port).predict_bulk(
                    ["90", "90", "90"])
            assert exc.value.status == 413

    def test_error_counted_in_stats(self, client):
        before = client.stats()["requests"]["errors"]
        with pytest.raises(ServiceError):
            client.request("/nope")
        assert client.stats()["requests"]["errors"] == before + 1

    def test_unknown_paths_fold_into_one_counter(self, client):
        # Client-chosen URLs must not grow the stats dict unboundedly.
        for path in ("/scan-a", "/scan-b", "/scan-c"):
            with pytest.raises(ServiceError):
                client.request(path)
        by_endpoint = client.stats()["requests"]["by_endpoint"]
        assert "unknown" in by_endpoint
        assert "/scan-a" not in by_endpoint

    def test_keepalive_survives_error_with_unread_body(self, service):
        # A 404/405 response may be sent before the request body was
        # read; the server must close that connection instead of
        # letting the unread bytes be parsed as the next request line.
        import http.client
        import json as json_mod
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=10)
        try:
            body = json_mod.dumps({"hex": "4801d8"})
            conn.request("POST", "/nope", body=body,
                         headers={"Content-Type": "application/json"})
            first = conn.getresponse()
            assert first.status == 404
            first.read()
            # http.client reconnects transparently after the server's
            # Connection: close; the follow-up must be a clean 200,
            # not a garbled request line.
            conn.request("POST", "/predict", body=body,
                         headers={"Content-Type": "application/json"})
            second = conn.getresponse()
            assert second.status == 200
            payload = json_mod.loads(second.read())
            assert payload["block"]["hex"] == "4801d8"
        finally:
            conn.close()
