"""The observability surface of the service: traces, metrics, logs.

Three wire-level contracts:

* **tracing** — every response carries an ``X-Trace-Id`` header; the
  ``/v1/`` envelope echoes the same id in ``meta.trace`` (success and
  error alike); with debug logging on, the forked shard worker logs the
  id the client saw, proving the trace propagated through the response
  cache, the micro-batcher, and the shard IPC payload end to end;
* **/v1/metrics** — the scrape parses as Prometheus text exposition
  0.0.4 and always advertises the full documented metric catalog;
* **/v1/stats /v1/health** — named robustness counters and the serving
  core ride along in the JSON surfaces.
"""

import json
import urllib.request

import pytest

from repro.obs import log as obslog
from repro.obs import metrics
from repro.obs.metrics import METRIC_CATALOG, parse_exposition
from repro.obs.trace import TRACE_HEADER
from repro.service import PredictionService, ServiceClient
from repro.service.server import METRICS_CONTENT_TYPE, SERVING_CORE

HEX = "4801d8"


def fetch(service, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{service.port}{path}", data=data,
        method="POST" if data else "GET")
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


@pytest.fixture(scope="module")
def service():
    with PredictionService(uarch="SKL", port=0, max_wait_ms=2.0) as s:
        yield s


class TestTraceIds:
    def test_v1_meta_and_header_carry_the_same_trace(self, service):
        status, headers, raw = fetch(service, "/v1/predict",
                                     {"hex": HEX, "mode": "loop"})
        assert status == 200
        trace = json.loads(raw)["meta"]["trace"]
        assert trace and len(trace) == 16
        int(trace, 16)
        assert headers[TRACE_HEADER] == trace

    def test_every_request_gets_a_fresh_trace(self, service):
        traces = set()
        for _ in range(3):
            _, headers, _ = fetch(service, "/v1/health")
            traces.add(headers[TRACE_HEADER])
        assert len(traces) == 3

    def test_error_envelope_echoes_the_trace(self, service):
        status, headers, raw = fetch(service, "/v1/predict", {})
        assert status == 400
        payload = json.loads(raw)
        assert payload["meta"]["trace"] == headers[TRACE_HEADER]

    def test_legacy_routes_carry_the_header_only(self, service):
        _, headers, raw = fetch(service, "/predict",
                                {"hex": HEX, "mode": "loop"})
        assert headers[TRACE_HEADER]
        assert "meta" not in json.loads(raw)  # byte-frozen legacy body

    def test_client_exposes_the_trace(self, service):
        result = ServiceClient(port=service.port).predict(HEX)
        assert result.trace == result.meta["trace"]


class TestTracePropagation:
    def test_shard_logs_the_trace_the_client_saw(self, monkeypatch,
                                                 capfd):
        """End to end: client meta.trace == the id the worker logged.

        The shard worker is forked at service construction and reads
        ``REPRO_LOG`` on startup (``refresh_level``), so the env must
        be set *before* the service exists; ``capfd`` captures at the
        fd level, which is the only way to see the fork's stderr.
        """
        monkeypatch.setenv(obslog.ENV_LEVEL, "debug")
        obslog.refresh_level()
        try:
            with PredictionService(uarch="SKL", port=0,
                                   max_wait_ms=0.0) as service:
                _, _, raw = fetch(service, "/v1/predict",
                                  {"hex": "4829d8", "mode": "unrolled"})
                trace = json.loads(raw)["meta"]["trace"]
        finally:
            monkeypatch.delenv(obslog.ENV_LEVEL)
            obslog.refresh_level()
        assert trace
        shard_traces = []
        for line in capfd.readouterr().err.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("component") == "shard" and \
                    record.get("event") == "predict_batch":
                shard_traces.extend(record.get("traces", []))
        assert trace in shard_traces


class TestMetricsEndpoint:
    def test_scrape_parses_and_covers_the_catalog(self, service):
        status, headers, raw = fetch(service, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        families = parse_exposition(raw.decode())
        assert set(METRIC_CATALOG) <= set(families)
        for name, (kind, _) in METRIC_CATALOG.items():
            assert families[name]["kind"] == kind, name

    def test_request_counters_move_between_scrapes(self, service):
        def requests_total():
            _, _, raw = fetch(service, "/v1/metrics")
            fam = parse_exposition(raw.decode())["facile_requests_total"]
            return {tuple(sorted(labels.items())): value
                    for _, labels, value in fam["samples"]}

        before = requests_total()
        fetch(service, "/v1/predict", {"hex": HEX, "mode": "loop"})
        after = requests_total()
        key = (("endpoint", "/v1/predict"),)
        assert after[key] == before.get(key, 0.0) + 1

    def test_latency_histogram_and_cache_counters_present(self, service):
        fetch(service, "/v1/predict", {"hex": HEX, "mode": "loop"})
        fetch(service, "/v1/predict", {"hex": HEX, "mode": "loop"})
        _, _, raw = fetch(service, "/v1/metrics")
        families = parse_exposition(raw.decode())
        duration = families["facile_request_duration_ms"]
        assert any(sample_name == "facile_request_duration_ms_count"
                   and labels.get("route") == "/v1/predict" and value > 0
                   for sample_name, labels, value in duration["samples"])
        cache_hits = families["facile_response_cache_hits_total"]
        assert any(labels.get("uarch") == "SKL" and value > 0
                   for _, labels, value in cache_hits["samples"])
        batches = families["facile_batcher_batches_total"]
        assert any(value > 0 for _, _, value in batches["samples"])

    def test_uptime_gauge_is_live(self, service):
        _, _, raw = fetch(service, "/v1/metrics")
        fam = parse_exposition(raw.decode())[
            "facile_service_uptime_seconds"]
        assert any(value >= 0 for _, _, value in fam["samples"])

    def test_legacy_has_no_metrics_twin(self, service):
        status, _, _ = fetch(service, "/metrics")
        assert status == 404


class TestStatsAndHealth:
    def test_stats_carries_named_robustness_counters(self, service):
        _, _, raw = fetch(service, "/v1/stats")
        counters = json.loads(raw)["result"]["counters"]
        assert set(counters) == {"shard_respawns", "shard_fallback",
                                 "breaker_opens",
                                 "engine_tasks_retried"}
        assert all(isinstance(v, int) and v >= 0
                   for v in counters.values())

    def test_health_advertises_the_serving_core(self, service):
        _, _, raw = fetch(service, "/v1/health")
        assert json.loads(raw)["result"]["core"] == SERVING_CORE


class TestSlowRequestLog:
    def test_slow_threshold_trips_the_structured_log(self, monkeypatch,
                                                     capsys):
        monkeypatch.setenv(obslog.ENV_SLOW_MS, "0.000001")
        with PredictionService(uarch="SKL", port=0, shard=False,
                               max_wait_ms=0.0) as service:
            _, headers, _ = fetch(service, "/v1/predict",
                                  {"hex": HEX, "mode": "loop"})
            trace = headers[TRACE_HEADER]
        records = [json.loads(line) for line in
                   capsys.readouterr().err.splitlines()
                   if line.startswith("{")]
        slow = [r for r in records if r.get("event") == "slow_request"
                and r.get("trace") == trace]
        assert slow and slow[0]["route"] == "/v1/predict"
        assert slow[0]["ms"] > 0
        counted = metrics.counter_value("facile_slow_requests_total",
                                        route="/v1/predict")
        assert counted >= 1
