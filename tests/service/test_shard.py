"""The per-µarch worker-process shard (``service/shard.py``).

The acceptance properties: predictions served through a shard process
are byte-identical to an in-process engine pass, an injected worker
kill is recovered by respawn-and-retry without changing a byte, and a
shard backed by a persistent cache file starts warm after a service
restart.
"""

import pytest

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.engine.engine import Engine
from repro.robustness import FaultPlan, injected
from repro.service import PredictionService, ServiceClient, ShardEngine
from repro.service.serialize import json_bytes, prediction_to_dict
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite.generate(6, seed=17)


@pytest.fixture(scope="module")
def blocks(suite):
    return [b.block_l for b in suite]


def wire_bytes(predictions, blocks):
    return [json_bytes(prediction_to_dict(p, b, "SKL"))
            for p, b in zip(predictions, blocks)]


class TestByteIdentity:
    @pytest.mark.parametrize("mode", (ThroughputMode.UNROLLED,
                                      ThroughputMode.LOOP),
                             ids=lambda m: m.value)
    def test_shard_matches_in_process_engine(self, blocks, mode):
        golden = Engine(SKL).predict_many(blocks, mode)
        with ShardEngine("SKL") as shard:
            served = shard.predict_many(blocks, mode)
        assert wire_bytes(served, blocks) == wire_bytes(golden, blocks)

    def test_stats_round_trip(self, blocks):
        with ShardEngine("SKL") as shard:
            shard.predict_many(blocks, ThroughputMode.LOOP)
            stats = shard.stats()
            assert stats["cache"]["misses"] >= len(blocks)
            assert set(stats["engine"]) == {"tasks_retried",
                                            "tasks_failed",
                                            "pool_respawns"}
            assert shard.alive


class TestCrashRecovery:
    def test_worker_kill_respawns_and_matches(self, blocks):
        golden = Engine(SKL).predict_many(blocks, ThroughputMode.LOOP)
        plan = FaultPlan.from_spec("seed=0; worker_kill@service.shard:0")
        with ShardEngine("SKL") as shard:
            with injected(plan):
                served = shard.predict_many(blocks, ThroughputMode.LOOP)
            assert shard.respawns == 1
            assert shard.fallback_used == 0
            assert shard.alive
            # The respawned worker keeps serving.
            again = shard.predict_many(blocks, ThroughputMode.LOOP)
        assert wire_bytes(served, blocks) == wire_bytes(golden, blocks)
        assert wire_bytes(again, blocks) == wire_bytes(golden, blocks)


class TestLifecycle:
    def test_close_is_idempotent(self):
        shard = ShardEngine("SKL")
        assert shard.alive
        shard.close()
        shard.close()
        assert not shard.alive
        assert shard.stats() == {}
        with pytest.raises(RuntimeError):
            shard.predict_many([], ThroughputMode.LOOP)


class TestPersistentWarmThroughService:
    def test_restart_with_same_cache_dir_starts_warm(self, suite,
                                                     tmp_path):
        hexes = [b.block_l.raw.hex() for b in suite]
        cache_dir = str(tmp_path / "cache")

        with PredictionService(uarch="SKL", port=0,
                               cache_dir=cache_dir) as service:
            client = ServiceClient(port=service.port)
            first = client.predict_bulk(hexes, mode="loop")
            stats = client.stats()
            persistent = stats["uarchs"]["SKL"]["cache"]["persistent"]
            assert persistent["loaded"] == 0  # cold start
            assert persistent["stores"] == len(hexes)

        # Restart over the same directory: the shard loads the file and
        # serves the working set from disk instead of re-deriving it.
        with PredictionService(uarch="SKL", port=0,
                               cache_dir=cache_dir) as service:
            client = ServiceClient(port=service.port)
            second = client.predict_bulk(hexes, mode="loop")
            stats = client.stats()
            cache = stats["uarchs"]["SKL"]["cache"]
            assert cache["persistent"]["loaded"] == len(hexes)
            assert cache["disk_hits"] == len(hexes)
        assert second.data == first.data
