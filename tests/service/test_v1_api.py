"""The versioned v1 API: envelope, error schema, deprecation, client.

Three layers of contract:

* **byte-level** — the envelope/bulk assembly helpers splice
  pre-serialized fragments yet produce exactly the bytes
  :func:`json_bytes` would for the equivalent full dict;
* **wire-level** — ``/v1/`` responses share one envelope and one
  structured error vocabulary, while the legacy unversioned routes keep
  their original payloads byte-for-byte plus a ``Deprecation`` header;
* **client-level** — :class:`ServiceClient` negotiates the generation
  once and serves typed results that still act like the raw dicts.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.components import ThroughputMode
from repro.core.model import Facile
from repro.isa.block import BasicBlock
from repro.service import (
    API_VERSION,
    ERROR_CODES,
    PredictionService,
    PredictionResult,
    ServiceClient,
    ServiceError,
    json_bytes,
    prediction_to_dict,
)
from repro.service.serialize import (
    envelope_bytes,
    error_envelope_bytes,
    meta_dict,
)
from repro.service.server import ROUTES, bulk_result_bytes
from repro.uarch import uarch_by_name

SKL = uarch_by_name("SKL")
HEX = "4801d8"


@pytest.fixture(scope="module")
def service():
    with PredictionService(uarch="SKL", port=0, max_wait_ms=2.0) as s:
        yield s


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port)


def fetch(service, path, body=None):
    """One raw request; returns (status, headers, bytes)."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{service.port}{path}", data=data,
        method="POST" if data else "GET")
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestByteAssembly:
    def test_envelope_bytes_match_full_json(self):
        result = {"cycles": 1.25, "uarch": "SKL"}
        meta = meta_dict(uarch="SKL", mode="loop", cache="hit",
                         timing_ms=0.123)
        assert envelope_bytes(json_bytes(result), meta) == json_bytes(
            {"error": None, "meta": meta, "result": result})

    def test_bulk_result_bytes_match_full_json(self):
        block = BasicBlock.from_bytes(bytes.fromhex(HEX))
        prediction = Facile(SKL).predict(block, ThroughputMode.LOOP)
        entry = prediction_to_dict(prediction, block, "SKL")
        fragments = [json_bytes(entry)] * 3
        assert bulk_result_bytes("SKL", "loop", fragments) == json_bytes(
            {"uarch": "SKL", "mode": "loop", "n_blocks": 3,
             "predictions": [entry] * 3})

    def test_error_envelope_schema(self):
        payload = json.loads(error_envelope_bytes(429, "shed",
                                                  retry_after_ms=12.3456))
        assert payload["result"] is None
        assert payload["meta"]["api_version"] == API_VERSION
        assert payload["error"] == {"code": "overloaded",
                                    "message": "shed",
                                    "retry_after_ms": 12.346}
        # Unknown statuses never leak a numeric code.
        fallback = json.loads(error_envelope_bytes(418, "teapot"))
        assert fallback["error"]["code"] == "internal"
        assert "retry_after_ms" not in fallback["error"]

    def test_meta_dict_always_carries_every_key(self):
        assert set(meta_dict()) == {"api_version", "uarch", "mode",
                                    "cache", "timing_ms", "trace"}

    def test_every_legacy_route_has_a_v1_twin(self):
        # v1-only routes (new surfaces that never had a legacy payload
        # to stay byte-compatible with) are exempt from the twin rule.
        v1_only = {"/v1/metrics"}
        for method, paths in ROUTES.items():
            legacy = {p for p in paths if not p.startswith("/v1/")}
            versioned = {p for p in paths if p.startswith("/v1/")}
            assert {"/v1" + p for p in legacy} == versioned - v1_only, \
                method


class TestV1Envelope:
    def test_predict_envelope(self, service):
        status, _, raw = fetch(service, "/v1/predict",
                               {"hex": HEX, "mode": "loop"})
        assert status == 200
        payload = json.loads(raw)
        assert set(payload) == {"error", "meta", "result"}
        assert payload["error"] is None
        meta = payload["meta"]
        assert meta["api_version"] == API_VERSION
        assert meta["uarch"] == "SKL"
        assert meta["mode"] == "loop"
        assert meta["cache"] in ("hit", "miss")
        assert meta["timing_ms"] >= 0
        assert payload["result"]["block"]["hex"] == HEX

    def test_bulk_envelope_reports_cache_split(self, service):
        body = {"blocks": [{"hex": HEX}, {"hex": "90"}], "mode": "loop"}
        fetch(service, "/v1/predict/bulk", body)  # warm the fragments
        status, _, raw = fetch(service, "/v1/predict/bulk", body)
        assert status == 200
        meta = json.loads(raw)["meta"]
        assert meta["cache"] == {"hits": 2, "misses": 0}

    def test_health_advertises_api_versions(self, service):
        status, _, raw = fetch(service, "/v1/health")
        assert status == 200
        result = json.loads(raw)["result"]
        assert result["api_versions"] == [API_VERSION]
        # The legacy route serves the identical (unwrapped) payload —
        # modulo the uptime clock, which ticks between the two calls.
        _, _, legacy_raw = fetch(service, "/health")
        legacy = json.loads(legacy_raw)
        legacy.pop("uptime_sec")
        result.pop("uptime_sec")
        assert legacy == result


class TestLegacyCompatibility:
    def test_legacy_body_is_the_v1_result_verbatim(self, service):
        body = {"hex": HEX, "mode": "unrolled"}
        _, _, v1_raw = fetch(service, "/v1/predict", body)
        _, _, legacy_raw = fetch(service, "/predict", body)
        assert legacy_raw == json_bytes(json.loads(v1_raw)["result"])

    def test_legacy_bytes_match_direct_serialization(self, service):
        block = BasicBlock.from_bytes(bytes.fromhex(HEX))
        prediction = Facile(SKL).predict(block, ThroughputMode.LOOP)
        _, _, raw = fetch(service, "/predict",
                          {"hex": HEX, "mode": "loop"})
        assert raw == json_bytes(prediction_to_dict(block=block,
                                                    prediction=prediction,
                                                    uarch="SKL"))

    def test_deprecation_header_on_legacy_success_only(self, service):
        _, legacy_headers, _ = fetch(service, "/health")
        assert legacy_headers.get("Deprecation") == "true"
        _, v1_headers, _ = fetch(service, "/v1/health")
        assert "Deprecation" not in v1_headers

    def test_legacy_error_keeps_string_schema(self, service):
        status, _, raw = fetch(service, "/predict", {})
        assert status == 400
        payload = json.loads(raw)
        assert isinstance(payload["error"], str)
        assert set(payload) == {"error"}


class TestV1Errors:
    @pytest.mark.parametrize("path,body,status", [
        ("/v1/predict", {}, 400),
        ("/v1/predict", {"hex": HEX, "uarch": "Z80"}, 404),
        ("/v1/nope", {"hex": HEX}, 404),
        ("/v1/predict", None, 405),  # GET on a POST route
    ])
    def test_structured_error_schema(self, service, path, body, status):
        got_status, _, raw = fetch(service, path, body)
        assert got_status == status
        payload = json.loads(raw)
        assert payload["result"] is None
        assert payload["meta"]["api_version"] == API_VERSION
        error = payload["error"]
        assert error["code"] == ERROR_CODES[status]
        assert error["message"]

    def test_413_too_large_code(self):
        with PredictionService(uarch="SKL", port=0, max_bulk=1) as tiny:
            status, _, raw = fetch(
                tiny, "/v1/predict/bulk",
                {"blocks": [{"hex": "90"}, {"hex": "90"}]})
        assert status == 413
        assert json.loads(raw)["error"]["code"] == "too_large"

    def test_client_surfaces_code_and_message(self, client):
        with pytest.raises(ServiceError) as exc:
            client.predict(HEX, uarch="Z80")
        assert exc.value.status == 404
        assert exc.value.code == "not_found"
        assert "Z80" in exc.value.message


class TestClientNegotiation:
    def test_auto_negotiates_v1(self, service):
        with ServiceClient(port=service.port) as client:
            assert client.api_version == "v1"

    def test_forced_legacy_still_works(self, service):
        with ServiceClient(port=service.port, api="legacy") as client:
            assert client.api_version == "legacy"
            result = client.predict(HEX, mode="loop")
            assert result.meta is None
            assert result.block["hex"] == HEX

    def test_forced_v1_skips_probe(self, service):
        client = ServiceClient(port=service.port, api="v1")
        assert client.api_version == "v1"

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ServiceClient(api="v2")
        with pytest.raises(ValueError):
            ServiceClient(max_attempts=0)
        with pytest.raises(TypeError):
            ServiceClient("127.0.0.1")  # positional args are gone


class TestTypedResults:
    def test_prediction_result_properties(self, client):
        result = client.predict(HEX, mode="loop", counterfactuals=True)
        assert isinstance(result, PredictionResult)
        block = BasicBlock.from_bytes(bytes.fromhex(HEX))
        prediction = Facile(SKL).predict(block, ThroughputMode.LOOP)
        assert result.cycles == prediction.cycles
        assert result.bottlenecks == [c.value
                                      for c in prediction.bottlenecks]
        assert result.uarch == "SKL"
        assert result.mode == "loop"
        assert set(result.bounds) == set(result.exact_bounds)
        assert all(v >= 1.0
                   for v in result.counterfactual_speedups.values())
        assert result.meta["api_version"] == API_VERSION

    def test_results_still_act_like_dicts(self, client):
        result = client.predict(HEX)
        assert result["cycles"] == result.cycles
        assert "bottlenecks" in result
        assert result.get("nope") is None
        assert set(result.keys()) == set(iter(result))
        assert result == result.data

    def test_bulk_result_is_typed_and_ordered(self, client):
        bulk = client.predict_bulk([HEX, "90"], mode="unrolled")
        assert bulk.n_blocks == 2
        assert bulk.uarch == "SKL"
        assert bulk.mode == "unrolled"
        predictions = bulk.predictions
        assert [p.block["hex"] for p in predictions] == [HEX, "90"]
        assert all(isinstance(p, PredictionResult) for p in predictions)
