"""Microarchitecture configurations (Table 1 of the paper).

This package plays the role of uiCA's ``microArchConfigs.py``: it provides
the high-level pipeline parameters of the nine Intel Core generations the
paper evaluates, from Sandy Bridge (2011) to Rocket Lake (2021).
"""

from repro.uarch.config import MicroArchConfig
from repro.uarch.configs import (
    ALL_UARCHS,
    UARCH_ORDER,
    uarch_by_name,
)

__all__ = ["ALL_UARCHS", "MicroArchConfig", "UARCH_ORDER", "uarch_by_name"]
