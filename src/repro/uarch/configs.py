"""Concrete configurations for the nine microarchitectures of Table 1.

Values are best-effort public-knowledge parameters (Intel optimization
manuals, uops.info, the uiCA paper).  Where exact values are uncertain the
choice is documented inline; what matters for the reproduction is that the
analytical model, the oracle simulator, and the baselines all consume the
*same* configuration, so predictor-vs-measurement relationships are
preserved.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.uarch.config import MicroArchConfig, PortSet


def _fs(*ports: int) -> PortSet:
    return frozenset(ports)


def _port_map_snb() -> Dict[str, PortSet]:
    """Sandy Bridge / Ivy Bridge: 6 ports, FP add on p1, FP mul on p0."""
    return {
        "int_alu": _fs(0, 1, 5),
        "flags_alu": _fs(0, 5),
        "int_shift": _fs(0, 5),
        "int_mul": _fs(1),
        "int_mul_aux": _fs(5),
        "div": _fs(0),
        "bit_scan": _fs(1),
        "lea_simple": _fs(0, 1),
        "lea_slow": _fs(1),
        "load": _fs(2, 3),
        "store_agu": _fs(2, 3),
        "store_agu_indexed": _fs(2, 3),
        "store_data": _fs(4),
        "branch": _fs(5),
        "fused_branch": _fs(5),
        "vec_fp_add": _fs(1),
        "vec_fp_mul": _fs(0),
        "fma": _fs(0),  # unused: FMA requires the "fma" feature
        "vec_fp_div": _fs(0),
        "fp_sqrt": _fs(0),
        "vec_int": _fs(1, 5),
        "vec_int_mul": _fs(0),
        "vec_logic": _fs(0, 1, 5),
        "vec_mov": _fs(0, 1, 5),
    }


def _port_map_hsw() -> Dict[str, PortSet]:
    """Haswell / Broadwell: 8 ports, 2 FMA units, p6 branch, p7 store AGU."""
    return {
        "int_alu": _fs(0, 1, 5, 6),
        "flags_alu": _fs(0, 6),
        "int_shift": _fs(0, 6),
        "int_mul": _fs(1),
        "int_mul_aux": _fs(5),
        "div": _fs(0),
        "bit_scan": _fs(1),
        "lea_simple": _fs(1, 5),
        "lea_slow": _fs(1),
        "load": _fs(2, 3),
        "store_agu": _fs(2, 3, 7),
        "store_agu_indexed": _fs(2, 3),
        "store_data": _fs(4),
        "branch": _fs(6),
        "fused_branch": _fs(0, 6),
        "vec_fp_add": _fs(1),
        "vec_fp_mul": _fs(0, 1),
        "fma": _fs(0, 1),
        "vec_fp_div": _fs(0),
        "fp_sqrt": _fs(0),
        "vec_int": _fs(1, 5),
        "vec_int_mul": _fs(0),
        "vec_logic": _fs(0, 1, 5),
        "vec_mov": _fs(0, 1, 5),
    }


def _port_map_skl() -> Dict[str, PortSet]:
    """Skylake / Cascade Lake: FP add moved to the p0/p1 FMA units."""
    pm = _port_map_hsw()
    pm.update({
        "vec_fp_add": _fs(0, 1),
        "vec_fp_mul": _fs(0, 1),
        "vec_int": _fs(0, 1, 5),
        "vec_int_mul": _fs(0, 1),
    })
    return pm


def _port_map_icl() -> Dict[str, PortSet]:
    """Ice Lake / Tiger Lake / Rocket Lake: 10 ports, dual store pipes."""
    pm = _port_map_skl()
    pm.update({
        "store_agu": _fs(7, 8),
        "store_agu_indexed": _fs(7, 8),
        "store_data": _fs(4, 9),
        "lea_simple": _fs(1, 5),
    })
    return pm


_BASE_FEATURES = frozenset({"avx"})
_HSW_FEATURES = frozenset({"avx", "avx2", "fma"})

# Per-family latency overrides (archetype -> cycles); the database supplies
# the defaults.
_LAT_SNB = {
    "adc": 2, "cmov": 2, "fp_add": 3, "fp_mul": 5, "vec_int_mul": 5,
    "fp_div": 14, "fp_div_scalar": 14, "fp_sqrt": 14, "div": 40,
}
_LAT_HSW = {
    "adc": 2, "cmov": 2, "fp_add": 3, "fp_mul": 5, "fma": 5,
    "vec_int_mul": 10, "fp_div": 13, "fp_div_scalar": 13, "fp_sqrt": 13,
    "div": 36,
}
_LAT_BDW = {
    "adc": 1, "cmov": 1, "fp_add": 3, "fp_mul": 3, "fma": 5,
    "vec_int_mul": 10, "fp_div": 13, "fp_div_scalar": 13, "fp_sqrt": 13,
    "div": 36,
}
_LAT_SKL = {
    "adc": 1, "cmov": 1, "fp_add": 4, "fp_mul": 4, "fma": 4,
    "vec_int_mul": 10, "fp_div": 11, "fp_div_scalar": 11, "fp_sqrt": 12,
    "div": 36,
}
_LAT_ICL = {
    "adc": 1, "cmov": 1, "fp_add": 4, "fp_mul": 4, "fma": 4,
    "vec_int_mul": 10, "fp_div": 11, "fp_div_scalar": 11, "fp_sqrt": 12,
    "div": 18,
}


SNB = MicroArchConfig(
    name="Sandy Bridge", abbrev="SNB", released=2011,
    cpu="Intel Core i7-2600",
    n_decoders=4, predecode_width=5, macro_fusible_on_last_decoder=False,
    dsb_width=4, idq_size=28, lsd_enabled=True, lsd_unrolls=False,
    jcc_erratum=False,
    issue_width=4, retire_width=4, rob_size=168, rs_size=54, load_latency=4,
    ports=(0, 1, 2, 3, 4, 5), port_map=_port_map_snb(),
    gpr_move_elim=False, vec_move_elim=False, unlaminate_indexed=True,
    features=_BASE_FEATURES, lat_overrides=_LAT_SNB,
)

IVB = MicroArchConfig(
    name="Ivy Bridge", abbrev="IVB", released=2012,
    cpu="Intel Core i5-3470",
    n_decoders=4, predecode_width=5, macro_fusible_on_last_decoder=False,
    dsb_width=4, idq_size=28, lsd_enabled=True, lsd_unrolls=False,
    jcc_erratum=False,
    issue_width=4, retire_width=4, rob_size=168, rs_size=54, load_latency=4,
    ports=(0, 1, 2, 3, 4, 5), port_map=_port_map_snb(),
    gpr_move_elim=True, vec_move_elim=True, unlaminate_indexed=True,
    features=_BASE_FEATURES, lat_overrides=_LAT_SNB,
)

HSW = MicroArchConfig(
    name="Haswell", abbrev="HSW", released=2013,
    cpu="Intel Xeon E3-1225 v3",
    n_decoders=4, predecode_width=5, macro_fusible_on_last_decoder=False,
    dsb_width=4, idq_size=56, lsd_enabled=True, lsd_unrolls=False,
    jcc_erratum=False,
    issue_width=4, retire_width=4, rob_size=192, rs_size=60, load_latency=4,
    ports=(0, 1, 2, 3, 4, 5, 6, 7), port_map=_port_map_hsw(),
    gpr_move_elim=True, vec_move_elim=True, unlaminate_indexed=False,
    features=_HSW_FEATURES, lat_overrides=_LAT_HSW,
)

BDW = MicroArchConfig(
    name="Broadwell", abbrev="BDW", released=2015,
    cpu="Intel Core i5-5200U",
    n_decoders=4, predecode_width=5, macro_fusible_on_last_decoder=False,
    dsb_width=4, idq_size=56, lsd_enabled=True, lsd_unrolls=False,
    jcc_erratum=False,
    issue_width=4, retire_width=4, rob_size=192, rs_size=60, load_latency=4,
    ports=(0, 1, 2, 3, 4, 5, 6, 7), port_map=_port_map_hsw(),
    gpr_move_elim=True, vec_move_elim=True, unlaminate_indexed=False,
    features=_HSW_FEATURES, lat_overrides=_LAT_BDW,
)

SKL = MicroArchConfig(
    name="Skylake", abbrev="SKL", released=2015,
    cpu="Intel Core i7-6500U",
    n_decoders=4, predecode_width=5, macro_fusible_on_last_decoder=False,
    dsb_width=6, idq_size=64, lsd_enabled=False, lsd_unrolls=False,
    jcc_erratum=True,
    issue_width=4, retire_width=4, rob_size=224, rs_size=97, load_latency=4,
    ports=(0, 1, 2, 3, 4, 5, 6, 7), port_map=_port_map_skl(),
    gpr_move_elim=True, vec_move_elim=True, unlaminate_indexed=False,
    features=_HSW_FEATURES, lat_overrides=_LAT_SKL,
)

CLX = MicroArchConfig(
    name="Cascade Lake", abbrev="CLX", released=2019,
    cpu="Intel Core i9-10980XE",
    n_decoders=4, predecode_width=5, macro_fusible_on_last_decoder=False,
    dsb_width=6, idq_size=64, lsd_enabled=False, lsd_unrolls=False,
    jcc_erratum=True,
    issue_width=4, retire_width=4, rob_size=224, rs_size=97, load_latency=4,
    ports=(0, 1, 2, 3, 4, 5, 6, 7), port_map=_port_map_skl(),
    gpr_move_elim=True, vec_move_elim=True, unlaminate_indexed=False,
    features=_HSW_FEATURES, lat_overrides=_LAT_SKL,
)

ICL = MicroArchConfig(
    name="Ice Lake", abbrev="ICL", released=2019,
    cpu="Intel Core i5-1035G1",
    n_decoders=5, predecode_width=5, macro_fusible_on_last_decoder=True,
    dsb_width=6, idq_size=70, lsd_enabled=True, lsd_unrolls=True,
    jcc_erratum=False,
    issue_width=5, retire_width=5, rob_size=352, rs_size=160,
    load_latency=5,
    ports=(0, 1, 2, 3, 4, 5, 6, 7, 8, 9), port_map=_port_map_icl(),
    # GPR move elimination was disabled on ICL/TGL by a microcode update
    # (ICL065 erratum); re-enabled on Rocket Lake.
    gpr_move_elim=False, vec_move_elim=True, unlaminate_indexed=False,
    features=_HSW_FEATURES, lat_overrides=_LAT_ICL,
)

TGL = MicroArchConfig(
    name="Tiger Lake", abbrev="TGL", released=2020,
    cpu="Intel Core i7-1165G7",
    n_decoders=5, predecode_width=5, macro_fusible_on_last_decoder=True,
    dsb_width=6, idq_size=70, lsd_enabled=True, lsd_unrolls=True,
    jcc_erratum=False,
    issue_width=5, retire_width=5, rob_size=352, rs_size=160,
    load_latency=5,
    ports=(0, 1, 2, 3, 4, 5, 6, 7, 8, 9), port_map=_port_map_icl(),
    gpr_move_elim=False, vec_move_elim=True, unlaminate_indexed=False,
    features=_HSW_FEATURES, lat_overrides=_LAT_ICL,
)

RKL = MicroArchConfig(
    name="Rocket Lake", abbrev="RKL", released=2021,
    cpu="Intel Core i9-11900",
    n_decoders=5, predecode_width=5, macro_fusible_on_last_decoder=True,
    dsb_width=6, idq_size=70, lsd_enabled=True, lsd_unrolls=True,
    jcc_erratum=False,
    issue_width=5, retire_width=5, rob_size=352, rs_size=160,
    load_latency=5,
    ports=(0, 1, 2, 3, 4, 5, 6, 7, 8, 9), port_map=_port_map_icl(),
    gpr_move_elim=True, vec_move_elim=True, unlaminate_indexed=False,
    features=_HSW_FEATURES, lat_overrides=_LAT_ICL,
)

#: All microarchitectures, newest first (paper Table 1 order).
ALL_UARCHS: Tuple[MicroArchConfig, ...] = (
    RKL, TGL, ICL, CLX, SKL, BDW, HSW, IVB, SNB)

#: Oldest-to-newest order (used for the evolution analyses).
UARCH_ORDER: Tuple[MicroArchConfig, ...] = tuple(reversed(ALL_UARCHS))

_BY_NAME = {u.abbrev: u for u in ALL_UARCHS}
_BY_NAME.update({u.name: u for u in ALL_UARCHS})
_BY_NAME.update({u.abbrev.lower(): u for u in ALL_UARCHS})


def uarch_by_name(name: str) -> MicroArchConfig:
    """Look up a microarchitecture by abbreviation or full name.

    Raises:
        KeyError: for unknown names.
    """
    return _BY_NAME[name]
