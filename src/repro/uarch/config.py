"""The :class:`MicroArchConfig` dataclass."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple


PortSet = FrozenSet[int]


@dataclass(frozen=True)
class MicroArchConfig:
    """High-level pipeline parameters of one microarchitecture.

    The front-end and back-end parameters mirror the knobs uiCA's
    configuration files expose; the port map plays the role of the
    uops.info port-usage data at µop-kind granularity.

    Attributes:
        name / abbrev / released / cpu: identification (paper Table 1).
        n_decoders: total decoders (1 complex + n-1 simple).
        predecode_width: instructions predecoded per cycle (5 on all
            generations covered).
        macro_fusible_on_last_decoder: whether a macro-fusible instruction
            may be decoded by the last simple decoder (Algorithm 1,
            line 14 of the paper).
        dsb_width: µops the DSB can send to the IDQ per cycle.
        idq_size: IDQ capacity in µops (the LSD lock window).
        lsd_enabled: LSD active (disabled on SKL/CLX by the SKL150 erratum).
        lsd_unrolls: LSD unrolls small loops to fill the issue width.
        jcc_erratum: JCC-erratum mitigation active (Skylake family).
        issue_width: µops issued by the renamer per cycle.
        retire_width: µops retired per cycle.
        rob_size / rs_size: reorder-buffer and scheduler capacities.
        load_latency: L1 load-to-use latency in cycles.
        ports: all execution-port numbers.
        port_map: µop kind → set of ports that can execute it.
        gpr_move_elim / vec_move_elim: move elimination availability.
        unlaminate_indexed: micro-fused µops with indexed addressing are
            split ("unlaminated") at issue (SNB/IVB behaviour).
        features: supported ISA extensions ("avx", "avx2", "fma").
        lat_overrides: archetype → instruction latency override.
    """

    name: str
    abbrev: str
    released: int
    cpu: str

    n_decoders: int
    predecode_width: int
    macro_fusible_on_last_decoder: bool
    dsb_width: int
    idq_size: int
    lsd_enabled: bool
    lsd_unrolls: bool
    jcc_erratum: bool

    issue_width: int
    retire_width: int
    rob_size: int
    rs_size: int
    load_latency: int

    ports: Tuple[int, ...]
    port_map: Mapping[str, PortSet]
    gpr_move_elim: bool
    vec_move_elim: bool
    unlaminate_indexed: bool
    features: FrozenSet[str]
    lat_overrides: Mapping[str, int] = field(default_factory=dict)

    @property
    def n_ports(self) -> int:
        return len(self.ports)

    def supports(self, feature: str) -> bool:
        """True when the µarch supports the ISA extension *feature*."""
        return feature == "base" or feature in self.features

    def ports_for(self, kind: str) -> PortSet:
        """Ports able to execute a µop of the given *kind*.

        Raises:
            KeyError: for unknown µop kinds (indicates a database bug).
        """
        return self.port_map[kind]

    def __str__(self) -> str:
        return self.abbrev
