"""Construction of the weighted dependence graph (§4.9 of the paper).

Nodes are the values consumed and produced by each instruction instance:
``("c", i, root)`` for instruction *i* consuming architectural value
*root*, and ``("p", i, root)`` for producing it.  Latency edges connect
consumed to produced values within an instruction; 0-latency dependency
edges connect producers to consumers, carrying an iteration count of 0
(intra-iteration) or 1 (loop-carried, via the last writer in the block).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.core import RatioGraph
from repro.isa.block import BasicBlock
from repro.uops.database import UopsDatabase


class DependenceGraphBuilder:
    """Builds dependence graphs for basic blocks."""

    def __init__(self, db: UopsDatabase):
        self.db = db

    def build(self, block: BasicBlock) -> RatioGraph:
        """Construct the dependence graph of *block*.

        Live-in values (read before any write in the block) have no
        producer and induce no edges, matching the steady-state semantics:
        only values produced within the loop body can carry dependences
        across iterations.
        """
        graph = RatioGraph()

        final_writer: Dict[str, int] = {}
        for idx, instr in enumerate(block):
            for reg in instr.regs_written():
                final_writer[reg.name] = idx

        current_writer: Dict[str, int] = {}
        for idx, instr in enumerate(block):
            edges = self.db.dep_latencies(instr)
            consumed_roots = {src.name for src, _dst, _lat in edges}
            for root in consumed_roots:
                producer = current_writer.get(root)
                count = 0
                if producer is None:
                    producer = final_writer.get(root)
                    count = 1
                if producer is None:
                    continue  # live-in: produced outside the block
                graph.add_edge(("p", producer, root), ("c", idx, root),
                               0, count)
            for src, dst, lat in edges:
                graph.add_edge(("c", idx, src.name), ("p", idx, dst.name),
                               lat, 0)
            for reg in instr.regs_written():
                current_writer[reg.name] = idx
        return graph

    @staticmethod
    def cycle_instructions(cycle_edges) -> List[int]:
        """Instruction indices involved in a critical cycle."""
        indices = []
        for edge in cycle_edges:
            for node in (edge.src, edge.dst):
                if isinstance(node, tuple) and len(node) == 3:
                    if node[1] not in indices:
                        indices.append(node[1])
        return sorted(indices)


def build_dependence_graph(block: BasicBlock,
                           db: UopsDatabase) -> RatioGraph:
    """Convenience wrapper around :class:`DependenceGraphBuilder`."""
    return DependenceGraphBuilder(db).build(block)
