"""Graph algorithms for the Precedence bound (§4.9 of the paper).

The dependence graph carries two edge weights: a latency and an iteration
count.  The throughput bound due to precedence constraints is the maximum
over all cycles of (total latency / total iteration count) — the maximum
cycle ratio (MCR).

Two MCR algorithms are provided:

* :func:`~repro.graph.howard.howard_max_cycle_ratio` — Howard's policy
  iteration (the algorithm the paper uses), exact rational arithmetic.
* :func:`~repro.graph.lawler.lawler_max_cycle_ratio` — Lawler's binary
  search with Bellman-Ford feasibility checks, used as a reference
  implementation and for the MCR ablation bench.
"""

from repro.graph.core import RatioGraph
from repro.graph.howard import howard_max_cycle_ratio
from repro.graph.lawler import lawler_max_cycle_ratio
from repro.graph.depgraph import DependenceGraphBuilder, build_dependence_graph

__all__ = [
    "DependenceGraphBuilder",
    "RatioGraph",
    "build_dependence_graph",
    "howard_max_cycle_ratio",
    "lawler_max_cycle_ratio",
]
