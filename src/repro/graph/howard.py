"""Howard's policy-iteration algorithm for the maximum cycle ratio.

This is the algorithm the paper cites ([16, 18]) for computing the
Precedence bound.  The implementation is the multichain variant: policies
are improved first on *gain* (the cycle ratio a node's policy path reaches)
and then on *bias* (the relative value), which handles policy graphs whose
functional structure contains several cycles.

All arithmetic is exact (``fractions.Fraction``), so results are exact
rationals and policy iteration terminates.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.core import Edge, RatioGraph


class _SccState:
    """Policy-iteration state for one strongly connected subgraph."""

    def __init__(self, graph: RatioGraph, nodes: List[Hashable]):
        self.graph = graph
        self.nodes = nodes
        self.policy: Dict[Hashable, Edge] = {
            u: graph.out_edges(u)[0] for u in nodes}
        self.gain: Dict[Hashable, Fraction] = {}
        self.bias: Dict[Hashable, Fraction] = {}
        self.critical_cycle: List[Edge] = []

    # -- policy evaluation ------------------------------------------------

    def evaluate(self) -> None:
        """Compute per-node gain and bias under the current policy."""
        self.gain.clear()
        self.bias.clear()
        best_ratio: Optional[Fraction] = None

        # Find the cycle of each functional component and the ratio of it.
        color: Dict[Hashable, int] = {}  # 0 in-progress, 1 done
        for start in self.nodes:
            if start in color:
                continue
            path: List[Hashable] = []
            node = start
            while node not in color:
                color[node] = 0
                path.append(node)
                node = self.policy[node].dst
            if color[node] == 0:
                # Found a new cycle; `node` is on it.
                cycle_start = path.index(node)
                cycle = path[cycle_start:]
                ratio = self._cycle_ratio(cycle)
                self._set_cycle_values(cycle, ratio)
                if best_ratio is None or ratio > best_ratio:
                    best_ratio = ratio
                    self.critical_cycle = [self.policy[u] for u in cycle]
            # Back-substitute values for the tail of the path.
            for u in reversed(path):
                if u in self.gain:
                    continue
                edge = self.policy[u]
                ratio = self.gain[edge.dst]
                self.gain[u] = ratio
                self.bias[u] = (edge.weight - ratio * edge.count
                                + self.bias[edge.dst])
            for u in path:
                color[u] = 1

    def _cycle_ratio(self, cycle: List[Hashable]) -> Fraction:
        total_weight = 0
        total_count = 0
        for u in cycle:
            edge = self.policy[u]
            total_weight += edge.weight
            total_count += edge.count
        if total_count == 0:
            raise ZeroIterationCycle(
                "policy cycle with zero iteration count; the dependence "
                "graph must not contain intra-iteration cycles")
        return Fraction(total_weight, total_count)

    def _set_cycle_values(self, cycle: List[Hashable],
                          ratio: Fraction) -> None:
        handle = cycle[0]
        self.gain[handle] = ratio
        self.bias[handle] = Fraction(0)
        # Walk the cycle backwards so each node's successor value is known.
        for u in reversed(cycle[1:]):
            edge = self.policy[u]
            self.gain[u] = ratio
            self.bias[u] = (edge.weight - ratio * edge.count
                            + self.bias[edge.dst])

    # -- policy improvement -----------------------------------------------

    def improve(self) -> bool:
        """One improvement sweep; returns True when the policy changed."""
        changed = False
        for u in self.nodes:
            current_edge = self.policy[u]
            best_gain = self.gain[u]
            best_bias = self.bias[u]
            best_edge = None
            for edge in self.graph.out_edges(u):
                g = self.gain[edge.dst]
                if g < best_gain:
                    continue
                b = edge.weight - g * edge.count + self.bias[edge.dst]
                if g > best_gain or b > best_bias:
                    best_gain, best_bias, best_edge = g, b, edge
            if best_edge is not None and best_edge is not current_edge:
                self.policy[u] = best_edge
                changed = True
        return changed

    def solve(self) -> Tuple[Fraction, List[Edge]]:
        while True:
            self.evaluate()
            if not self.improve():
                break
        best = max(self.gain[u] for u in self.nodes)
        return best, self.critical_cycle


class ZeroIterationCycle(Exception):
    """Raised for cycles whose iteration count sums to zero."""


def howard_max_cycle_ratio(
        graph: RatioGraph,
) -> Tuple[Optional[Fraction], List[Edge]]:
    """Maximum cycle ratio of *graph* via Howard's policy iteration.

    Returns:
        (ratio, critical_cycle_edges); (None, []) for acyclic graphs.
        The critical cycle achieves the maximum ratio and is reported for
        interpretability (the paper's "dependency chain with the maximal
        latency").
    """
    best: Optional[Fraction] = None
    best_cycle: List[Edge] = []
    for component in graph.strongly_connected_components():
        if len(component) == 1:
            node = component[0]
            if not any(e.dst == node for e in graph.out_edges(node)):
                continue
        sub = graph.subgraph(component)
        # Every node of a cyclic SCC has an out-edge within the SCC except
        # in trivial single-node cases handled above.
        ratio, cycle = _SccState(sub, [n for n in component
                                       if sub.out_edges(n)]).solve()
        if best is None or ratio > best:
            best, best_cycle = ratio, cycle
    return best, best_cycle
