"""A directed graph with (latency, iteration-count) edge weights."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple


@dataclass(frozen=True)
class Edge:
    """A weighted edge.

    Attributes:
        src / dst: node identifiers.
        weight: latency in cycles.
        count: iteration count (0 intra-iteration, 1 loop-carried).
    """

    src: Hashable
    dst: Hashable
    weight: int
    count: int


class RatioGraph:
    """Adjacency-list graph for maximum-cycle-ratio computations."""

    def __init__(self) -> None:
        self._succ: Dict[Hashable, List[Edge]] = {}

    def add_node(self, node: Hashable) -> None:
        self._succ.setdefault(node, [])

    def add_edge(self, src: Hashable, dst: Hashable, weight: int,
                 count: int) -> None:
        """Add a directed edge; creates the endpoints if necessary."""
        if count < 0:
            raise ValueError("iteration count must be non-negative")
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].append(Edge(src, dst, weight, count))

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._succ)

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._succ.values())

    def out_edges(self, node: Hashable) -> List[Edge]:
        return self._succ[node]

    def edges(self) -> Iterable[Edge]:
        for edges in self._succ.values():
            yield from edges

    def subgraph(self, nodes: Iterable[Hashable]) -> "RatioGraph":
        """The induced subgraph on *nodes*."""
        node_set = set(nodes)
        sub = RatioGraph()
        for node in node_set:
            sub.add_node(node)
            for edge in self._succ.get(node, ()):
                if edge.dst in node_set:
                    sub.add_edge(edge.src, edge.dst, edge.weight, edge.count)
        return sub

    def strongly_connected_components(self) -> List[List[Hashable]]:
        """Tarjan's algorithm, iterative to avoid recursion limits."""
        index: Dict[Hashable, int] = {}
        lowlink: Dict[Hashable, int] = {}
        on_stack: Dict[Hashable, bool] = {}
        stack: List[Hashable] = []
        components: List[List[Hashable]] = []
        counter = 0

        for root in self._succ:
            if root in index:
                continue
            work = [(root, iter(self._succ[root]))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, edge_iter = work[-1]
                advanced = False
                for edge in edge_iter:
                    succ = edge.dst
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack[succ] = True
                        work.append((succ, iter(self._succ[succ])))
                        advanced = True
                        break
                    if on_stack.get(succ):
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def __repr__(self) -> str:
        return (f"<RatioGraph {self.num_nodes} nodes, "
                f"{self.num_edges} edges>")
