"""Brute-force maximum cycle ratio by simple-cycle enumeration.

Exponential: only suitable for the small random graphs used in tests,
where it provides ground truth for Howard's and Lawler's algorithms.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, List, Optional, Set

from repro.graph.core import Edge, RatioGraph


def bruteforce_max_cycle_ratio(graph: RatioGraph) -> Optional[Fraction]:
    """Enumerate all simple edge-cycles and return the maximum ratio.

    Simple cycles (no repeated intermediate node) are sufficient: any
    non-simple cycle decomposes into simple ones, and the best simple cycle
    has a ratio at least as large as any combination.
    """
    best: Optional[Fraction] = None
    nodes = graph.nodes
    order = {node: i for i, node in enumerate(nodes)}

    def dfs(start: Hashable, node: Hashable, visited: Set[Hashable],
            weight: int, count: int) -> None:
        nonlocal best
        for edge in graph.out_edges(node):
            if edge.dst == start:
                total_w = weight + edge.weight
                total_c = count + edge.count
                if total_c > 0:
                    ratio = Fraction(total_w, total_c)
                    if best is None or ratio > best:
                        best = ratio
                elif total_w > 0:
                    raise ValueError("positive cycle with zero count")
            elif order[edge.dst] > order[start] and edge.dst not in visited:
                visited.add(edge.dst)
                dfs(start, edge.dst, visited, weight + edge.weight,
                    count + edge.count)
                visited.remove(edge.dst)

    for start in nodes:
        dfs(start, start, {start}, 0, 0)
    return best
