"""Lawler's binary-search algorithm for the maximum cycle ratio.

Feasibility oracle: a cycle with ratio greater than λ exists iff the graph
with edge weights ``w - λ·t`` contains a positive-weight cycle, detected by
Bellman-Ford-style relaxation.  A float binary search brackets the answer,
which is then snapped to the unique rational with bounded denominator and
certified with exact arithmetic.

This serves as the reference implementation for Howard's algorithm and as
the comparison point of the MCR ablation bench.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.graph.core import Edge, RatioGraph


def _has_positive_cycle(graph: RatioGraph, lam: Fraction) -> bool:
    """True iff a cycle with Σw - λ·Σt > 0 exists (exact arithmetic)."""
    dist = {node: Fraction(0) for node in graph.nodes}
    edges = list(graph.edges())
    for _ in range(graph.num_nodes):
        changed = False
        for edge in edges:
            cand = dist[edge.src] + edge.weight - lam * edge.count
            if cand > dist[edge.dst]:
                dist[edge.dst] = cand
                changed = True
        if not changed:
            return False
    for edge in edges:
        if dist[edge.src] + edge.weight - lam * edge.count > dist[edge.dst]:
            return True
    return False


def _has_positive_cycle_float(graph: RatioGraph, lam: float) -> bool:
    dist = {node: 0.0 for node in graph.nodes}
    edges = list(graph.edges())
    for _ in range(graph.num_nodes):
        changed = False
        for edge in edges:
            cand = dist[edge.src] + edge.weight - lam * edge.count
            if cand > dist[edge.dst] + 1e-12:
                dist[edge.dst] = cand
                changed = True
        if not changed:
            return False
    return True


def _has_cycle(graph: RatioGraph) -> bool:
    return any(
        len(component) > 1
        or any(e.dst == component[0]
               for e in graph.out_edges(component[0]))
        for component in graph.strongly_connected_components())


def lawler_max_cycle_ratio(graph: RatioGraph) -> Optional[Fraction]:
    """Maximum cycle ratio via parametric search; None when acyclic.

    Raises:
        ValueError: if the graph has a cycle with zero iteration count and
            positive weight (the ratio would be unbounded).
    """
    if not _has_cycle(graph):
        return None

    max_count = sum(1 for e in graph.edges() if e.count > 0)
    max_count = max(1, min(max_count, graph.num_nodes))
    total_weight = sum(abs(e.weight) for e in graph.edges())

    hi = float(total_weight) + 1.0
    lo = -1.0
    if _has_positive_cycle_float(graph, hi):
        raise ValueError("unbounded cycle ratio (zero-count cycle with "
                         "positive weight)")
    # Two distinct achievable ratios differ by at least 1/max_count², so a
    # bracket narrower than that pins down the answer uniquely.
    precision = 1.0 / (4.0 * max_count * max_count)
    while hi - lo > precision:
        mid = (lo + hi) / 2.0
        if _has_positive_cycle_float(graph, mid):
            lo = mid
        else:
            hi = mid

    candidate = Fraction((lo + hi) / 2.0).limit_denominator(max_count)
    # Certify: no cycle exceeds the candidate, and some cycle attains a
    # ratio within the bracket (i.e. strictly above candidate - step).
    if _has_positive_cycle(graph, candidate):
        # Float search was off by a hair; fall back to exact refinement.
        candidate = _exact_refine(graph, candidate, max_count)
    step = Fraction(1, 2 * max_count * max_count)
    if not _has_positive_cycle(graph, candidate - step):
        candidate = _exact_refine(graph, Fraction(int(lo) - 1), max_count)
    return candidate


def _exact_refine(graph: RatioGraph, lower: Fraction,
                  max_count: int) -> Fraction:
    """Exact rational binary search (slow path, rarely taken)."""
    lo = lower
    hi = Fraction(sum(abs(e.weight) for e in graph.edges()) + 1)
    step = Fraction(1, 2 * max_count * max_count)
    while hi - lo > step:
        mid = (lo + hi) / 2
        if _has_positive_cycle(graph, mid):
            lo = mid
        else:
            hi = mid
    return ((lo + hi) / 2).limit_denominator(max_count)
