"""Command-line front end (the reproduction's ``facile.py`` equivalent).

Examples::

    facile predict --uarch SKL --mode loop --asm "add rax, rbx\\njne -5"
    facile predict --uarch RKL --hex 4801d875f4
    facile table1
    facile table2 --size 50 --uarch SKL
    facile table4 --size 50
    facile figure6 --size 100
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bhive.suite import default_suite
from repro.core.components import Component, ThroughputMode
from repro.core.counterfactual import idealized_speedup
from repro.core.model import Facile
from repro.eval import figures, tables
from repro.isa.block import BasicBlock
from repro.uarch import ALL_UARCHS, uarch_by_name


def _cmd_predict(args: argparse.Namespace) -> int:
    cfg = uarch_by_name(args.uarch)
    if args.hex:
        block = BasicBlock.from_bytes(bytes.fromhex(args.hex))
    elif args.asm:
        block = BasicBlock.from_asm(args.asm.replace("\\n", "\n"))
    elif args.file:
        with open(args.file) as handle:
            block = BasicBlock.from_asm(handle.read())
    else:
        print("one of --asm/--hex/--file is required", file=sys.stderr)
        return 2
    mode = (ThroughputMode.LOOP if args.mode == "loop"
            else ThroughputMode.UNROLLED)
    prediction = Facile(cfg).predict(block, mode)

    print(f"block ({len(block)} instructions, {block.num_bytes} bytes):")
    for line in block.text().splitlines():
        print(f"    {line}")
    print(f"µarch: {cfg.name} ({cfg.abbrev});  mode: {mode.value}")
    print(f"predicted throughput: {prediction.cycles:.2f} cycles/iteration")
    print("component bounds:")
    for comp, bound in prediction.bounds.items():
        marker = "  <-- bottleneck" if comp in prediction.bottlenecks else ""
        print(f"    {comp.value:<11} {float(bound):8.2f}{marker}")
    if prediction.fe_component is not None:
        print(f"front-end path: {prediction.fe_component.value}"
              + ("  (JCC erratum)" if prediction.jcc_affected else ""))
    if prediction.critical_instruction_indices:
        print("critical instructions: "
              f"{prediction.critical_instruction_indices}")
    print("counterfactual speedups (component idealized):")
    for comp in prediction.bounds:
        speedup = idealized_speedup(prediction, comp)
        if speedup is not None:
            print(f"    {comp.value:<11} {speedup:8.2f}x")
    return 0


def _suite(args: argparse.Namespace):
    return default_suite(args.size, args.seed)


def _cmd_table1(args: argparse.Namespace) -> int:
    del args
    print(tables.render_table1())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    uarchs = ([uarch_by_name(args.uarch)] if args.uarch
              else list(ALL_UARCHS))
    rows = tables.table2(_suite(args), uarchs)
    print(tables.render_table2(rows))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    rows = tables.table3(_suite(args))
    print(tables.render_table3(rows))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    print(tables.render_table4(tables.table4(_suite(args))))
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    for heatmap in figures.figure3_heatmaps(_suite(args)):
        print(f"== {heatmap.predictor} "
              f"(diagonal fraction {heatmap.diagonal_fraction:.2f})")
        for i, row in enumerate(heatmap.counts):
            if any(row):
                print(f"  measured [{heatmap.bins[i]:.2f},"
                      f"{heatmap.bins[i + 1]:.2f}): {row}")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    data = figures.figure4_component_times(_suite(args))
    for mode, results in data.items():
        print(f"== {mode}")
        for name, timing in results.items():
            print(f"  {name:<11} mean {timing.mean_ms:7.3f} ms   "
                  f"median {timing.median_ms:7.3f} ms")
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    data = figures.figure5_tool_times(_suite(args))
    print(f"{'tool':<13} {'TPU ms':>10} {'TPL ms':>10}")
    for name, times in data.items():
        print(f"{name:<13} {times['TPU']:>10.3f} {times['TPL']:>10.3f}")
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    print(figures.render_figure6(
        figures.figure6_bottleneck_evolution(_suite(args))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="facile",
        description="Facile reproduction: analytical basic-block "
                    "throughput prediction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    predict = sub.add_parser("predict", help="predict one block")
    predict.add_argument("--uarch", default="SKL")
    predict.add_argument("--mode", choices=("unrolled", "loop"),
                         default="loop")
    predict.add_argument("--asm", help="assembly text (\\n separated)")
    predict.add_argument("--hex", help="raw block bytes in hex")
    predict.add_argument("--file", help="file with assembly text")
    predict.set_defaults(func=_cmd_predict)

    for name, func, extra_uarch in (
            ("table1", _cmd_table1, False), ("table2", _cmd_table2, True),
            ("table3", _cmd_table3, False), ("table4", _cmd_table4, False),
            ("figure3", _cmd_figure3, False),
            ("figure4", _cmd_figure4, False),
            ("figure5", _cmd_figure5, False),
            ("figure6", _cmd_figure6, False)):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--size", type=int, default=50,
                         help="benchmark suite size")
        cmd.add_argument("--seed", type=int, default=2023)
        if extra_uarch:
            cmd.add_argument("--uarch", default=None,
                             help="restrict to one microarchitecture")
        cmd.set_defaults(func=func)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
