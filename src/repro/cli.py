"""Command-line front end (the reproduction's ``facile.py`` equivalent).

Examples::

    facile predict --uarch SKL --mode loop --asm "add rax, rbx\\njne -5"
    facile predict --uarch RKL --hex 4801d875f4
    facile table1
    facile table2 --size 50 --uarch SKL
    facile table2 --size 300 --workers 4
    facile table4 --size 50
    facile figure6 --size 100
    facile bench --size 80 --check
    facile serve --port 8000 --uarch SKL --workers 2
    facile hunt --seed 0 --budget 200 --generalize --out hunt.json
    facile generalize hunt.json --known prior.json --out families.json

Every subcommand is documented in ``README.md``; the service endpoints
behind ``facile serve`` are specified in ``docs/SERVICE.md``, and the
deviation-discovery campaigns behind ``facile hunt`` in
``docs/DISCOVERY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, List, Optional

from repro.bhive.suite import default_suite
from repro.discovery import (
    CampaignConfig,
    CampaignInterrupted,
    CheckpointError,
    CheckpointStore,
    DEFAULT_BUDGET,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_FRESH_WITNESSES,
    DEFAULT_GEN_SAMPLES,
    DEFAULT_MAX_FAMILIES,
    DEFAULT_MAX_WITNESSES,
    DEFAULT_MUTATION_RATE,
    DEFAULT_PREDICTORS,
    DEFAULT_THRESHOLD,
    campaign_report,
    generalize_report,
    load_known_families,
    render_json,
    render_markdown,
    run_campaign,
)
from repro.engine.batching import DEFAULT_MAX_BATCH, DEFAULT_MAX_WAIT_MS
from repro.service.server import DEFAULT_MAX_QUEUE
from repro.core.components import Component, ThroughputMode
from repro.core.counterfactual import idealized_speedup
from repro.core.model import Facile
from repro.engine import engine as engine_mod
from repro.engine import bench as bench_mod
from repro.engine.columnar import ColumnarCore, resolve_core
from repro.eval import figures, tables
from repro.isa.block import BasicBlock
from repro.obs import log as obslog
from repro.obs import metrics
from repro.uarch import ALL_UARCHS, uarch_by_name

#: Heartbeats (hunt/bench progress on stderr) fire at most this often.
HEARTBEAT_INTERVAL_SEC = 2.0


def _apply_log_level(args: argparse.Namespace) -> None:
    """Honor ``--log-level`` (overrides ``REPRO_LOG``) when present."""
    level = getattr(args, "log_level", None)
    if level is not None:
        obslog.set_level(level)


def _add_log_level_arg(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--log-level", choices=sorted(obslog.LEVELS),
                     default=None,
                     help="structured-log threshold on stderr "
                          "(overrides REPRO_LOG; default info)")


def _cmd_predict(args: argparse.Namespace) -> int:
    cfg = uarch_by_name(args.uarch)
    if args.hex:
        block = BasicBlock.from_bytes(bytes.fromhex(args.hex))
    elif args.asm:
        block = BasicBlock.from_asm(args.asm.replace("\\n", "\n"))
    elif args.file:
        with open(args.file) as handle:
            block = BasicBlock.from_asm(handle.read())
    else:
        print("one of --asm/--hex/--file is required", file=sys.stderr)
        return 2
    mode = (ThroughputMode.LOOP if args.mode == "loop"
            else ThroughputMode.UNROLLED)
    core = resolve_core(getattr(args, "core", None))
    predictor = ColumnarCore(cfg) if core == "columnar" else Facile(cfg)
    prediction = predictor.predict(block, mode)

    print(f"block ({len(block)} instructions, {block.num_bytes} bytes):")
    for line in block.text().splitlines():
        print(f"    {line}")
    print(f"µarch: {cfg.name} ({cfg.abbrev});  mode: {mode.value}")
    print(f"predicted throughput: {prediction.cycles:.2f} cycles/iteration")
    print("component bounds:")
    for comp, bound in prediction.bounds.items():
        marker = "  <-- bottleneck" if comp in prediction.bottlenecks else ""
        print(f"    {comp.value:<11} {float(bound):8.2f}{marker}")
    if prediction.fe_component is not None:
        print(f"front-end path: {prediction.fe_component.value}"
              + ("  (JCC erratum)" if prediction.jcc_affected else ""))
    if prediction.critical_instruction_indices:
        print("critical instructions: "
              f"{prediction.critical_instruction_indices}")
    print("counterfactual speedups (component idealized):")
    for comp in prediction.bounds:
        speedup = idealized_speedup(prediction, comp)
        if speedup is not None:
            print(f"    {comp.value:<11} {speedup:8.2f}x")
    return 0


def _suite(args: argparse.Namespace):
    if getattr(args, "workers", None) is not None:
        # Opt whole-suite evaluation into the engine's parallel path.
        engine_mod.set_default_workers(args.workers)
    return default_suite(args.size, args.seed)


def _cmd_table1(args: argparse.Namespace) -> int:
    del args
    print(tables.render_table1())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    uarchs = ([uarch_by_name(args.uarch)] if args.uarch
              else list(ALL_UARCHS))
    rows = tables.table2(_suite(args), uarchs)
    print(tables.render_table2(rows))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    rows = tables.table3(_suite(args))
    print(tables.render_table3(rows))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    print(tables.render_table4(tables.table4(_suite(args))))
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    for heatmap in figures.figure3_heatmaps(_suite(args)):
        print(f"== {heatmap.predictor} "
              f"(diagonal fraction {heatmap.diagonal_fraction:.2f})")
        for i, row in enumerate(heatmap.counts):
            if any(row):
                print(f"  measured [{heatmap.bins[i]:.2f},"
                      f"{heatmap.bins[i + 1]:.2f}): {row}")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    data = figures.figure4_component_times(_suite(args))
    for mode, results in data.items():
        print(f"== {mode}")
        for name, timing in results.items():
            print(f"  {name:<11} mean {timing.mean_ms:7.3f} ms   "
                  f"median {timing.median_ms:7.3f} ms")
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    data = figures.figure5_tool_times(_suite(args))
    print(f"{'tool':<13} {'TPU ms':>10} {'TPL ms':>10}")
    for name, times in data.items():
        print(f"{name:<13} {times['TPU']:>10.3f} {times['TPL']:>10.3f}")
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    print(figures.render_figure6(
        figures.figure6_bottleneck_evolution(_suite(args))))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf harness, persist BENCH_predict.json, gate regressions."""
    _apply_log_level(args)
    # Read the baseline before the run: output and baseline default to
    # the same committed file, which the run overwrites.
    baseline = bench_mod.load_bench_json(args.baseline) if args.check \
        else None
    uarchs = tuple(args.uarch) if args.uarch else bench_mod.DEFAULT_UARCHS
    try:
        for abbrev in uarchs:
            uarch_by_name(abbrev)
    except KeyError:
        print(f"unknown µarch {abbrev!r} (see `facile table1`)",
              file=sys.stderr)
        return 2
    payload = bench_mod.run_perf_harness(
        size=args.size, seed=args.seed, uarchs=uarchs,
        workers=(args.workers if args.workers is not None
                 else bench_mod.DEFAULT_WORKERS),
        include_parallel=not args.no_parallel,
        include_service=not args.no_service)
    print(bench_mod.render_bench(payload))
    bench_mod.write_bench_json(payload, args.output)
    print(f"wrote {args.output}")

    if not args.check:
        return 0
    if baseline is None:
        print(f"no baseline at {args.baseline}; skipping regression check")
        return 0
    if not bench_mod.comparable(payload, baseline):
        print(f"baseline {args.baseline} was measured under a different "
              f"configuration (suite {baseline.get('suite')} vs "
              f"{payload['suite']}, schema {baseline.get('schema')} vs "
              f"{payload['schema']}); skipping regression check",
              file=sys.stderr)
        return 0
    if bench_mod.gated_overlap(payload, baseline) == 0:
        print(f"baseline {args.baseline} shares no gated (µarch, mode, "
              "path) entries with this run; skipping regression check",
              file=sys.stderr)
        return 0
    regressions = bench_mod.find_regressions(payload, baseline,
                                             args.tolerance)
    if regressions:
        print(f"perf regressions (> {100 * args.tolerance:.0f}% below "
              "baseline):", file=sys.stderr)
        for abbrev, mode, path, cur, base in regressions:
            print(f"  {abbrev}/{mode}/{path}: {cur:.1f} blocks/s "
                  f"(baseline {base:.1f})", file=sys.stderr)
        return 1
    print("no perf regressions against baseline")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP prediction service until interrupted."""
    from repro.service.server import PredictionService

    _apply_log_level(args)
    logger = obslog.get_logger("serve")
    try:
        uarch_by_name(args.uarch)
    except KeyError:
        print(f"unknown µarch {args.uarch!r} (see `facile table1`)",
              file=sys.stderr)
        return 2
    try:
        service = PredictionService(
            uarch=args.uarch, host=args.host, port=args.port,
            n_workers=args.workers, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=(args.max_queue if args.max_queue > 0 else None),
            shard=not args.no_shard, cache_dir=args.cache_dir)
    except (ValueError, OSError) as exc:
        print(f"facile serve: {exc}", file=sys.stderr)
        return 2
    if args.warm is not None:
        from repro.engine.persist import load_corpus
        try:
            hexes = load_corpus(args.warm)
            warmed = service.warm(hexes, uarch=args.uarch)
        except (OSError, ValueError) as exc:
            print(f"facile serve: --warm {args.warm}: {exc}",
                  file=sys.stderr)
            service.close()
            return 2
        logger.info("warmed", pairs=warmed, corpus=args.warm)
    # Report the *effective* worker count: with --workers omitted the
    # engines inherit the process-wide default (REPRO_ENGINE_WORKERS /
    # set_default_workers), which the service resolves at construction.
    # The ``serving`` event is the machine-readable startup banner —
    # scripts (scripts/obs_smoke.py) parse it off stderr for the bound
    # port, so its field names are part of the observable surface.
    logger.info("serving",
                url=f"http://{service.host}:{service.port}",
                host=service.host, port=service.port,
                uarch=args.uarch,
                workers=service.n_workers,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                endpoints="GET /v1/health /v1/stats /v1/metrics; "
                          "POST /v1/predict /v1/predict/bulk "
                          "/v1/compare (+ deprecated unversioned "
                          "routes; docs/SERVICE.md)")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        logger.info("shutdown", reason="keyboard_interrupt")
    finally:
        service.close()
    return 0


def _load_known(path: Optional[str]):
    """Load ``--known`` families from a prior report file (or ()).

    Raises:
        ValueError: unreadable file, bad JSON, or malformed families.
    """
    if not path:
        return ()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise ValueError(str(exc)) from None
    return load_known_families(report)


def _hunt_heartbeat(uarchs: List[str]) -> Callable[[], None]:
    """A rate-limited campaign progress hook (structured, stderr-only).

    Reads the metrics registry the campaign increments anyway; counters
    are deltas against campaign start because the process-wide registry
    accumulates across runs.  stdout never sees a heartbeat — the hunt
    report there is byte-compared by CI.
    """
    logger = obslog.get_logger("hunt")
    started = time.monotonic()

    def totals() -> tuple:
        blocks = sum(metrics.counter_value(
            "facile_hunt_blocks_evaluated_total", uarch=u)
            for u in uarchs)
        deviations = sum(metrics.counter_value(
            "facile_hunt_deviations_total", uarch=u) for u in uarchs)
        return blocks, deviations

    base_blocks, base_deviations = totals()
    last = [started]

    def heartbeat() -> None:
        now = time.monotonic()
        if now - last[0] < HEARTBEAT_INTERVAL_SEC:
            return
        last[0] = now
        blocks, deviations = totals()
        logger.info("hunt_progress",
                    blocks_evaluated=int(blocks - base_blocks),
                    deviations=int(deviations - base_deviations),
                    elapsed_sec=round(now - started, 1))

    return heartbeat


def _cmd_hunt(args: argparse.Namespace) -> int:
    """Run a deviation-discovery campaign (see docs/DISCOVERY.md)."""
    _apply_log_level(args)
    modes = (("unrolled", "loop") if args.mode == "both"
             else (args.mode,))
    config = CampaignConfig(
        seed=args.seed, budget=args.budget,
        uarchs=tuple(args.uarchs), predictors=tuple(args.predictors),
        modes=modes, threshold=args.threshold,
        mutation_rate=args.mutation_rate,
        max_witnesses=args.max_witnesses,
        generalize=args.generalize,
        gen_samples=args.gen_samples,
        fresh_witnesses=args.fresh_witnesses,
        max_families=args.max_families,
        n_workers=args.workers)
    try:
        config.validate()
    except ValueError as exc:
        print(f"facile hunt: {exc}", file=sys.stderr)
        return 2
    if (args.known or args.coverage) and not args.generalize:
        print("facile hunt: --known/--coverage require --generalize",
              file=sys.stderr)
        return 2
    try:
        known = _load_known(args.known)
    except ValueError as exc:
        print(f"facile hunt: --known {args.known}: {exc}",
              file=sys.stderr)
        return 2
    checkpoint = None
    try:
        if args.resume:
            # --resume loads the cache; writes continue to --checkpoint
            # when given, else back to the same file.
            checkpoint = CheckpointStore.resume(
                args.resume, config, path=args.checkpoint or args.resume,
                every=args.checkpoint_every)
            print(f"facile hunt: resuming from {args.resume} "
                  f"({len(checkpoint)} cached evaluations)",
                  file=sys.stderr)
        elif args.checkpoint:
            checkpoint = CheckpointStore(args.checkpoint, config,
                                         every=args.checkpoint_every)
    except (CheckpointError, ValueError) as exc:
        print(f"facile hunt: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else _hunt_heartbeat(
        list(config.uarchs))
    interrupted = False
    try:
        result = run_campaign(config, checkpoint=checkpoint,
                              known=known,
                              coverage_corpus=args.coverage,
                              progress=progress)
    except CampaignInterrupted as exc:
        result = exc.result
        interrupted = True
    except OSError as exc:
        # The coverage corpus is read before any evaluation starts.
        print(f"facile hunt: {exc}", file=sys.stderr)
        return 2
    report = campaign_report(result)
    print(render_markdown(report), end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_json(report))
        print(f"\nwrote {args.out}" + (" (partial)" if interrupted
                                       else ""))
    if interrupted:
        print("facile hunt: interrupted — partial report above"
              + (f"; evaluations saved to {checkpoint.path}, continue "
                 f"with --resume {checkpoint.path}"
                 if checkpoint is not None else
                 " (run with --checkpoint to make interrupted hunts "
                 "resumable)"), file=sys.stderr)
        return 130
    return 0


def _cmd_generalize(args: argparse.Namespace) -> int:
    """Generalize the witnesses of an existing hunt report."""
    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"facile generalize: {args.report}: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(report, dict) or \
            not str(report.get("schema", "")).startswith(
                "facile-hunt-report/"):
        print(f"facile generalize: {args.report} is not a facile hunt "
              "report", file=sys.stderr)
        return 2
    try:
        known = _load_known(args.known)
    except ValueError as exc:
        print(f"facile generalize: --known {args.known}: {exc}",
              file=sys.stderr)
        return 2
    try:
        generalized = generalize_report(
            report, known=known, coverage_corpus=args.coverage,
            gen_samples=args.gen_samples,
            fresh_needed=args.fresh_witnesses,
            max_families=args.max_families, n_workers=args.workers)
    except (OSError, ValueError) as exc:
        print(f"facile generalize: {exc}", file=sys.stderr)
        return 2
    print(render_markdown(generalized), end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_json(generalized))
        print(f"\nwrote {args.out}")
    return 0


def _add_generalize_args(cmd: argparse.ArgumentParser, *,
                         standalone: bool) -> None:
    """The generalization knobs shared by ``hunt`` and ``generalize``."""
    if not standalone:
        cmd.add_argument("--generalize", action="store_true",
                         help="widen minimized witnesses into abstract "
                              "deviation families (ranked by suite "
                              "coverage; see docs/DISCOVERY.md)")
    cmd.add_argument("--known", default=None, metavar="REPORT.json",
                     help="a prior report whose families dedup "
                          "re-discovered deviations by subsumption")
    cmd.add_argument("--coverage", default=None, metavar="CORPUS",
                     help="hex-per-line or BHive-style CSV corpus for "
                          "family coverage (default: the deterministic "
                          "benchmark suite)")
    cmd.add_argument("--gen-samples", type=int,
                     default=DEFAULT_GEN_SAMPLES,
                     help="fresh samples validating each widening step "
                          f"(default {DEFAULT_GEN_SAMPLES})")
    cmd.add_argument("--fresh-witnesses", type=int,
                     default=DEFAULT_FRESH_WITNESSES,
                     help="deviating fresh witnesses required to "
                          "confirm a family "
                          f"(default {DEFAULT_FRESH_WITNESSES})")
    cmd.add_argument("--max-families", type=int,
                     default=DEFAULT_MAX_FAMILIES,
                     help="generalization attempts per µarch "
                          f"(default {DEFAULT_MAX_FAMILIES})")


def _workers_arg(value: str) -> int:
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if workers < 0:
        raise argparse.ArgumentTypeError(
            "worker count must be >= 0 (0 = one per CPU)")
    return workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="facile",
        description="Facile reproduction: analytical basic-block "
                    "throughput prediction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    predict = sub.add_parser("predict", help="predict one block")
    predict.add_argument("--uarch", default="SKL")
    predict.add_argument("--mode", choices=("unrolled", "loop"),
                         default="loop")
    predict.add_argument("--asm", help="assembly text (\\n separated)")
    predict.add_argument("--hex", help="raw block bytes in hex")
    predict.add_argument("--file", help="file with assembly text")
    predict.add_argument("--core", choices=("object", "columnar"),
                         default=None,
                         help="prediction core (default: "
                              "REPRO_ENGINE_CORE or columnar; both "
                              "produce identical output)")
    predict.set_defaults(func=_cmd_predict)

    for name, func, extra_uarch in (
            ("table1", _cmd_table1, False), ("table2", _cmd_table2, True),
            ("table3", _cmd_table3, False), ("table4", _cmd_table4, False),
            ("figure3", _cmd_figure3, False),
            ("figure4", _cmd_figure4, False),
            ("figure5", _cmd_figure5, False),
            ("figure6", _cmd_figure6, False)):
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--size", type=int, default=50,
                         help="benchmark suite size")
        cmd.add_argument("--seed", type=int, default=2023)
        cmd.add_argument("--workers", type=_workers_arg,
                         default=None,
                         help="engine worker processes for suite "
                              "evaluation (0 = one per CPU; default "
                              "serial)")
        if extra_uarch:
            cmd.add_argument("--uarch", default=None,
                             help="restrict to one microarchitecture")
        cmd.set_defaults(func=func)

    bench = sub.add_parser(
        "bench", help="run the perf-regression harness "
                      "(writes BENCH_predict.json)")
    bench.add_argument("--size", type=int, default=bench_mod.DEFAULT_SIZE)
    bench.add_argument("--seed", type=int, default=bench_mod.DEFAULT_SEED)
    bench.add_argument("--workers", type=_workers_arg,
                       default=bench_mod.DEFAULT_WORKERS,
                       help="pool size of the parallel path")
    bench.add_argument("--uarch", action="append", default=None,
                       help="µarch(s) to measure (repeatable; "
                            "default SKL)")
    bench.add_argument("--output", default="BENCH_predict.json")
    bench.add_argument("--baseline", default="BENCH_predict.json",
                       help="committed baseline for the regression gate")
    bench.add_argument("--tolerance", type=float,
                       default=bench_mod.DEFAULT_TOLERANCE,
                       help="allowed blocks/sec drop before failing")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero on regression vs the baseline")
    bench.add_argument("--no-parallel", action="store_true",
                       help="skip the parallel path (e.g. on CI without "
                            "fork)")
    bench.add_argument("--no-service", action="store_true",
                       help="skip the service-path measurement")
    _add_log_level_arg(bench)
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the HTTP prediction service "
                      "(see docs/SERVICE.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 = pick an ephemeral port)")
    serve.add_argument("--uarch", default="SKL",
                       help="default µarch for requests that omit one")
    serve.add_argument("--workers", type=_workers_arg, default=None,
                       help="engine worker processes per µarch "
                            "(0 = one per CPU; default serial)")
    serve.add_argument("--max-batch", type=int,
                       default=DEFAULT_MAX_BATCH,
                       help="micro-batch window size (requests)")
    serve.add_argument("--max-queue", type=int,
                       default=DEFAULT_MAX_QUEUE,
                       help="bound on queued requests per µarch before "
                            "the service sheds with 429 (default "
                            f"{DEFAULT_MAX_QUEUE}; 0 = unbounded)")
    serve.add_argument("--max-wait-ms", type=float,
                       default=DEFAULT_MAX_WAIT_MS,
                       help="micro-batch window timeout (milliseconds)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist analysis caches under DIR (one "
                            "<uarch>.facc file each; they survive "
                            "restarts)")
    serve.add_argument("--warm", default=None, metavar="CORPUS",
                       help="pre-analyze a block corpus (hex per line, "
                            "or a BHive-style CSV) before serving")
    serve.add_argument("--no-shard", action="store_true",
                       help="keep engines in-process instead of "
                            "per-µarch worker shards (debugging / "
                            "fork-hostile environments)")
    _add_log_level_arg(serve)
    serve.set_defaults(func=_cmd_serve)

    hunt = sub.add_parser(
        "hunt", help="run a deviation-discovery campaign "
                     "(see docs/DISCOVERY.md)")
    hunt.add_argument("--seed", type=int, default=0,
                      help="campaign seed (results are a pure function "
                           "of it and the other campaign options)")
    hunt.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                      help="candidate blocks per µarch (generated + "
                           "mutants)")
    hunt.add_argument("--uarchs", nargs="+", default=["SKL"],
                      metavar="UARCH",
                      help="µarch(s) to hunt on (default SKL)")
    hunt.add_argument("--predictors", nargs="+",
                      default=list(DEFAULT_PREDICTORS), metavar="NAME",
                      help="predictors to compare (the oracle simulator "
                           "always participates); default "
                           f"{' '.join(DEFAULT_PREDICTORS)}")
    hunt.add_argument("--mode", choices=("unrolled", "loop", "both"),
                      default="both",
                      help="throughput notion(s) to evaluate")
    hunt.add_argument("--threshold", type=float,
                      default=DEFAULT_THRESHOLD,
                      help="interestingness threshold (max pairwise "
                           "relative disagreement)")
    hunt.add_argument("--mutation-rate", type=float,
                      default=DEFAULT_MUTATION_RATE,
                      help="fraction of the budget spent mutating "
                           "interesting candidates")
    hunt.add_argument("--max-witnesses", type=int,
                      default=DEFAULT_MAX_WITNESSES,
                      help="deviations minimized per µarch")
    hunt.add_argument("--workers", type=_workers_arg, default=None,
                      help="engine worker processes (0 = one per CPU; "
                           "default serial; never changes results)")
    hunt.add_argument("--checkpoint", default=None,
                      help="write periodic evaluation checkpoints to "
                           "this file (canonical JSON; atomic writes)")
    hunt.add_argument("--checkpoint-every", type=int,
                      default=DEFAULT_CHECKPOINT_EVERY,
                      help="flush the checkpoint after this many newly "
                           "evaluated blocks (default "
                           f"{DEFAULT_CHECKPOINT_EVERY})")
    hunt.add_argument("--resume", default=None,
                      help="resume from a checkpoint file written by "
                           "--checkpoint; the campaign config must "
                           "match, and the report comes out identical "
                           "to an uninterrupted run")
    hunt.add_argument("--out", default=None,
                      help="write the canonical JSON report here")
    hunt.add_argument("--quiet", action="store_true",
                      help="suppress the periodic progress heartbeats "
                           "on stderr (the stdout report is identical "
                           "either way)")
    _add_log_level_arg(hunt)
    _add_generalize_args(hunt, standalone=False)
    hunt.set_defaults(func=_cmd_hunt)

    generalize = sub.add_parser(
        "generalize", help="widen the witnesses of an existing hunt "
                           "report into abstract deviation families "
                           "(see docs/DISCOVERY.md)")
    generalize.add_argument("report", metavar="REPORT.json",
                            help="a report written by `facile hunt "
                                 "--out` (v1 or v2)")
    generalize.add_argument("--out", default=None,
                            help="write the generalized canonical JSON "
                                 "report here")
    generalize.add_argument("--workers", type=_workers_arg, default=None,
                            help="engine worker processes (0 = one per "
                                 "CPU; default serial; never changes "
                                 "results)")
    _add_generalize_args(generalize, standalone=True)
    generalize.set_defaults(func=_cmd_generalize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse *argv* (default: ``sys.argv``) and run one subcommand.

    Returns the process exit code: 0 on success, 1 on a failed check
    (e.g. a ``bench`` regression), 2 on bad arguments.
    """
    args = build_parser().parse_args(argv)
    return args.func(args)


def main_entry() -> None:
    """Console-script entry point (the installed ``facile`` command)."""
    sys.exit(main())


if __name__ == "__main__":
    main_entry()
