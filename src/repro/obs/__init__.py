"""Unified observability: metrics registry, tracing, structured logging.

See ``docs/OBSERVABILITY.md`` for the metric-name catalog, the
``/v1/metrics`` exposition format, logging environment variables, and
tracing semantics.
"""
from . import log, metrics, trace
from .log import get_logger, set_level, slow_threshold_ms
from .metrics import (METRIC_CATALOG, REGISTRY, Registry, counter,
                      counter_value, exposition, gauge, histogram,
                      parse_exposition)
from .trace import TRACE_HEADER, Span, current_trace, new_trace_id, tracing

__all__ = [
    "log", "metrics", "trace",
    "get_logger", "set_level", "slow_threshold_ms",
    "METRIC_CATALOG", "REGISTRY", "Registry", "counter", "counter_value",
    "exposition", "gauge", "histogram", "parse_exposition",
    "TRACE_HEADER", "Span", "current_trace", "new_trace_id", "tracing",
]
