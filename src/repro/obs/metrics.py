"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The registry is the single observability substrate shared by the
service front end, the batch engine, the robustness layer, and the
campaign driver.  Design constraints, in order:

* **Near-zero cost when unobserved.**  An increment is a dict lookup
  plus an add under a per-metric lock; nothing allocates on the steady
  path and nothing is computed until a snapshot or exposition is
  requested.  The columnar prediction core is deliberately *not*
  instrumented at all (``docs/OBSERVABILITY.md``).
* **Deterministic.**  Histogram bucket bounds are fixed at
  construction (no adaptive resizing), snapshots sort every metric and
  label set, and the exposition text is a pure function of the
  registry state — two registries fed the same observations render
  byte-identical output.
* **Dependency-free.**  Prometheus text exposition format 0.0.4 is
  simple enough to emit (and parse, for the smoke checks) with the
  stdlib.

Metrics are identified by name and a fixed tuple of label *names*;
each observation supplies the label *values* as keyword arguments:

    from repro.obs import metrics
    requests = metrics.counter("facile_requests_total",
                               "Requests accepted", labels=("endpoint",))
    requests.inc(endpoint="/v1/predict")

Components that already keep their own counters (response cache,
micro-batcher, shard proxies) are pulled in at scrape time through
*collectors* — callables registered on the registry that return sample
families — so their hot paths stay untouched.
"""
from __future__ import annotations

import bisect
import re
import threading
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

__all__ = [
    "COUNTER", "GAUGE", "HISTOGRAM",
    "DURATION_BUCKETS_MS", "SIZE_BUCKETS",
    "Counter", "Gauge", "Histogram", "Registry", "Family",
    "REGISTRY", "counter", "gauge", "histogram", "counter_value",
    "METRIC_CATALOG", "exposition", "parse_exposition",
]

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

# Default bucket bounds, fixed forever: latencies in milliseconds
# (sub-100µs through 5s) and small-integer sizes (batch windows).
# Deterministic bucketing is load-bearing — tests and dashboards rely
# on bucket boundaries never moving between runs or hosts.
DURATION_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)

LabelValues = Tuple[str, ...]


class _Metric:
    """Shared plumbing: label validation and the sample map."""

    kind = ""

    def __init__(self, name: str, help_text: str = "",
                 labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> LabelValues:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[n]) for n in self.label_names)


class Counter(_Metric):
    """Monotonically increasing value, optionally labelled."""

    kind = COUNTER

    def __init__(self, name: str, help_text: str = "",
                 labels: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labels)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """A value that can go up and down (queue depths, uptime)."""

    kind = GAUGE

    def __init__(self, name: str, help_text: str = "",
                 labels: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labels)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        with self._lock:
            return sorted(self._values.items())


class Histogram(_Metric):
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    Buckets are upper bounds (``le`` semantics); an implicit +Inf
    bucket catches everything above the last bound.  Counts are stored
    per bucket (not cumulative) and cumulated only at render time.
    """

    kind = HISTOGRAM

    def __init__(self, name: str, help_text: str = "",
                 labels: Sequence[str] = (),
                 buckets: Sequence[float] = DURATION_BUCKETS_MS) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing")
        self.buckets: Tuple[float, ...] = bounds
        # key -> [per-bucket counts (len(buckets)+1), sum, count]
        self._data: Dict[LabelValues, list] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._data.get(key)
            if state is None:
                state = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._data[key] = state
            state[0][idx] += 1
            state[1] += value
            state[2] += 1

    def samples(self) -> List[Tuple[LabelValues, Tuple[List[int], float, int]]]:
        with self._lock:
            return sorted((key, (list(st[0]), st[1], st[2]))
                          for key, st in self._data.items())


class Family:
    """A collector-produced sample family (counter or gauge only)."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str,
                 samples: Iterable[Tuple[Mapping[str, object], float]]) -> None:
        if kind not in (COUNTER, GAUGE):
            raise ValueError(f"collector family {name!r} must be a "
                             f"counter or gauge, not {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples = [({str(k): str(v) for k, v in labels.items()}, float(value))
                        for labels, value in samples]


class Registry:
    """Get-or-create metric store plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Callable[[], Iterable[Family]]] = []

    # -- construction ------------------------------------------------

    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                if existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, not {tuple(labels)}")
                return existing
            metric = cls(name, help_text, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DURATION_BUCKETS_MS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labels,
                                   buckets=buckets)

    # -- collectors --------------------------------------------------

    def register_collector(self, fn: Callable[[], Iterable[Family]]) -> None:
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def unregister_collector(self, fn: Callable[[], Iterable[Family]]) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def _collected(self) -> List[Family]:
        with self._lock:
            collectors = list(self._collectors)
        families: List[Family] = []
        for fn in collectors:
            try:
                families.extend(fn())
            except Exception:
                # A scrape must never take the service down with it; a
                # broken collector simply contributes nothing.
                continue
        return families

    # -- reads -------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of a counter (0.0 if never observed)."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        if not isinstance(metric, Counter):
            raise ValueError(f"metric {name!r} is a {metric.kind}, "
                             "not a counter")
        try:
            return metric.value(**labels)
        except ValueError:
            return 0.0

    def snapshot(self) -> Dict[str, dict]:
        """Canonical JSON-able view of every metric and collector.

        Deterministic: metric names, label names, and label values are
        all sorted; histogram buckets keep their construction order.
        """
        out: Dict[str, dict] = {}
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            entry: dict = {"kind": metric.kind,
                           "labels": list(metric.label_names),
                           "values": []}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                for key, (counts, total, count) in metric.samples():
                    entry["values"].append({
                        "labels": dict(zip(metric.label_names, key)),
                        "counts": counts, "sum": total, "count": count})
            else:
                for key, value in metric.samples():
                    entry["values"].append({
                        "labels": dict(zip(metric.label_names, key)),
                        "value": value})
            out[name] = entry
        for family in self._collected():
            entry = out.setdefault(family.name, {
                "kind": family.kind, "labels": [], "values": []})
            for labels, value in sorted(family.samples,
                                        key=lambda s: sorted(s[0].items())):
                entry["values"].append({"labels": labels, "value": value})
        return out

    def counters_flat(self) -> Dict[str, float]:
        """Flat ``name{a=x}`` -> value map of all counters.

        The bench harness diffs two of these around each measured path
        to attach a per-path metrics snapshot to ``BENCH_predict.json``.
        """
        flat: Dict[str, float] = {}
        for name, entry in self.snapshot().items():
            if entry["kind"] != COUNTER:
                continue
            for sample in entry["values"]:
                flat[_sample_name(name, sample["labels"])] = sample["value"]
        return flat

    def exposition(self,
                   catalog: Optional[Mapping[str, Tuple[str, str]]] = None
                   ) -> str:
        """Render Prometheus text exposition format 0.0.4.

        With ``catalog``, every catalogued metric is emitted even when
        it has no samples yet (``# HELP``/``# TYPE`` headers, plus a
        zero sample for unlabelled counters/gauges) so a scrape always
        advertises the full documented surface.
        """
        with self._lock:
            metrics = dict(self._metrics)
        collected: Dict[str, Family] = {}
        for family in self._collected():
            if family.name in collected:
                collected[family.name].samples.extend(family.samples)
            else:
                collected[family.name] = family

        names = set(metrics) | set(collected)
        if catalog:
            names |= set(catalog)
        lines: List[str] = []
        for name in sorted(names):
            metric = metrics.get(name)
            family = collected.get(name)
            if metric is not None:
                kind, help_text = metric.kind, metric.help
            elif family is not None:
                kind, help_text = family.kind, family.help
            else:
                kind, help_text = catalog[name]  # type: ignore[index]
            if catalog and name in catalog and not help_text:
                help_text = catalog[name][1]
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            emitted = 0
            if isinstance(metric, Histogram):
                for key, (counts, total, count) in metric.samples():
                    emitted += 1
                    labels = dict(zip(metric.label_names, key))
                    cumulative = 0
                    for bound, n in zip(metric.buckets, counts):
                        cumulative += n
                        lines.append(_sample_line(
                            name + "_bucket",
                            dict(labels, le=_format_bound(bound)), cumulative))
                    cumulative += counts[-1]
                    lines.append(_sample_line(
                        name + "_bucket", dict(labels, le="+Inf"), cumulative))
                    lines.append(_sample_line(name + "_sum", labels, total))
                    lines.append(_sample_line(name + "_count", labels, count))
            elif metric is not None:
                for key, value in metric.samples():
                    emitted += 1
                    lines.append(_sample_line(
                        name, dict(zip(metric.label_names, key)), value))
            if family is not None:
                for labels, value in sorted(family.samples,
                                            key=lambda s: sorted(s[0].items())):
                    emitted += 1
                    lines.append(_sample_line(name, labels, value))
            if emitted == 0 and kind in (COUNTER, GAUGE):
                unlabelled = metric is None or not metric.label_names
                if unlabelled:
                    lines.append(_sample_line(name, {}, 0.0))
        return "\n".join(lines) + "\n"


# The process-wide default registry.  Counters accumulate for the
# process lifetime; tests needing isolation diff snapshots or build a
# private Registry().
REGISTRY = Registry()


def counter(name: str, help_text: str = "",
            labels: Sequence[str] = ()) -> Counter:
    return REGISTRY.counter(name, help_text, labels)


def gauge(name: str, help_text: str = "",
          labels: Sequence[str] = ()) -> Gauge:
    return REGISTRY.gauge(name, help_text, labels)


def histogram(name: str, help_text: str = "", labels: Sequence[str] = (),
              buckets: Sequence[float] = DURATION_BUCKETS_MS) -> Histogram:
    return REGISTRY.histogram(name, help_text, labels, buckets)


def counter_value(name: str, **labels: object) -> float:
    return REGISTRY.counter_value(name, **labels)


# ---------------------------------------------------------------------------
# The documented metric catalog.
#
# Every name here appears in docs/OBSERVABILITY.md (scripts/check_docs.py
# enforces the mapping in both directions) and in every /v1/metrics
# scrape, observed or not.  name -> (kind, help).
# ---------------------------------------------------------------------------

METRIC_CATALOG: Dict[str, Tuple[str, str]] = {
    "facile_requests_total":
        (COUNTER, "Requests accepted, by endpoint"),
    "facile_request_errors_total":
        (COUNTER, "Requests answered with an error envelope, by endpoint"),
    "facile_request_duration_ms":
        (HISTOGRAM, "Wall time per request, by route"),
    "facile_slow_requests_total":
        (COUNTER, "Requests slower than REPRO_SLOW_MS, by route"),
    "facile_span_duration_ms":
        (HISTOGRAM, "Wall time per traced span"),
    "facile_response_cache_hits_total":
        (COUNTER, "Response-fragment cache hits, by uarch"),
    "facile_response_cache_misses_total":
        (COUNTER, "Response-fragment cache misses, by uarch"),
    "facile_analysis_cache_hits_total":
        (COUNTER, "Analysis cache hits inside the serving shard, by uarch"),
    "facile_analysis_cache_misses_total":
        (COUNTER, "Analysis cache misses inside the serving shard, by uarch"),
    "facile_batcher_requests_total":
        (COUNTER, "Requests admitted to the micro-batcher, by uarch"),
    "facile_batcher_batches_total":
        (COUNTER, "Batch windows dispatched, by uarch"),
    "facile_batcher_shed_total":
        (COUNTER, "Requests shed at the admission gate, by uarch"),
    "facile_batcher_deadline_drops_total":
        (COUNTER, "Requests dropped in-queue past their deadline, by uarch"),
    "facile_batch_window_size":
        (HISTOGRAM, "Dispatched batch window sizes, by uarch"),
    "facile_shard_respawns_total":
        (COUNTER, "Shard worker processes respawned after a crash, by uarch"),
    "facile_shard_fallback_total":
        (COUNTER, "Blocks served by the in-process fallback engine, by uarch"),
    "facile_engine_pool_respawns_total":
        (COUNTER, "Engine worker pools torn down and respawned"),
    "facile_engine_tasks_retried_total":
        (COUNTER, "Engine tasks retried after a worker failure"),
    "facile_breaker_open_total":
        (COUNTER, "Circuit breaker trips (CLOSED/HALF_OPEN -> OPEN), by breaker"),
    "facile_retries_total":
        (COUNTER, "Retry backoffs taken (client transport and predictors)"),
    "facile_service_uptime_seconds":
        (GAUGE, "Seconds since the service started"),
    "facile_hunt_blocks_evaluated_total":
        (COUNTER, "Campaign blocks evaluated, by uarch"),
    "facile_hunt_deviations_total":
        (COUNTER, "Campaign deviations recorded, by uarch"),
    "facile_bench_paths_total":
        (COUNTER, "Bench harness paths measured, by path"),
}


def exposition(registry: Optional[Registry] = None,
               catalog: Optional[Mapping[str, Tuple[str, str]]] = None) -> str:
    """Exposition of ``registry`` (default: the process registry),
    padded with the documented catalog by default."""
    reg = REGISTRY if registry is None else registry
    return reg.exposition(METRIC_CATALOG if catalog is None else catalog)


# ---------------------------------------------------------------------------
# Text format helpers + a parser for the smoke checks
# ---------------------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_bound(bound: float) -> str:
    return repr(int(bound)) if bound == int(bound) else repr(bound)


def _format_value(value: float) -> str:
    if isinstance(value, int) or (isinstance(value, float)
                                  and value == int(value)):
        return repr(int(value))
    return repr(value)


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _sample_line(name: str, labels: Mapping[str, str], value: float) -> str:
    return f"{name}{_labels_text(labels)} {_format_value(value)}"


def _sample_name(name: str, labels: Mapping[str, str]) -> str:
    return name + _labels_text(labels)


_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:" + _LABEL_PAIR + r")(?:," + _LABEL_PAIR + r")*)?\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse Prometheus text exposition into
    ``{name: {"kind", "help", "samples": [(labels, value), ...]}}``.

    Strict enough for the CI smoke check: every sample line must parse,
    every sample must belong to a ``# TYPE``-declared family (histogram
    series accept the ``_bucket``/``_sum``/``_count`` suffixes), and
    values must be floats (``+Inf``/``NaN`` included).  Raises
    ``ValueError`` with the offending line on malformed input.
    """
    families: Dict[str, dict] = {}

    def family_for(sample_name: str) -> Optional[dict]:
        if sample_name in families:
            return families[sample_name]
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[:-len(suffix)]
                fam = families.get(base)
                if fam is not None and fam["kind"] == HISTOGRAM:
                    return fam
        return None

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            name = parts[2]
            fam = families.setdefault(
                name, {"kind": "untyped", "help": "", "samples": []})
            fam["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                    COUNTER, GAUGE, HISTOGRAM, "summary", "untyped"):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            fam = families.setdefault(
                parts[2], {"kind": "untyped", "help": "", "samples": []})
            fam["kind"] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        fam = family_for(name)
        if fam is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration")
        labels = {m.group(1): m.group(2)
                  for m in _LABEL_RE.finditer(match.group("labels") or "")}
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {raw_value!r}") from None
        fam["samples"].append((name, labels, value))
    return families
