"""Request tracing: trace ids and timed spans.

A **trace id** is minted once per request at the service front end
(16 hex characters), echoed back in the ``/v1/`` response ``meta`` and
in every error envelope, carried in the ``X-Trace-Id`` response header
on all routes, and threaded explicitly through the hop chain —
response cache, ``MicroBatcher`` entry, shard IPC payload — so a
worker-side structured log line can be joined with the client-visible
response (``docs/OBSERVABILITY.md``).

A **span** measures one hop's wall time into the shared
``facile_span_duration_ms`` histogram:

    from repro.obs.trace import Span
    with Span("shard.roundtrip"):
        ...

Trace ids are random (``os.urandom``), not deterministic: they exist
to join log lines with responses, and nothing byte-compared in CI
embeds them.
"""
from __future__ import annotations

import contextvars
import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from . import metrics

__all__ = ["TRACE_HEADER", "new_trace_id", "Span",
           "current_trace", "tracing"]

TRACE_HEADER = "X-Trace-Id"


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def _span_histogram() -> metrics.Histogram:
    return metrics.histogram(
        "facile_span_duration_ms",
        metrics.METRIC_CATALOG["facile_span_duration_ms"][1],
        labels=("span",))


class Span:
    """Context manager timing one named hop into the span histogram."""

    __slots__ = ("name", "trace", "duration_ms", "_start")

    def __init__(self, name: str, trace: Optional[str] = None) -> None:
        self.name = name
        self.trace = trace
        self.duration_ms: Optional[float] = None
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ms = (time.perf_counter() - self._start) * 1000.0
        _span_histogram().observe(self.duration_ms, span=self.name)


_current: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace", default=None)


def current_trace() -> Optional[str]:
    """The trace id bound to the current context, if any."""
    return _current.get()


@contextmanager
def tracing(trace: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``trace`` as the current trace id for the ``with`` body."""
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)
