"""Structured JSON logging for the service, shard, and campaign layers.

One JSON object per line on **stderr** — stdout stays reserved for
command output (reports, tables), which several CI jobs compare
byte-for-byte.  Every record carries ``ts``, ``level``, ``component``,
and ``event``; callers attach arbitrary extra fields:

    from repro.obs import log
    logger = log.get_logger("serve")
    logger.info("serving", host="127.0.0.1", port=8000)

Levels (``debug`` < ``info`` < ``warning`` < ``error`` < ``off``) come
from the ``REPRO_LOG`` environment variable, overridable at runtime by
``set_level`` (the ``--log-level`` CLI flag).  Shard worker processes
call ``refresh_level`` on startup so a level set in the parent's
environment survives the fork even when the module was imported before
the variable changed.

The slow-request log in the service front end is gated by
``REPRO_SLOW_MS`` (milliseconds, default 500; ``slow_threshold_ms``).
"""
from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Dict, Optional

__all__ = ["LEVELS", "DEFAULT_LEVEL", "Logger", "get_logger",
           "set_level", "refresh_level", "current_level",
           "level_enabled", "slow_threshold_ms",
           "DEFAULT_SLOW_MS"]

LEVELS: Dict[str, int] = {
    "debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100,
}
DEFAULT_LEVEL = "info"
DEFAULT_SLOW_MS = 500.0

ENV_LEVEL = "REPRO_LOG"
ENV_SLOW_MS = "REPRO_SLOW_MS"


def _level_from_env() -> int:
    name = os.environ.get(ENV_LEVEL, DEFAULT_LEVEL).strip().lower()
    return LEVELS.get(name, LEVELS[DEFAULT_LEVEL])


# Mutable so set_level/refresh_level affect every cached Logger.
_state = {"level": _level_from_env()}
_emit_lock = threading.Lock()


def set_level(name: str) -> None:
    """Set the process log level by name (the ``--log-level`` flag)."""
    key = name.strip().lower()
    if key not in LEVELS:
        raise ValueError(f"unknown log level {name!r} "
                         f"(choose from {', '.join(sorted(LEVELS))})")
    _state["level"] = LEVELS[key]


def refresh_level() -> None:
    """Re-read ``REPRO_LOG`` — called by forked shard workers, whose
    inherited module state predates any env change in the parent."""
    _state["level"] = _level_from_env()


def current_level() -> str:
    for name, value in LEVELS.items():
        if value == _state["level"]:
            return name
    return DEFAULT_LEVEL


def level_enabled(name: str) -> bool:
    return LEVELS[name] >= _state["level"]


def slow_threshold_ms() -> float:
    """The slow-request threshold (``REPRO_SLOW_MS``, ms)."""
    raw = os.environ.get(ENV_SLOW_MS)
    if raw is None:
        return DEFAULT_SLOW_MS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SLOW_MS
    return value if value > 0 else DEFAULT_SLOW_MS


class Logger:
    """A named component logger emitting one JSON object per line."""

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if LEVELS[level] < _state["level"]:
            return
        record = {"ts": round(time.time(), 3), "level": level,
                  "component": self.component, "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"), default=str)
        with _emit_lock:
            sys.stderr.write(line + "\n")
            sys.stderr.flush()

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


_loggers: Dict[str, Logger] = {}
_loggers_lock = threading.Lock()


def get_logger(component: str) -> Logger:
    with _loggers_lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = _loggers[component] = Logger(component)
        return logger
