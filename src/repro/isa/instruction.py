"""Concrete instruction instances (template + operands + encoding)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.operands import ImmOperand, MemOperand, Operand, RegOperand
from repro.isa.registers import FLAGS, Register
from repro.isa.templates import Access, InstrTemplate, SlotKind


@dataclass(eq=False)
class Instruction:
    """A fully-specified instruction instance.

    Instances are compared by identity: two occurrences of the same
    instruction in a block are distinct nodes for dependence analysis.

    Attributes:
        template: the instruction form.
        operands: concrete operands, one per template slot.
        raw: the byte encoding.
        opcode_offset: offset of the first nominal-opcode byte, i.e. the
            first byte that is not a legacy or REX prefix.  This is the
            quantity the predecoder model's ``O(b)`` definition relies on.
    """

    template: InstrTemplate
    operands: Tuple[Operand, ...]
    raw: bytes
    opcode_offset: int

    @classmethod
    def create(cls, template: InstrTemplate,
               operands: Tuple[Operand, ...]) -> "Instruction":
        """Build an instruction and compute its encoding."""
        from repro.isa.encoder import encode_parts
        raw, opcode_offset = encode_parts(template, operands)
        return cls(template, tuple(operands), raw, opcode_offset)

    # ------------------------------------------------------------------
    # Encoding-derived facts consumed by the front-end models.
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Instruction length in bytes."""
        return len(self.raw)

    @property
    def has_lcp(self) -> bool:
        """True when the encoding has a length-changing prefix."""
        return self.template.has_lcp

    @property
    def mnemonic(self) -> str:
        return self.template.mnemonic

    @property
    def is_branch(self) -> bool:
        return self.template.is_branch

    @property
    def is_cond_branch(self) -> bool:
        return self.template.is_cond_branch

    # ------------------------------------------------------------------
    # Dataflow facts consumed by the dependence model.
    # ------------------------------------------------------------------

    def mem_operand(self) -> Optional[MemOperand]:
        """Return the memory operand, if the instruction has one."""
        for op in self.operands:
            if isinstance(op, MemOperand):
                return op
        return None

    def is_zeroing_idiom(self) -> bool:
        """True for dependency-breaking zero idioms (xor r,r; pxor x,x)."""
        if self.mnemonic in ("xor", "pxor", "sub", "psubd"):
            regs = [op.reg for op in self.operands
                    if isinstance(op, RegOperand)]
            if len(regs) == 2 and regs[0].name == regs[1].name:
                return self.mnemonic in ("xor", "pxor", "psubd")
        if self.mnemonic in ("vpxor", "vsubps"):
            regs = [op.reg for op in self.operands
                    if isinstance(op, RegOperand)]
            if (len(regs) == 3 and regs[1].name == regs[2].name
                    and self.mnemonic == "vpxor"):
                return True
        return False

    def is_reg_move(self) -> bool:
        """True for register-to-register moves (elimination candidates)."""
        return (self.template.uop_archetype in ("mov_rr", "vec_mov")
                and all(isinstance(op, RegOperand) for op in self.operands))

    def regs_read(self) -> List[Register]:
        """Root registers read, including addressing and flags inputs.

        Zero idioms read nothing: the renamer recognises them as
        dependency-breaking.
        """
        if self.is_zeroing_idiom():
            return []
        regs: List[Register] = []
        for slot, op in zip(self.template.slots, self.operands):
            if isinstance(op, RegOperand) and slot.access.reads:
                regs.append(op.reg.root())
            elif isinstance(op, MemOperand):
                regs.extend(r.root() for r in op.address_regs())
        if self.template.reads_flags:
            regs.append(FLAGS)
        regs.extend(self._implicit_reads())
        return regs

    def regs_written(self) -> List[Register]:
        """Root registers written, including flags outputs."""
        regs: List[Register] = []
        for slot, op in zip(self.template.slots, self.operands):
            if isinstance(op, RegOperand) and slot.access.writes:
                regs.append(op.reg.root())
        if self.template.writes_flags:
            regs.append(FLAGS)
        regs.extend(self._implicit_writes())
        return regs

    def _implicit_reads(self) -> List[Register]:
        from repro.isa.registers import register_by_name
        mnem = self.mnemonic
        if mnem in ("mul", "div"):
            regs = [register_by_name("rax")]
            if mnem == "div":
                regs.append(register_by_name("rdx"))
            return regs
        if mnem in ("cdq", "cqo"):
            return [register_by_name("rax")]
        if self.template.uop_archetype == "shift_cl":
            return [register_by_name("rcx")]
        return []

    def _implicit_writes(self) -> List[Register]:
        from repro.isa.registers import register_by_name
        mnem = self.mnemonic
        if mnem in ("mul", "div"):
            return [register_by_name("rax"), register_by_name("rdx")]
        if mnem == "cdq":
            return [register_by_name("rdx")]
        if mnem == "cqo":
            return [register_by_name("rdx")]
        return []

    def text(self) -> str:
        """Render as assembly text."""
        if not self.operands:
            return self.mnemonic
        ops = ", ".join(str(op) for op in self.operands)
        return f"{self.mnemonic} {ops}"

    def __str__(self) -> str:
        return self.text()

    def __repr__(self) -> str:
        return f"<Instruction {self.text()!r} len={self.length}>"
