"""Byte-level encoder for the x86-64 subset.

The encoder follows the real x86-64 instruction format: legacy prefixes,
REX, VEX, opcode (with escapes), ModRM, SIB, displacement, immediate.
Instruction lengths and prefix counts are therefore realistic, which is
what the predecoder model depends on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.operands import ImmOperand, MemOperand, Operand, RegOperand
from repro.isa.registers import Register
from repro.isa.templates import Encoding, InstrTemplate, SlotKind


class EncodeError(Exception):
    """Raised when operands cannot be encoded for a template."""


def _operand_reg(op: Operand) -> Optional[Register]:
    return op.reg if isinstance(op, RegOperand) else None


def _fits_disp8(disp: int) -> bool:
    return -128 <= disp <= 127


def _mem_modrm(mem: MemOperand) -> Tuple[int, int, List[int], bytes]:
    """Encode a memory operand.

    Returns:
        (mod, rm, sib_bytes, disp_bytes); rm/base/index values are the low
        3 bits, extension bits are handled by the caller via REX/VEX.
    """
    if mem.is_rip_relative:
        disp = mem.disp.to_bytes(4, "little", signed=True)
        return 0b00, 0b101, [], disp

    base, index = mem.base, mem.index
    if base is None:
        # Absolute or index-only: SIB with base=101, mandatory disp32.
        index_enc = index.enc & 7 if index is not None else 0b100
        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
        sib = (scale_bits << 6) | (index_enc << 3) | 0b101
        disp = mem.disp.to_bytes(4, "little", signed=True)
        return 0b00, 0b100, [sib], disp

    needs_sib = index is not None or (base.enc & 7) == 0b100
    if mem.disp == 0 and (base.enc & 7) != 0b101:
        mod, disp = 0b00, b""
    elif _fits_disp8(mem.disp):
        mod, disp = 0b01, mem.disp.to_bytes(1, "little", signed=True)
    else:
        mod, disp = 0b10, mem.disp.to_bytes(4, "little", signed=True)

    if needs_sib:
        index_enc = index.enc & 7 if index is not None else 0b100
        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
        sib = (scale_bits << 6) | (index_enc << 3) | (base.enc & 7)
        return mod, 0b100, [sib], disp
    return mod, base.enc & 7, [], disp


def _needs_rex(template: InstrTemplate,
               operands: Tuple[Operand, ...]) -> bool:
    enc = template.encoding
    if enc.rex_w:
        return True
    for op in operands:
        if isinstance(op, RegOperand):
            if op.reg.needs_rex or op.reg.is_byte_rex_only:
                return True
        elif isinstance(op, MemOperand):
            for reg in op.address_regs():
                if reg.needs_rex:
                    return True
    return False


def encode_parts(template: InstrTemplate,
                 operands: Tuple[Operand, ...]) -> Tuple[bytes, int]:
    """Encode *operands* for *template*.

    Returns:
        (raw_bytes, opcode_offset) where opcode_offset is the index of the
        first nominal-opcode byte (first byte past legacy/REX prefixes).
    """
    enc = template.encoding
    if enc.fixed_bytes is not None:
        raw = enc.fixed_bytes
        offset = 0
        while raw[offset] == 0x66:
            offset += 1
        return raw, offset

    if len(operands) != len(template.slots):
        raise EncodeError(
            f"{template.name} expects {len(template.slots)} operands, "
            f"got {len(operands)}")

    prefixes: List[int] = []
    if enc.legacy_66:
        prefixes.append(0x66)
    if enc.simd_prefix is not None:
        prefixes.append(enc.simd_prefix)

    if enc.vex is not None:
        return _encode_vex(template, operands, prefixes)

    rex_r = rex_x = rex_b = 0
    body: List[int] = []

    opcode = enc.opcode
    modrm_bytes: List[int] = []
    sib_bytes: List[int] = []
    disp_bytes = b""

    if enc.reg_in_opcode:
        reg_op = operands[0]
        assert isinstance(reg_op, RegOperand)
        opcode = enc.opcode | (reg_op.reg.enc & 7)
        rex_b = reg_op.reg.enc >> 3

    if enc.modrm is not None:
        rm_op = operands[enc.modrm_rm_slot]
        if enc.modrm == "r":
            reg_op = operands[enc.modrm_reg_slot]
            assert isinstance(reg_op, RegOperand)
            reg_field = reg_op.reg.enc
            rex_r = reg_field >> 3
        else:
            reg_field = int(enc.modrm)

        if isinstance(rm_op, RegOperand):
            mod, rm = 0b11, rm_op.reg.enc & 7
            rex_b = rm_op.reg.enc >> 3
        else:
            assert isinstance(rm_op, MemOperand)
            mod, rm, sib_bytes, disp_bytes = _mem_modrm(rm_op)
            if rm_op.base is not None and not rm_op.is_rip_relative:
                rex_b = rm_op.base.enc >> 3
            if rm_op.index is not None:
                rex_x = rm_op.index.enc >> 3
        modrm_bytes = [(mod << 6) | ((reg_field & 7) << 3) | rm]

    rex_needed = _needs_rex(template, operands) or rex_r or rex_x or rex_b
    rex: List[int] = []
    if rex_needed:
        rex = [0x40 | (int(enc.rex_w) << 3) | (rex_r << 2)
               | (rex_x << 1) | rex_b]

    body.extend(enc.esc)
    body.append(opcode)
    body.extend(modrm_bytes)
    body.extend(sib_bytes)

    imm_bytes = b""
    if enc.imm_width:
        imm_op = next(op for op in operands if isinstance(op, ImmOperand))
        if imm_op.width != enc.imm_width:
            raise EncodeError(
                f"{template.name}: immediate width {imm_op.width} != "
                f"{enc.imm_width}")
        imm_bytes = imm_op.encoded_bytes()

    raw = bytes(prefixes) + bytes(rex) + bytes(body) + disp_bytes + imm_bytes
    opcode_offset = len(prefixes) + len(rex)
    return raw, opcode_offset


def _encode_vex(template: InstrTemplate, operands: Tuple[Operand, ...],
                prefixes: List[int]) -> Tuple[bytes, int]:
    """Encode a VEX-prefixed instruction."""
    enc = template.encoding
    vex = enc.vex
    assert vex is not None and enc.modrm == "r"

    rm_op = operands[enc.modrm_rm_slot]
    reg_op = operands[enc.modrm_reg_slot]
    assert isinstance(reg_op, RegOperand)

    vvvv = 0
    if vex.has_vvvv:
        # Three-operand form: vvvv encodes the slot that is neither
        # modrm.reg nor modrm.rm (the second source).
        other = [i for i in range(len(operands))
                 if i not in (enc.modrm_rm_slot, enc.modrm_reg_slot)]
        assert len(other) == 1
        vvvv_op = operands[other[0]]
        assert isinstance(vvvv_op, RegOperand)
        vvvv = vvvv_op.reg.enc

    rex_r = reg_op.reg.enc >> 3
    rex_x = rex_b = 0
    sib_bytes: List[int] = []
    disp_bytes = b""
    if isinstance(rm_op, RegOperand):
        mod, rm = 0b11, rm_op.reg.enc & 7
        rex_b = rm_op.reg.enc >> 3
    else:
        assert isinstance(rm_op, MemOperand)
        mod, rm, sib_bytes, disp_bytes = _mem_modrm(rm_op)
        if rm_op.base is not None and not rm_op.is_rip_relative:
            rex_b = rm_op.base.enc >> 3
        if rm_op.index is not None:
            rex_x = rm_op.index.enc >> 3

    l_bit = 1 if vex.l == 256 else 0
    w_bit = vex.w or 0
    two_byte_ok = (rex_x == 0 and rex_b == 0 and vex.mmm == 1
                   and (vex.w is None or vex.w == 0))
    vex_bytes: List[int]
    if two_byte_ok:
        vex_bytes = [0xC5,
                     ((1 - rex_r) << 7) | ((~vvvv & 0xF) << 3)
                     | (l_bit << 2) | vex.pp]
    else:
        vex_bytes = [0xC4,
                     ((1 - rex_r) << 7) | ((1 - rex_x) << 6)
                     | ((1 - rex_b) << 5) | vex.mmm,
                     (w_bit << 7) | ((~vvvv & 0xF) << 3)
                     | (l_bit << 2) | vex.pp]

    modrm = (mod << 6) | ((reg_op.reg.enc & 7) << 3) | rm
    raw = (bytes(prefixes) + bytes(vex_bytes) + bytes([enc.opcode, modrm])
           + bytes(sib_bytes) + disp_bytes)
    # The VEX prefix is treated as the start of the nominal opcode.
    return raw, len(prefixes)


def encode(instr) -> bytes:
    """Return the byte encoding of an :class:`Instruction`."""
    return instr.raw


def encode_block(instructions) -> bytes:
    """Concatenate the encodings of a sequence of instructions."""
    return b"".join(i.raw for i in instructions)
