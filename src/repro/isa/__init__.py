"""x86-64 instruction-set substrate.

This package replaces the Intel XED disassembler used by the original Facile
implementation.  It provides a table-driven subset of x86-64 with a
byte-accurate encoder, a decoder, and a small text assembler.  The encoding
rules (legacy prefixes, REX, VEX, ModRM, SIB, displacement and immediate
sizes) follow the real instruction format, so the facts the throughput
models consume — instruction lengths, prefix/opcode byte offsets, and
length-changing-prefix (LCP) markers — are faithful.

Public entry points:

* :class:`~repro.isa.block.BasicBlock` — a decoded basic block.
* :func:`~repro.isa.assembler.assemble` — text assembly to instructions.
* :func:`~repro.isa.encoder.encode` / :func:`~repro.isa.decoder.decode` —
  byte-level round trip.
"""

from repro.isa.registers import Register, RegisterKind, register_by_name
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.isa.templates import (
    InstrTemplate,
    OperandSlot,
    all_templates,
    template_by_name,
)
from repro.isa.instruction import Instruction
from repro.isa.encoder import encode, encode_block
from repro.isa.decoder import DecodeError, decode, decode_block
from repro.isa.assembler import AssemblyError, assemble, assemble_line
from repro.isa.block import BasicBlock

__all__ = [
    "AssemblyError",
    "BasicBlock",
    "DecodeError",
    "ImmOperand",
    "InstrTemplate",
    "Instruction",
    "MemOperand",
    "OperandSlot",
    "RegOperand",
    "Register",
    "RegisterKind",
    "all_templates",
    "assemble",
    "assemble_line",
    "decode",
    "decode_block",
    "encode",
    "encode_block",
    "register_by_name",
    "template_by_name",
]
