"""Instruction templates for the x86-64 subset.

A template describes one *form* of an instruction (mnemonic + operand
signature + encoding).  Templates are the unit the uops database is keyed
by, mirroring how uops.info keys its measurements by instruction variant.

The template table is built programmatically at import time; use
:func:`all_templates` / :func:`template_by_name` to access it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class SlotKind(enum.Enum):
    """Kind of an operand slot."""

    REG = "reg"
    MEM = "mem"
    IMM = "imm"


class Access(enum.Enum):
    """How an instruction accesses an operand slot."""

    R = "r"
    W = "w"
    RW = "rw"

    @property
    def reads(self) -> bool:
        return self in (Access.R, Access.RW)

    @property
    def writes(self) -> bool:
        return self in (Access.W, Access.RW)


@dataclass(frozen=True)
class OperandSlot:
    """One operand slot of a template.

    Attributes:
        kind: register, memory, or immediate.
        width: operand width in bits.
        access: read/write behaviour.
        regclass: "gpr" or "vec" for register/memory slots.
    """

    kind: SlotKind
    width: int
    access: Access
    regclass: str = "gpr"


@dataclass(frozen=True)
class VexSpec:
    """VEX prefix parameters.

    Attributes:
        l: vector length (128 or 256).
        pp: mandatory-prefix field (0: none, 1: 66, 2: F3, 3: F2).
        mmm: opcode-map field (1: 0F, 2: 0F38, 3: 0F3A).
        w: VEX.W bit, or None when the instruction ignores W (WIG).
        has_vvvv: True for three-operand (NDS) forms.
    """

    l: int
    pp: int
    mmm: int
    w: Optional[int] = None
    has_vvvv: bool = True


@dataclass(frozen=True)
class Encoding:
    """Encoding recipe for a template.

    Attributes:
        opcode: the opcode byte (after any escape bytes).
        esc: escape bytes, e.g. ``(0x0F,)``; empty for one-byte opcodes.
        simd_prefix: mandatory SIMD prefix (0x66/0xF2/0xF3) or None.
        legacy_66: emit the 0x66 operand-size prefix (16-bit forms).
        rex_w: set REX.W (64-bit operand size).
        modrm: None (no ModRM), "r" (reg+rm form), or an opcode-extension
            digit "0".."7".
        modrm_rm_slot: index of the operand slot encoded in ModRM.rm.
        modrm_reg_slot: index of the slot encoded in ModRM.reg (reg forms).
        reg_in_opcode: low 3 opcode bits carry a register index.
        imm_width: immediate width in bits (0 when there is none).
        vex: VEX parameters for AVX forms, or None.
        fixed_bytes: a fully fixed byte sequence (multi-byte NOPs).
    """

    opcode: int
    esc: Tuple[int, ...] = ()
    simd_prefix: Optional[int] = None
    legacy_66: bool = False
    rex_w: bool = False
    modrm: Optional[str] = None
    modrm_rm_slot: int = 0
    modrm_reg_slot: int = 1
    reg_in_opcode: bool = False
    imm_width: int = 0
    vex: Optional[VexSpec] = None
    fixed_bytes: Optional[bytes] = None


@dataclass(frozen=True)
class InstrTemplate:
    """One instruction form.

    Attributes:
        name: unique identifier, e.g. ``"ADD_R64_R64"``.
        mnemonic: assembly mnemonic, e.g. ``"add"``.
        slots: operand slots in assembly order (destination first).
        encoding: byte-encoding recipe.
        uop_archetype: key into the uops database's archetype tables.
        writes_flags / reads_flags: architectural flags behaviour.
        is_branch / is_cond_branch: control-flow classification.
        fusible_first: macro-fusion class when this instruction can be the
            first of a fused pair ("test", "cmp", or "incdec").
        feature: ISA extension required ("base", "avx", "avx2", "fma").
        cc: condition-code nibble for Jcc/SETcc/CMOVcc forms.
    """

    name: str
    mnemonic: str
    slots: Tuple[OperandSlot, ...]
    encoding: Encoding
    uop_archetype: str
    writes_flags: bool = False
    reads_flags: bool = False
    is_branch: bool = False
    is_cond_branch: bool = False
    fusible_first: Optional[str] = None
    feature: str = "base"
    cc: Optional[int] = None

    @property
    def has_lcp(self) -> bool:
        """True when the encoding carries a length-changing prefix.

        A 0x66 operand-size prefix changes the immediate length (imm32 →
        imm16), which forces the predecoder's slow length-decoding path.
        """
        return self.encoding.legacy_66 and self.encoding.imm_width == 16

    @property
    def has_mem_operand(self) -> bool:
        return any(s.kind is SlotKind.MEM for s in self.slots)

    @property
    def loads(self) -> bool:
        return any(s.kind is SlotKind.MEM and s.access.reads
                   for s in self.slots)

    @property
    def stores(self) -> bool:
        return any(s.kind is SlotKind.MEM and s.access.writes
                   for s in self.slots)


_TEMPLATES: Dict[str, InstrTemplate] = {}


def _reg(width: int, access: Access, regclass: str = "gpr") -> OperandSlot:
    return OperandSlot(SlotKind.REG, width, access, regclass)


def _mem(width: int, access: Access, regclass: str = "gpr") -> OperandSlot:
    return OperandSlot(SlotKind.MEM, width, access, regclass)


def _imm(width: int) -> OperandSlot:
    return OperandSlot(SlotKind.IMM, width, Access.R)


def _register(t: InstrTemplate) -> None:
    if t.name in _TEMPLATES:
        raise ValueError(f"duplicate template {t.name}")
    _TEMPLATES[t.name] = t


# ---------------------------------------------------------------------------
# Integer ALU group: add/or/adc/sbb/and/sub/xor/cmp share an encoding scheme.
# ---------------------------------------------------------------------------

_ALU_GROUP = {
    # mnemonic: (opcode_mr, opcode_rm, /digit, archetype, fusible_first)
    "add": (0x01, 0x03, 0, "alu", "cmp"),
    "or": (0x09, 0x0B, 1, "alu", None),
    "adc": (0x11, 0x13, 2, "adc", None),
    "sbb": (0x19, 0x1B, 3, "adc", None),
    "and": (0x21, 0x23, 4, "alu", "test"),
    "sub": (0x29, 0x2B, 5, "alu", "cmp"),
    "xor": (0x31, 0x33, 6, "alu", None),
    "cmp": (0x39, 0x3B, 7, "alu", "cmp"),
}


def _build_alu_group() -> None:
    for mnem, (op_mr, op_rm, digit, arch, fuse) in _ALU_GROUP.items():
        reads_flags = arch == "adc"
        is_cmp = mnem == "cmp"
        dest_access = Access.R if is_cmp else Access.RW
        for width, rex_w in ((64, True), (32, False)):
            w = f"R{width}"
            _register(InstrTemplate(
                name=f"{mnem.upper()}_{w}_{w}",
                mnemonic=mnem,
                slots=(_reg(width, dest_access), _reg(width, Access.R)),
                encoding=Encoding(op_mr, rex_w=rex_w, modrm="r",
                                  modrm_rm_slot=0, modrm_reg_slot=1),
                uop_archetype=arch,
                writes_flags=True, reads_flags=reads_flags,
                fusible_first=fuse,
            ))
            _register(InstrTemplate(
                name=f"{mnem.upper()}_{w}_IMM8",
                mnemonic=mnem,
                slots=(_reg(width, dest_access), _imm(8)),
                encoding=Encoding(0x83, rex_w=rex_w, modrm=str(digit),
                                  modrm_rm_slot=0, imm_width=8),
                uop_archetype=arch,
                writes_flags=True, reads_flags=reads_flags,
                fusible_first=fuse,
            ))
            _register(InstrTemplate(
                name=f"{mnem.upper()}_{w}_IMM32",
                mnemonic=mnem,
                slots=(_reg(width, dest_access), _imm(32)),
                encoding=Encoding(0x81, rex_w=rex_w, modrm=str(digit),
                                  modrm_rm_slot=0, imm_width=32),
                uop_archetype=arch,
                writes_flags=True, reads_flags=reads_flags,
                fusible_first=fuse,
            ))
            _register(InstrTemplate(
                name=f"{mnem.upper()}_{w}_M{width}",
                mnemonic=mnem,
                slots=(_reg(width, dest_access), _mem(width, Access.R)),
                encoding=Encoding(op_rm, rex_w=rex_w, modrm="r",
                                  modrm_rm_slot=1, modrm_reg_slot=0),
                uop_archetype="cmp_load" if is_cmp else "alu_load",
                writes_flags=True, reads_flags=reads_flags,
                fusible_first=fuse,
            ))
            if not is_cmp:
                _register(InstrTemplate(
                    name=f"{mnem.upper()}_M{width}_{w}",
                    mnemonic=mnem,
                    slots=(_mem(width, Access.RW), _reg(width, Access.R)),
                    encoding=Encoding(op_mr, rex_w=rex_w, modrm="r",
                                      modrm_rm_slot=0, modrm_reg_slot=1),
                    uop_archetype="alu_rmw",
                    writes_flags=True, reads_flags=reads_flags,
                ))
            else:
                _register(InstrTemplate(
                    name=f"CMP_M{width}_{w}",
                    mnemonic="cmp",
                    slots=(_mem(width, Access.R), _reg(width, Access.R)),
                    encoding=Encoding(op_mr, rex_w=rex_w, modrm="r",
                                      modrm_rm_slot=0, modrm_reg_slot=1),
                    uop_archetype="cmp_load",
                    writes_flags=True,
                    fusible_first=fuse,
                ))
        # 16-bit immediate form: carries a length-changing prefix.
        _register(InstrTemplate(
            name=f"{mnem.upper()}_R16_IMM16",
            mnemonic=mnem,
            slots=(_reg(16, dest_access), _imm(16)),
            encoding=Encoding(0x81, legacy_66=True, modrm=str(digit),
                              modrm_rm_slot=0, imm_width=16),
            uop_archetype=arch,
            writes_flags=True, reads_flags=reads_flags,
            fusible_first=fuse,
        ))


# ---------------------------------------------------------------------------
# TEST, MOV, MOVZX/MOVSXD, LEA
# ---------------------------------------------------------------------------

def _build_test_mov() -> None:
    for width, rex_w in ((64, True), (32, False)):
        w = f"R{width}"
        _register(InstrTemplate(
            name=f"TEST_{w}_{w}",
            mnemonic="test",
            slots=(_reg(width, Access.R), _reg(width, Access.R)),
            encoding=Encoding(0x85, rex_w=rex_w, modrm="r",
                              modrm_rm_slot=0, modrm_reg_slot=1),
            uop_archetype="alu",
            writes_flags=True,
            fusible_first="test",
        ))
        _register(InstrTemplate(
            name=f"MOV_{w}_{w}",
            mnemonic="mov",
            slots=(_reg(width, Access.W), _reg(width, Access.R)),
            encoding=Encoding(0x89, rex_w=rex_w, modrm="r",
                              modrm_rm_slot=0, modrm_reg_slot=1),
            uop_archetype="mov_rr",
        ))
        _register(InstrTemplate(
            name=f"MOV_{w}_M{width}",
            mnemonic="mov",
            slots=(_reg(width, Access.W), _mem(width, Access.R)),
            encoding=Encoding(0x8B, rex_w=rex_w, modrm="r",
                              modrm_rm_slot=1, modrm_reg_slot=0),
            uop_archetype="load",
        ))
        _register(InstrTemplate(
            name=f"MOV_M{width}_{w}",
            mnemonic="mov",
            slots=(_mem(width, Access.W), _reg(width, Access.R)),
            encoding=Encoding(0x89, rex_w=rex_w, modrm="r",
                              modrm_rm_slot=0, modrm_reg_slot=1),
            uop_archetype="store",
        ))
    _register(InstrTemplate(
        name="MOV_R32_IMM32",
        mnemonic="mov",
        slots=(_reg(32, Access.W), _imm(32)),
        encoding=Encoding(0xB8, reg_in_opcode=True, imm_width=32),
        uop_archetype="mov_ri",
    ))
    _register(InstrTemplate(
        name="MOV_R64_IMM32",
        mnemonic="mov",
        slots=(_reg(64, Access.W), _imm(32)),
        encoding=Encoding(0xC7, rex_w=True, modrm="0", modrm_rm_slot=0,
                          imm_width=32),
        uop_archetype="mov_ri",
    ))
    _register(InstrTemplate(
        name="MOV_R64_IMM64",
        mnemonic="mov",
        slots=(_reg(64, Access.W), _imm(64)),
        encoding=Encoding(0xB8, rex_w=True, reg_in_opcode=True,
                          imm_width=64),
        uop_archetype="mov_ri",
    ))
    _register(InstrTemplate(
        name="MOV_R16_IMM16",
        mnemonic="mov",
        slots=(_reg(16, Access.W), _imm(16)),
        encoding=Encoding(0xB8, legacy_66=True, reg_in_opcode=True,
                          imm_width=16),
        uop_archetype="mov_ri",
    ))
    _register(InstrTemplate(
        name="MOVZX_R32_R8",
        mnemonic="movzx",
        slots=(_reg(32, Access.W), _reg(8, Access.R)),
        encoding=Encoding(0xB6, esc=(0x0F,), modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="alu_any",
    ))
    _register(InstrTemplate(
        name="MOVZX_R32_R16",
        mnemonic="movzx",
        slots=(_reg(32, Access.W), _reg(16, Access.R)),
        encoding=Encoding(0xB7, esc=(0x0F,), modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="alu_any",
    ))
    _register(InstrTemplate(
        name="MOVSXD_R64_R32",
        mnemonic="movsxd",
        slots=(_reg(64, Access.W), _reg(32, Access.R)),
        encoding=Encoding(0x63, rex_w=True, modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="alu_any",
    ))
    _register(InstrTemplate(
        name="LEA_R64_M",
        mnemonic="lea",
        slots=(_reg(64, Access.W), _mem(64, Access.R)),
        encoding=Encoding(0x8D, rex_w=True, modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="lea",
    ))


# ---------------------------------------------------------------------------
# Unary group, shifts, multiply/divide, misc scalar
# ---------------------------------------------------------------------------

def _build_unary_shift_muldiv() -> None:
    for mnem, digit, arch, fuse in (
            ("inc", 0, "alu", "incdec"), ("dec", 1, "alu", "incdec"),
            ("not", 2, "alu_noflags", None), ("neg", 3, "alu", None)):
        _register(InstrTemplate(
            name=f"{mnem.upper()}_R64",
            mnemonic=mnem,
            slots=(_reg(64, Access.RW),),
            encoding=Encoding(0xFF if mnem in ("inc", "dec") else 0xF7,
                              rex_w=True, modrm=str(digit), modrm_rm_slot=0),
            uop_archetype=arch,
            writes_flags=mnem != "not",
            fusible_first=fuse,
        ))
    for mnem, digit in (("shl", 4), ("shr", 5), ("sar", 7)):
        _register(InstrTemplate(
            name=f"{mnem.upper()}_R64_IMM8",
            mnemonic=mnem,
            slots=(_reg(64, Access.RW), _imm(8)),
            encoding=Encoding(0xC1, rex_w=True, modrm=str(digit),
                              modrm_rm_slot=0, imm_width=8),
            uop_archetype="shift",
            writes_flags=True,
        ))
        _register(InstrTemplate(
            name=f"{mnem.upper()}_R64_CL",
            mnemonic=mnem,
            slots=(_reg(64, Access.RW),),
            encoding=Encoding(0xD3, rex_w=True, modrm=str(digit),
                              modrm_rm_slot=0),
            uop_archetype="shift_cl",
            writes_flags=True,
        ))
    _register(InstrTemplate(
        name="IMUL_R64_R64",
        mnemonic="imul",
        slots=(_reg(64, Access.RW), _reg(64, Access.R)),
        encoding=Encoding(0xAF, esc=(0x0F,), rex_w=True, modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="imul",
        writes_flags=True,
    ))
    _register(InstrTemplate(
        name="MUL_R64",
        mnemonic="mul",
        slots=(_reg(64, Access.R),),
        encoding=Encoding(0xF7, rex_w=True, modrm="4", modrm_rm_slot=0),
        uop_archetype="mul_wide",
        writes_flags=True,
    ))
    _register(InstrTemplate(
        name="DIV_R64",
        mnemonic="div",
        slots=(_reg(64, Access.R),),
        encoding=Encoding(0xF7, rex_w=True, modrm="6", modrm_rm_slot=0),
        uop_archetype="div",
        writes_flags=True,
    ))
    _register(InstrTemplate(
        name="XCHG_R64_R64",
        mnemonic="xchg",
        slots=(_reg(64, Access.RW), _reg(64, Access.RW)),
        encoding=Encoding(0x87, rex_w=True, modrm="r",
                          modrm_rm_slot=0, modrm_reg_slot=1),
        uop_archetype="xchg",
    ))
    _register(InstrTemplate(
        name="PUSH_R64",
        mnemonic="push",
        slots=(_reg(64, Access.R),),
        encoding=Encoding(0x50, reg_in_opcode=True),
        uop_archetype="push",
    ))
    _register(InstrTemplate(
        name="POP_R64",
        mnemonic="pop",
        slots=(_reg(64, Access.W),),
        encoding=Encoding(0x58, reg_in_opcode=True),
        uop_archetype="pop",
    ))
    _register(InstrTemplate(
        name="CDQ", mnemonic="cdq", slots=(),
        encoding=Encoding(0x99),
        uop_archetype="cdq",
    ))
    _register(InstrTemplate(
        name="CQO", mnemonic="cqo", slots=(),
        encoding=Encoding(0x99, rex_w=True),
        uop_archetype="cdq",
    ))
    _register(InstrTemplate(
        name="BSWAP_R64",
        mnemonic="bswap",
        slots=(_reg(64, Access.RW),),
        encoding=Encoding(0xC8, esc=(0x0F,), rex_w=True,
                          reg_in_opcode=True),
        uop_archetype="bswap",
    ))
    for mnem, opcode, prefix in (
            ("popcnt", 0xB8, 0xF3), ("lzcnt", 0xBD, 0xF3),
            ("tzcnt", 0xBC, 0xF3), ("bsf", 0xBC, None), ("bsr", 0xBD, None)):
        _register(InstrTemplate(
            name=f"{mnem.upper()}_R64_R64",
            mnemonic=mnem,
            slots=(_reg(64, Access.W), _reg(64, Access.R)),
            encoding=Encoding(opcode, esc=(0x0F,), simd_prefix=prefix,
                              rex_w=True, modrm="r",
                              modrm_rm_slot=1, modrm_reg_slot=0),
            uop_archetype="bit_scan",
            writes_flags=True,
        ))


# ---------------------------------------------------------------------------
# Condition-code families: Jcc, CMOVcc, SETcc, and unconditional JMP/NOP.
# ---------------------------------------------------------------------------

#: Condition-code nibbles for the conditions in the subset.
CONDITION_CODES = {
    "o": 0x0, "no": 0x1, "b": 0x2, "ae": 0x3, "e": 0x4, "ne": 0x5,
    "be": 0x6, "a": 0x7, "s": 0x8, "ns": 0x9, "l": 0xC, "ge": 0xD,
    "le": 0xE, "g": 0xF,
}

#: Conditions that macro-fuse with cmp/add/sub (flag-arithmetic family).
CMP_FUSIBLE_CCS = frozenset(
    CONDITION_CODES[c] for c in ("b", "ae", "e", "ne", "be", "a",
                                 "l", "ge", "le", "g"))
#: Conditions that macro-fuse with inc/dec (no carry-flag conditions).
INCDEC_FUSIBLE_CCS = frozenset(
    CONDITION_CODES[c] for c in ("e", "ne", "l", "ge", "le", "g"))


def _build_cc_families() -> None:
    for cond, cc in CONDITION_CODES.items():
        _register(InstrTemplate(
            name=f"J{cond.upper()}_REL8",
            mnemonic=f"j{cond}",
            slots=(_imm(8),),
            encoding=Encoding(0x70 + cc, imm_width=8),
            uop_archetype="cond_branch",
            reads_flags=True, is_branch=True, is_cond_branch=True, cc=cc,
        ))
        _register(InstrTemplate(
            name=f"J{cond.upper()}_REL32",
            mnemonic=f"j{cond}",
            slots=(_imm(32),),
            encoding=Encoding(0x80 + cc, esc=(0x0F,), imm_width=32),
            uop_archetype="cond_branch",
            reads_flags=True, is_branch=True, is_cond_branch=True, cc=cc,
        ))
    for cond in ("e", "ne", "l", "ge", "b", "ae", "s", "ns"):
        cc = CONDITION_CODES[cond]
        _register(InstrTemplate(
            name=f"CMOV{cond.upper()}_R64_R64",
            mnemonic=f"cmov{cond}",
            slots=(_reg(64, Access.RW), _reg(64, Access.R)),
            encoding=Encoding(0x40 + cc, esc=(0x0F,), rex_w=True, modrm="r",
                              modrm_rm_slot=1, modrm_reg_slot=0),
            uop_archetype="cmov",
            reads_flags=True, cc=cc,
        ))
        _register(InstrTemplate(
            name=f"SET{cond.upper()}_R8",
            mnemonic=f"set{cond}",
            slots=(_reg(8, Access.W),),
            encoding=Encoding(0x90 + cc, esc=(0x0F,), modrm="0",
                              modrm_rm_slot=0),
            uop_archetype="setcc",
            reads_flags=True, cc=cc,
        ))
    _register(InstrTemplate(
        name="JMP_REL8", mnemonic="jmp", slots=(_imm(8),),
        encoding=Encoding(0xEB, imm_width=8),
        uop_archetype="branch", is_branch=True,
    ))
    _register(InstrTemplate(
        name="JMP_REL32", mnemonic="jmp", slots=(_imm(32),),
        encoding=Encoding(0xE9, imm_width=32),
        uop_archetype="branch", is_branch=True,
    ))


#: Canonical multi-byte NOP encodings (Intel SDM recommended forms, padded
#: with 0x66 prefixes beyond 9 bytes).
_NOP_BYTES = {
    1: b"\x90",
    2: b"\x66\x90",
    3: b"\x0f\x1f\x00",
    4: b"\x0f\x1f\x40\x00",
    5: b"\x0f\x1f\x44\x00\x00",
    6: b"\x66\x0f\x1f\x44\x00\x00",
    7: b"\x0f\x1f\x80\x00\x00\x00\x00",
    8: b"\x0f\x1f\x84\x00\x00\x00\x00\x00",
    9: b"\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    10: b"\x66\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    11: b"\x66\x66\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    12: b"\x66\x66\x66\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    13: b"\x66\x66\x66\x66\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    14: b"\x66\x66\x66\x66\x66\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    15: b"\x66\x66\x66\x66\x66\x66\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
}


def _build_nops() -> None:
    for length, raw in _NOP_BYTES.items():
        _register(InstrTemplate(
            name=f"NOP{length}",
            mnemonic="nop" if length == 1 else f"nop{length}",
            slots=(),
            encoding=Encoding(0x90, fixed_bytes=raw),
            uop_archetype="nop",
        ))


def nop_bytes(length: int) -> bytes:
    """Return the canonical NOP encoding of the given byte *length*."""
    return _NOP_BYTES[length]


# ---------------------------------------------------------------------------
# SSE scalar/packed floating point and integer vector instructions.
# ---------------------------------------------------------------------------

_SSE_ARITH = {
    # mnemonic: (opcode, simd_prefix, archetype)
    "addps": (0x58, None, "fp_add"),
    "addpd": (0x58, 0x66, "fp_add"),
    "addss": (0x58, 0xF3, "fp_add"),
    "addsd": (0x58, 0xF2, "fp_add"),
    "subps": (0x5C, None, "fp_add"),
    "mulps": (0x59, None, "fp_mul"),
    "mulpd": (0x59, 0x66, "fp_mul"),
    "mulss": (0x59, 0xF3, "fp_mul"),
    "mulsd": (0x59, 0xF2, "fp_mul"),
    "divps": (0x5E, None, "fp_div"),
    "divss": (0x5E, 0xF3, "fp_div_scalar"),
    "sqrtps": (0x51, None, "fp_sqrt"),
    "minps": (0x5D, None, "fp_add"),
    "maxps": (0x5F, None, "fp_add"),
}

_SSE_INT = {
    "paddd": (0xFE, "vec_int"),
    "psubd": (0xFA, "vec_int"),
    "paddq": (0xD4, "vec_int"),
    "pand": (0xDB, "vec_logic"),
    "por": (0xEB, "vec_logic"),
    "pxor": (0xEF, "vec_logic"),
    "pmulld": (None, "vec_int_mul"),  # 66 0F 38 40
}


def _build_sse() -> None:
    for mnem, (opcode, prefix, arch) in _SSE_ARITH.items():
        _register(InstrTemplate(
            name=f"{mnem.upper()}_X_X",
            mnemonic=mnem,
            slots=(_reg(128, Access.RW, "vec"), _reg(128, Access.R, "vec")),
            encoding=Encoding(opcode, esc=(0x0F,), simd_prefix=prefix,
                              modrm="r", modrm_rm_slot=1, modrm_reg_slot=0),
            uop_archetype=arch,
        ))
    for mnem, (opcode, arch) in _SSE_INT.items():
        if opcode is None:
            continue
        _register(InstrTemplate(
            name=f"{mnem.upper()}_X_X",
            mnemonic=mnem,
            slots=(_reg(128, Access.RW, "vec"), _reg(128, Access.R, "vec")),
            encoding=Encoding(opcode, esc=(0x0F,), simd_prefix=0x66,
                              modrm="r", modrm_rm_slot=1, modrm_reg_slot=0),
            uop_archetype=arch,
        ))
    _register(InstrTemplate(
        name="PMULLD_X_X",
        mnemonic="pmulld",
        slots=(_reg(128, Access.RW, "vec"), _reg(128, Access.R, "vec")),
        encoding=Encoding(0x40, esc=(0x0F, 0x38), simd_prefix=0x66,
                          modrm="r", modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="vec_int_mul",
    ))
    _register(InstrTemplate(
        name="MOVAPS_X_X",
        mnemonic="movaps",
        slots=(_reg(128, Access.W, "vec"), _reg(128, Access.R, "vec")),
        encoding=Encoding(0x28, esc=(0x0F,), modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="vec_mov",
    ))
    _register(InstrTemplate(
        name="MOVAPS_X_M128",
        mnemonic="movaps",
        slots=(_reg(128, Access.W, "vec"), _mem(128, Access.R, "vec")),
        encoding=Encoding(0x28, esc=(0x0F,), modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="vec_load",
    ))
    _register(InstrTemplate(
        name="MOVAPS_M128_X",
        mnemonic="movaps",
        slots=(_mem(128, Access.W, "vec"), _reg(128, Access.R, "vec")),
        encoding=Encoding(0x29, esc=(0x0F,), modrm="r",
                          modrm_rm_slot=0, modrm_reg_slot=1),
        uop_archetype="vec_store",
    ))
    _register(InstrTemplate(
        name="ADDPS_X_M128",
        mnemonic="addps",
        slots=(_reg(128, Access.RW, "vec"), _mem(128, Access.R, "vec")),
        encoding=Encoding(0x58, esc=(0x0F,), modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="fp_add_load",
    ))
    _register(InstrTemplate(
        name="MULPS_X_M128",
        mnemonic="mulps",
        slots=(_reg(128, Access.RW, "vec"), _mem(128, Access.R, "vec")),
        encoding=Encoding(0x59, esc=(0x0F,), modrm="r",
                          modrm_rm_slot=1, modrm_reg_slot=0),
        uop_archetype="fp_mul_load",
    ))


# ---------------------------------------------------------------------------
# AVX (VEX-encoded) instructions.
# ---------------------------------------------------------------------------

def _vex_arith(name: str, mnemonic: str, opcode: int, l: int, pp: int,
               arch: str, feature: str, mmm: int = 1,
               w: Optional[int] = None,
               dest_access: Access = Access.W) -> None:
    width = 256 if l == 256 else 128
    reg = "Y" if l == 256 else "X"
    _register(InstrTemplate(
        name=f"{name}_{reg}_{reg}_{reg}",
        mnemonic=mnemonic,
        slots=(_reg(width, dest_access, "vec"), _reg(width, Access.R, "vec"),
               _reg(width, Access.R, "vec")),
        encoding=Encoding(opcode, modrm="r", modrm_rm_slot=2,
                          modrm_reg_slot=0,
                          vex=VexSpec(l=l, pp=pp, mmm=mmm, w=w,
                                      has_vvvv=True)),
        uop_archetype=arch,
        feature=feature,
    ))


def _build_avx() -> None:
    for l in (128, 256):
        _vex_arith("VADDPS", "vaddps", 0x58, l, 0, "fp_add", "avx")
        _vex_arith("VMULPS", "vmulps", 0x59, l, 0, "fp_mul", "avx")
        _vex_arith("VSUBPS", "vsubps", 0x5C, l, 0, "fp_add", "avx")
        _vex_arith("VDIVPS", "vdivps", 0x5E, l, 0, "fp_div", "avx")
        _vex_arith("VPADDD", "vpaddd", 0xFE, l, 1, "vec_int",
                   "avx2" if l == 256 else "avx")
        _vex_arith("VPXOR", "vpxor", 0xEF, l, 1, "vec_logic",
                   "avx2" if l == 256 else "avx")
        # FMA: dest is read-modify-write (accumulator).
        _vex_arith("VFMADD231PS", "vfmadd231ps", 0xB8, l, 1, "fma", "fma",
                   mmm=2, w=0, dest_access=Access.RW)
    reg_specs = ((128, "X"), (256, "Y"))
    for width, reg in reg_specs:
        l = width
        _register(InstrTemplate(
            name=f"VMOVAPS_{reg}_{reg}",
            mnemonic="vmovaps",
            slots=(_reg(width, Access.W, "vec"), _reg(width, Access.R, "vec")),
            encoding=Encoding(0x28, modrm="r", modrm_rm_slot=1,
                              modrm_reg_slot=0,
                              vex=VexSpec(l=l, pp=0, mmm=1, has_vvvv=False)),
            uop_archetype="vec_mov",
            feature="avx",
        ))
        _register(InstrTemplate(
            name=f"VMOVAPS_{reg}_M{width}",
            mnemonic="vmovaps",
            slots=(_reg(width, Access.W, "vec"),
                   _mem(width, Access.R, "vec")),
            encoding=Encoding(0x28, modrm="r", modrm_rm_slot=1,
                              modrm_reg_slot=0,
                              vex=VexSpec(l=l, pp=0, mmm=1, has_vvvv=False)),
            uop_archetype="vec_load",
            feature="avx",
        ))
        _register(InstrTemplate(
            name=f"VMOVAPS_M{width}_{reg}",
            mnemonic="vmovaps",
            slots=(_mem(width, Access.W, "vec"),
                   _reg(width, Access.R, "vec")),
            encoding=Encoding(0x29, modrm="r", modrm_rm_slot=0,
                              modrm_reg_slot=1,
                              vex=VexSpec(l=l, pp=0, mmm=1, has_vvvv=False)),
            uop_archetype="vec_store",
            feature="avx",
        ))


def _build_all() -> None:
    _build_alu_group()
    _build_test_mov()
    _build_unary_shift_muldiv()
    _build_cc_families()
    _build_nops()
    _build_sse()
    _build_avx()


_build_all()


def all_templates() -> List[InstrTemplate]:
    """Return every template in the subset (stable order)."""
    return list(_TEMPLATES.values())


def template_by_name(name: str) -> InstrTemplate:
    """Look up a template by its unique name.

    Raises:
        KeyError: if no template has that name.
    """
    return _TEMPLATES[name]


def templates_by_mnemonic(mnemonic: str) -> List[InstrTemplate]:
    """Return all templates sharing the given assembly *mnemonic*."""
    mnemonic = mnemonic.lower()
    return [t for t in _TEMPLATES.values() if t.mnemonic == mnemonic]
