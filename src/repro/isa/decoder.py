"""Byte-level decoder (disassembler) for the x86-64 subset.

This is the XED-substitute front end: it turns raw bytes back into
:class:`~repro.isa.instruction.Instruction` objects, recovering the facts
the throughput models need (lengths, prefix offsets, operands).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.isa.registers import RIP, gpr, vec
from repro.isa.templates import (
    InstrTemplate,
    SlotKind,
    _NOP_BYTES,
    all_templates,
    template_by_name,
)


class DecodeError(Exception):
    """Raised when bytes cannot be decoded as a subset instruction."""


_LEGACY_PREFIXES = frozenset((0x66, 0xF2, 0xF3))

# Lookup keys:
#   legacy: ("leg", simd_prefix, esc, opcode, rex_w) -> [templates]
#   vex:    ("vex", l, pp, mmm, w, opcode)           -> [templates]
_LOOKUP: Dict[tuple, List[InstrTemplate]] = {}

_NOPS_BY_LENGTH = sorted(_NOP_BYTES.items(), key=lambda kv: -kv[0])


def _norm_simd_prefix(t: InstrTemplate) -> Optional[int]:
    enc = t.encoding
    if enc.simd_prefix is not None:
        return enc.simd_prefix
    if enc.legacy_66:
        return 0x66
    return None


def _build_lookup() -> None:
    for t in all_templates():
        enc = t.encoding
        if enc.fixed_bytes is not None:
            continue
        if enc.vex is not None:
            w_values = (0, 1) if enc.vex.w is None else (enc.vex.w,)
            for w in w_values:
                key = ("vex", enc.vex.l, enc.vex.pp, enc.vex.mmm, w,
                       enc.opcode)
                _LOOKUP.setdefault(key, []).append(t)
            continue
        opcodes = [enc.opcode]
        if enc.reg_in_opcode:
            opcodes = [(enc.opcode & 0xF8) | low for low in range(8)]
        for op in opcodes:
            key = ("leg", _norm_simd_prefix(t), enc.esc, op, enc.rex_w)
            _LOOKUP.setdefault(key, []).append(t)


_build_lookup()


def _try_decode_nop(raw: bytes, offset: int) -> Optional[Instruction]:
    for length, pattern in _NOPS_BY_LENGTH:
        if raw[offset:offset + length] == pattern:
            template = template_by_name(f"NOP{length}")
            return Instruction.create(template, ())
    return None


def _read_int(raw: bytes, offset: int, nbytes: int, signed: bool) -> int:
    chunk = raw[offset:offset + nbytes]
    if len(chunk) != nbytes:
        raise DecodeError("truncated instruction")
    return int.from_bytes(chunk, "little", signed=signed)


def decode(raw: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction starting at *offset*.

    Returns:
        (instruction, new_offset).

    Raises:
        DecodeError: when the bytes are not a subset instruction.
    """
    nop = _try_decode_nop(raw, offset)
    if nop is not None:
        return nop, offset + nop.length

    i = offset
    simd_prefix: Optional[int] = None
    while i < len(raw) and raw[i] in _LEGACY_PREFIXES:
        simd_prefix = raw[i]
        i += 1
    if i >= len(raw):
        raise DecodeError("ran out of bytes in prefixes")

    rex = 0
    vex_fields = None
    if 0x40 <= raw[i] <= 0x4F:
        rex = raw[i]
        i += 1
    elif raw[i] in (0xC4, 0xC5):
        vex_fields, i = _parse_vex(raw, i)

    if i >= len(raw):
        raise DecodeError("ran out of bytes at opcode")

    if vex_fields is not None:
        return _decode_vex(raw, offset, i, simd_prefix, vex_fields)
    return _decode_legacy(raw, offset, i, simd_prefix, rex)


def _parse_vex(raw: bytes, i: int) -> Tuple[dict, int]:
    if raw[i] == 0xC5:
        if i + 1 >= len(raw):
            raise DecodeError("truncated VEX")
        b1 = raw[i + 1]
        fields = {
            "r": 1 - (b1 >> 7), "x": 0, "b": 0, "mmm": 1,
            "w": 0, "vvvv": (~(b1 >> 3)) & 0xF,
            "l": 256 if (b1 >> 2) & 1 else 128, "pp": b1 & 3,
        }
        return fields, i + 2
    if i + 2 >= len(raw):
        raise DecodeError("truncated VEX")
    b1, b2 = raw[i + 1], raw[i + 2]
    fields = {
        "r": 1 - (b1 >> 7), "x": 1 - ((b1 >> 6) & 1),
        "b": 1 - ((b1 >> 5) & 1), "mmm": b1 & 0x1F,
        "w": b2 >> 7, "vvvv": (~(b2 >> 3)) & 0xF,
        "l": 256 if (b2 >> 2) & 1 else 128, "pp": b2 & 3,
    }
    return fields, i + 3


def _parse_modrm(raw: bytes, i: int, rex_x: int, rex_b: int,
                 mem_width: int, regclass: str):
    """Parse ModRM (+SIB +disp).  Returns (mod, reg_field, rm_operand, i)."""
    if i >= len(raw):
        raise DecodeError("truncated at ModRM")
    modrm = raw[i]
    i += 1
    mod, reg_field, rm = modrm >> 6, (modrm >> 3) & 7, modrm & 7

    if mod == 0b11:
        return mod, reg_field, (rm | (rex_b << 3)), i

    base = index = None
    scale = 1
    disp = 0
    if mod == 0b00 and rm == 0b101:
        disp = _read_int(raw, i, 4, signed=True)
        i += 4
        mem = MemOperand(base=RIP, disp=disp, width=mem_width)
        return mod, reg_field, mem, i
    if rm == 0b100:
        if i >= len(raw):
            raise DecodeError("truncated at SIB")
        sib = raw[i]
        i += 1
        scale = 1 << (sib >> 6)
        index_enc = ((sib >> 3) & 7) | (rex_x << 3)
        base_enc = (sib & 7) | (rex_b << 3)
        if ((sib >> 3) & 7) != 0b100 or rex_x:
            index = gpr(index_enc, 64)
        if (sib & 7) == 0b101 and mod == 0b00:
            disp = _read_int(raw, i, 4, signed=True)
            i += 4
            mem = MemOperand(base=None, index=index, scale=scale, disp=disp,
                             width=mem_width)
            return mod, reg_field, mem, i
        base = gpr(base_enc, 64)
    else:
        base = gpr(rm | (rex_b << 3), 64)

    if mod == 0b01:
        disp = _read_int(raw, i, 1, signed=True)
        i += 1
    elif mod == 0b10:
        disp = _read_int(raw, i, 4, signed=True)
        i += 4
    mem = MemOperand(base=base, index=index, scale=scale, disp=disp,
                     width=mem_width)
    return mod, reg_field, mem, i


def _make_reg(enc_index: int, slot) -> RegOperand:
    if slot.regclass == "vec":
        return RegOperand(vec(enc_index, slot.width))
    return RegOperand(gpr(enc_index, slot.width))


def _select_template(candidates: List[InstrTemplate], mod: Optional[int],
                     reg_field: Optional[int]) -> InstrTemplate:
    viable = []
    for t in candidates:
        enc = t.encoding
        if enc.modrm is not None and enc.modrm != "r":
            if reg_field is None or int(enc.modrm) != reg_field:
                continue
        if enc.modrm is not None and mod is not None:
            rm_slot = t.slots[enc.modrm_rm_slot]
            if mod == 0b11 and rm_slot.kind is not SlotKind.REG:
                continue
            if mod != 0b11 and rm_slot.kind is not SlotKind.MEM:
                continue
        viable.append(t)
    if not viable:
        raise DecodeError("no template matches opcode/ModRM combination")
    if len(viable) > 1:
        raise DecodeError(
            f"ambiguous decode: {[t.name for t in viable]}")
    return viable[0]


def _decode_legacy(raw: bytes, start: int, i: int,
                   simd_prefix: Optional[int], rex: int):
    rex_w = (rex >> 3) & 1
    rex_r = (rex >> 2) & 1
    rex_x = (rex >> 1) & 1
    rex_b = rex & 1

    esc: Tuple[int, ...] = ()
    if raw[i] == 0x0F:
        i += 1
        if i < len(raw) and raw[i] in (0x38, 0x3A):
            esc = (0x0F, raw[i])
            i += 1
        else:
            esc = (0x0F,)
    if i >= len(raw):
        raise DecodeError("truncated at opcode")
    opcode = raw[i]
    i += 1

    key = ("leg", simd_prefix, esc, opcode, bool(rex_w))
    candidates = _LOOKUP.get(key)
    if not candidates:
        raise DecodeError(
            f"unknown opcode {opcode:#x} (esc={esc}, prefix={simd_prefix})")

    needs_modrm = any(t.encoding.modrm is not None for t in candidates)
    mod = reg_field = None
    rm_decoded = None
    if needs_modrm:
        # All candidates for a key share the rm slot position and width.
        probe = candidates[0]
        rm_slot = probe.slots[probe.encoding.modrm_rm_slot]
        mod, reg_field, rm_decoded, i = _parse_modrm(
            raw, i, rex_x, rex_b, rm_slot.width, rm_slot.regclass)

    template = _select_template(candidates, mod, reg_field)
    enc = template.encoding

    imm_value = None
    if enc.imm_width:
        nbytes = enc.imm_width // 8
        imm_value = _read_int(raw, i, nbytes, signed=True)
        i += nbytes

    operands: List = [None] * len(template.slots)
    if enc.reg_in_opcode:
        reg_enc = (opcode & 7) | (rex_b << 3)
        operands[0] = _make_reg(reg_enc, template.slots[0])
    if enc.modrm is not None:
        rm_slot_idx = enc.modrm_rm_slot
        rm_slot = template.slots[rm_slot_idx]
        if isinstance(rm_decoded, int):
            operands[rm_slot_idx] = _make_reg(rm_decoded, rm_slot)
        else:
            operands[rm_slot_idx] = rm_decoded
        if enc.modrm == "r":
            reg_slot_idx = enc.modrm_reg_slot
            reg_slot = template.slots[reg_slot_idx]
            operands[reg_slot_idx] = _make_reg(
                (reg_field or 0) | (rex_r << 3), reg_slot)
    if imm_value is not None:
        for idx, slot in enumerate(template.slots):
            if slot.kind is SlotKind.IMM:
                operands[idx] = ImmOperand(imm_value, enc.imm_width)
                break

    if any(op is None for op in operands):
        raise DecodeError(f"could not reconstruct operands for "
                          f"{template.name}")

    instr = Instruction(template, tuple(operands), raw[start:i], _prefix_len(
        raw, start))
    return instr, i


def _decode_vex(raw: bytes, start: int, i: int,
                simd_prefix: Optional[int], vex: dict):
    if i >= len(raw):
        raise DecodeError("truncated at VEX opcode")
    opcode = raw[i]
    i += 1
    key = ("vex", vex["l"], vex["pp"], vex["mmm"], vex["w"], opcode)
    candidates = _LOOKUP.get(key)
    if not candidates:
        raise DecodeError(f"unknown VEX opcode {opcode:#x}")

    probe = candidates[0]
    rm_slot = probe.slots[probe.encoding.modrm_rm_slot]
    mod, reg_field, rm_decoded, i = _parse_modrm(
        raw, i, vex["x"], vex["b"], rm_slot.width, rm_slot.regclass)
    template = _select_template(candidates, mod, reg_field)
    enc = template.encoding

    operands: List = [None] * len(template.slots)
    rm_slot_idx = enc.modrm_rm_slot
    rm_slot = template.slots[rm_slot_idx]
    if isinstance(rm_decoded, int):
        operands[rm_slot_idx] = _make_reg(rm_decoded, rm_slot)
    else:
        operands[rm_slot_idx] = rm_decoded
    reg_slot_idx = enc.modrm_reg_slot
    operands[reg_slot_idx] = _make_reg(
        (reg_field or 0) | (vex["r"] << 3), template.slots[reg_slot_idx])
    if enc.vex is not None and enc.vex.has_vvvv:
        other = [idx for idx in range(len(template.slots))
                 if idx not in (rm_slot_idx, reg_slot_idx)]
        operands[other[0]] = _make_reg(vex["vvvv"],
                                       template.slots[other[0]])

    if any(op is None for op in operands):
        raise DecodeError(f"could not reconstruct operands for "
                          f"{template.name}")

    instr = Instruction(template, tuple(operands), raw[start:i],
                        _prefix_len(raw, start))
    return instr, i


def _prefix_len(raw: bytes, start: int) -> int:
    """Offset of the first nominal-opcode byte relative to *start*.

    Legacy prefixes and REX count as prefix bytes; a VEX prefix is treated
    as the start of the opcode (consistent with the encoder).
    """
    i = start
    while raw[i] in _LEGACY_PREFIXES:
        i += 1
    if 0x40 <= raw[i] <= 0x4F:
        i += 1
    return i - start


def decode_block(raw: bytes) -> List[Instruction]:
    """Decode a whole basic block (sequence of instructions)."""
    instructions = []
    offset = 0
    while offset < len(raw):
        instr, offset = decode(raw, offset)
        instructions.append(instr)
    return instructions
