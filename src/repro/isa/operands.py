"""Concrete instruction operands: registers, immediates, memory references."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.isa.registers import RIP, Register


@dataclass(frozen=True)
class RegOperand:
    """A register operand."""

    reg: Register

    @property
    def width(self) -> int:
        return self.reg.width

    def regs_read_for_value(self) -> List[Register]:
        return [self.reg]

    def __str__(self) -> str:
        return self.reg.name


@dataclass(frozen=True)
class ImmOperand:
    """An immediate operand.

    Attributes:
        value: the signed immediate value.
        width: the *encoded* width in bits (8, 16, 32 or 64).
    """

    value: int
    width: int

    def __post_init__(self) -> None:
        lo = -(1 << (self.width - 1))
        hi = (1 << self.width) - 1
        if not lo <= self.value <= hi:
            raise ValueError(
                f"immediate {self.value} does not fit in {self.width} bits")

    def encoded_bytes(self) -> bytes:
        nbytes = self.width // 8
        return (self.value & ((1 << self.width) - 1)).to_bytes(
            nbytes, "little")

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class MemOperand:
    """A memory operand ``[base + index*scale + disp]``.

    Attributes:
        base: base register or None.
        index: index register or None (never rsp).
        scale: 1, 2, 4 or 8.
        disp: signed displacement.
        width: access width in bits.
    """

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    disp: int = 0
    width: int = 64

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.index is not None and self.index.name == "rsp":
            raise ValueError("rsp cannot be an index register")
        if self.base is None and self.index is None and self.disp == 0:
            raise ValueError("memory operand needs base, index or disp")

    @property
    def is_rip_relative(self) -> bool:
        return self.base is RIP or (
            self.base is not None and self.base.name == "rip")

    @property
    def has_index(self) -> bool:
        return self.index is not None

    def address_regs(self) -> List[Register]:
        """Registers read to compute the effective address."""
        regs = []
        if self.base is not None and not self.is_rip_relative:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return regs

    def address_key(self) -> tuple:
        """A hashable key identifying the (symbolic) address expression."""
        return (
            self.base.name if self.base else None,
            self.index.name if self.index else None,
            self.scale,
            self.disp,
        )

    def __str__(self) -> str:
        ptr = {8: "byte", 16: "word", 32: "dword", 64: "qword",
               128: "xmmword", 256: "ymmword"}[self.width]
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            part = self.index.name
            if self.scale != 1:
                part += f"*{self.scale}"
            parts.append(part)
        expr = "+".join(parts)
        if self.disp or not parts:
            if expr:
                expr += f"+{self.disp}" if self.disp >= 0 else str(self.disp)
            else:
                expr = str(self.disp)
        return f"{ptr} ptr [{expr}]"


Operand = Union[RegOperand, ImmOperand, MemOperand]


def imm_fits(value: int, width: int) -> bool:
    """Return True if *value* is encodable as a signed *width*-bit imm."""
    return -(1 << (width - 1)) <= value < (1 << (width - 1))
