"""A small text assembler for the x86-64 subset.

Accepts Intel-syntax lines such as::

    add rax, rbx
    mov qword ptr [rsi+rax*8+16], rcx
    vfmadd231ps ymm0, ymm1, ymm2
    jne -12

and produces :class:`~repro.isa.instruction.Instruction` objects by
matching against the template table.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Tuple, Union

from repro.isa.instruction import Instruction
from repro.isa.operands import ImmOperand, MemOperand, RegOperand, imm_fits
from repro.isa.registers import is_register_name, register_by_name
from repro.isa.templates import (
    InstrTemplate,
    SlotKind,
    templates_by_mnemonic,
)


class AssemblyError(Exception):
    """Raised when a line cannot be assembled."""


_PTR_WIDTHS = {
    "byte": 8, "word": 16, "dword": 32, "qword": 64,
    "xmmword": 128, "ymmword": 256,
}

_MEM_RE = re.compile(
    r"^(?:(?P<ptr>byte|word|dword|qword|xmmword|ymmword)\s+ptr\s+)?"
    r"\[(?P<expr>[^\]]+)\]$")

_ParsedOperand = Union[RegOperand, MemOperand, int]


def _parse_int(token: str) -> Optional[int]:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        return None


def _parse_mem_expr(expr: str, width: Optional[int]) -> MemOperand:
    base = index = None
    scale = 1
    disp = 0
    # Normalise "a - b" into "+-b" so we can split on '+'.
    expr = expr.replace(" ", "").replace("-", "+-")
    for term in filter(None, expr.split("+")):
        if "*" in term:
            reg_name, scale_str = term.split("*", 1)
            if index is not None:
                raise AssemblyError(f"two index registers in [{expr}]")
            if not is_register_name(reg_name):
                raise AssemblyError(f"bad index register {reg_name!r}")
            index = register_by_name(reg_name)
            scale_val = _parse_int(scale_str)
            if scale_val not in (1, 2, 4, 8):
                raise AssemblyError(f"bad scale {scale_str!r}")
            scale = scale_val
        elif is_register_name(term):
            if base is None:
                base = register_by_name(term)
            elif index is None:
                index = register_by_name(term)
            else:
                raise AssemblyError(f"too many registers in [{expr}]")
        else:
            value = _parse_int(term)
            if value is None:
                raise AssemblyError(f"bad address term {term!r}")
            disp += value
    return MemOperand(base=base, index=index, scale=scale, disp=disp,
                      width=width or 64)


def _parse_operand(token: str) -> Tuple[_ParsedOperand, bool]:
    """Parse one operand.

    Returns:
        (operand, explicit_width) — for memory operands, explicit_width
        records whether a ``... ptr`` width annotation was present.
    """
    token = token.strip()
    match = _MEM_RE.match(token)
    if match:
        ptr = match.group("ptr")
        width = _PTR_WIDTHS[ptr] if ptr else None
        mem = _parse_mem_expr(match.group("expr"), width)
        return mem, ptr is not None
    if is_register_name(token):
        return RegOperand(register_by_name(token)), True
    value = _parse_int(token)
    if value is not None:
        return value, False
    raise AssemblyError(f"cannot parse operand {token!r}")


def _slot_matches(slot, parsed: _ParsedOperand, explicit_width: bool,
                  imm_width: int) -> bool:
    if slot.kind is SlotKind.REG:
        return (isinstance(parsed, RegOperand)
                and parsed.reg.width == slot.width
                and _regclass_of(parsed) == slot.regclass)
    if slot.kind is SlotKind.MEM:
        if not isinstance(parsed, MemOperand):
            return False
        return not explicit_width or parsed.width == slot.width
    if slot.kind is SlotKind.IMM:
        return isinstance(parsed, int) and imm_fits(parsed, imm_width)
    return False


def _regclass_of(op: RegOperand) -> str:
    from repro.isa.registers import RegisterKind
    return "vec" if op.reg.kind is RegisterKind.VEC else "gpr"


def _build_operands(template: InstrTemplate,
                    parsed: List[Tuple[_ParsedOperand, bool]]):
    operands = []
    for slot, (op, _explicit) in zip(template.slots, parsed):
        if slot.kind is SlotKind.IMM:
            operands.append(ImmOperand(op, template.encoding.imm_width))
        elif slot.kind is SlotKind.MEM:
            assert isinstance(op, MemOperand)
            if op.width != slot.width:
                op = dataclasses.replace(op, width=slot.width)
            operands.append(op)
        else:
            operands.append(op)
    return tuple(operands)


def assemble_line(line: str) -> Instruction:
    """Assemble a single instruction from Intel-syntax text.

    Raises:
        AssemblyError: when no template matches the line.
    """
    line = line.split(";", 1)[0].strip()
    if not line:
        raise AssemblyError("empty line")
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    parsed = ([_parse_operand(tok) for tok in operand_text.split(",")]
              if operand_text.strip() else [])

    candidates = templates_by_mnemonic(mnemonic)
    if not candidates:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}")

    # Shift-by-cl forms: cl is an implicit operand, not a template slot.
    if (len(parsed) == 2 and isinstance(parsed[1][0], RegOperand)
            and parsed[1][0].reg.name == "cl"
            and any(t.uop_archetype == "shift_cl" for t in candidates)):
        candidates = [t for t in candidates
                      if t.uop_archetype == "shift_cl"]
        parsed = parsed[:1]

    viable = []
    for t in candidates:
        if len(t.slots) != len(parsed):
            continue
        imm_width = t.encoding.imm_width
        if all(_slot_matches(slot, op, expl, imm_width)
               for slot, (op, expl) in zip(t.slots, parsed)):
            viable.append(t)
    if not viable:
        raise AssemblyError(f"no encoding for {line!r}")
    # Prefer the shortest immediate encoding, then fewer memory widths.
    viable.sort(key=lambda t: (t.encoding.imm_width, t.name))
    template = viable[0]
    return Instruction.create(template, _build_operands(template, parsed))


def assemble(text: str) -> List[Instruction]:
    """Assemble a multi-line program (one instruction per line)."""
    instructions = []
    for line in text.splitlines():
        stripped = line.split(";", 1)[0].strip()
        if not stripped:
            continue
        instructions.append(assemble_line(stripped))
    return instructions
