"""Register file for the x86-64 subset.

Registers are identified by name.  Every architectural register has a *root*:
the full-width register whose storage it aliases (``eax`` and ``ax`` both
root at ``rax``; ``xmm3`` roots at ``ymm3``).  Dependence tracking in the
throughput models is done at root granularity, which matches the common
modeling assumption that 32-bit writes zero-extend and partial-register
stalls are out of scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List


class RegisterKind(enum.Enum):
    """Architectural register class."""

    GPR = "gpr"
    VEC = "vec"
    FLAGS = "flags"
    IP = "ip"


@dataclass(frozen=True)
class Register:
    """A single architectural register.

    Attributes:
        name: canonical lower-case name, e.g. ``"rax"`` or ``"xmm5"``.
        kind: register class.
        width: width in bits (8, 16, 32, 64, 128, 256).
        enc: 4-bit hardware encoding index (0-15); REX/VEX extends to 8-15.
        root_name: name of the full-width register this one aliases.
    """

    name: str
    kind: RegisterKind
    width: int
    enc: int
    root_name: str

    @property
    def needs_rex(self) -> bool:
        """True when the encoding index requires a REX/VEX extension bit."""
        return self.enc >= 8

    @property
    def is_byte_rex_only(self) -> bool:
        """True for spl/bpl/sil/dil, encodable only with a REX prefix."""
        return self.name in ("spl", "bpl", "sil", "dil")

    def root(self) -> "Register":
        """Return the full-width register aliased by this one."""
        return register_by_name(self.root_name)

    def __str__(self) -> str:
        return self.name


_GPR64 = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]
_GPR32 = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
]
_GPR16 = [
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
]
_GPR8 = [
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
]

_REGISTRY: Dict[str, Register] = {}


def _add(reg: Register) -> None:
    _REGISTRY[reg.name] = reg


def _build_registry() -> None:
    for enc, name in enumerate(_GPR64):
        _add(Register(name, RegisterKind.GPR, 64, enc, name))
    for enc, name in enumerate(_GPR32):
        _add(Register(name, RegisterKind.GPR, 32, enc, _GPR64[enc]))
    for enc, name in enumerate(_GPR16):
        _add(Register(name, RegisterKind.GPR, 16, enc, _GPR64[enc]))
    for enc, name in enumerate(_GPR8):
        _add(Register(name, RegisterKind.GPR, 8, enc, _GPR64[enc]))
    for enc in range(16):
        ymm = f"ymm{enc}"
        _add(Register(ymm, RegisterKind.VEC, 256, enc, ymm))
        _add(Register(f"xmm{enc}", RegisterKind.VEC, 128, enc, ymm))
    _add(Register("rip", RegisterKind.IP, 64, 0, "rip"))
    _add(Register("rflags", RegisterKind.FLAGS, 64, 0, "rflags"))


_build_registry()

#: The architectural flags register, used for flag dependencies.
FLAGS = _REGISTRY["rflags"]

#: The instruction pointer, used for RIP-relative addressing.
RIP = _REGISTRY["rip"]


def register_by_name(name: str) -> Register:
    """Look up a register by its canonical name.

    Raises:
        KeyError: if the name does not denote a register of the subset.
    """
    return _REGISTRY[name.lower()]


def is_register_name(name: str) -> bool:
    """Return True when *name* denotes a register of the subset."""
    return name.lower() in _REGISTRY


def gpr(enc: int, width: int) -> Register:
    """Return the GPR with hardware encoding *enc* at *width* bits."""
    table = {64: _GPR64, 32: _GPR32, 16: _GPR16, 8: _GPR8}[width]
    return _REGISTRY[table[enc]]


def vec(enc: int, width: int) -> Register:
    """Return the vector register with encoding *enc* at *width* bits."""
    prefix = {128: "xmm", 256: "ymm"}[width]
    return _REGISTRY[f"{prefix}{enc}"]


def all_registers() -> List[Register]:
    """Return all registers in the registry (stable order)."""
    return list(_REGISTRY.values())


#: GPRs that the synthetic block generator may freely clobber.  rsp is
#: excluded because push/pop and the measurement harness use it implicitly.
SCRATCH_GPR64 = tuple(
    _REGISTRY[n]
    for n in ("rax", "rcx", "rdx", "rbx", "rbp", "rsi", "rdi",
              "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")
)

#: Vector registers available to the generator.
SCRATCH_VEC = tuple(_REGISTRY[f"ymm{i}"] for i in range(16))
