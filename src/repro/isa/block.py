"""Basic blocks: the unit of throughput prediction."""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.isa.instruction import Instruction


class BasicBlock:
    """A straight-line sequence of instructions.

    A block used in loop mode (TPL) conventionally ends in a branch back to
    its first instruction; a block used in unrolled mode (TPU) has no
    branch.  Both the analytical model and the simulator accept either.
    """

    def __init__(self, instructions: Sequence[Instruction]):
        if not instructions:
            raise ValueError("basic block must contain instructions")
        self.instructions: List[Instruction] = list(instructions)

    @classmethod
    def from_asm(cls, text: str) -> "BasicBlock":
        """Build a block from Intel-syntax assembly text."""
        from repro.isa.assembler import assemble
        return cls(assemble(text))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BasicBlock":
        """Disassemble a block from raw bytes."""
        from repro.isa.decoder import decode_block
        return cls(decode_block(raw))

    @property
    def raw(self) -> bytes:
        """The byte encoding of the whole block."""
        return b"".join(i.raw for i in self.instructions)

    @property
    def num_bytes(self) -> int:
        return sum(i.length for i in self.instructions)

    @property
    def ends_in_branch(self) -> bool:
        return self.instructions[-1].is_branch

    def instruction_offsets(self) -> List[int]:
        """Byte offset of each instruction within the block."""
        offsets = []
        pos = 0
        for instr in self.instructions:
            offsets.append(pos)
            pos += instr.length
        return offsets

    def text(self) -> str:
        """Assembly listing of the block."""
        return "\n".join(i.text() for i in self.instructions)

    def without_final_branch(self) -> "BasicBlock":
        """The block with a trailing branch removed (for TPU analysis)."""
        if self.ends_in_branch and len(self.instructions) > 1:
            return BasicBlock(self.instructions[:-1])
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, idx):
        return self.instructions[idx]

    def __eq__(self, other) -> bool:
        return isinstance(other, BasicBlock) and self.raw == other.raw

    def __hash__(self) -> int:
        return hash(self.raw)

    def __repr__(self) -> str:
        return (f"<BasicBlock {len(self.instructions)} instructions, "
                f"{self.num_bytes} bytes>")
