"""uops.info substrate: per-µarch instruction characterizations.

The original Facile reads instruction-level data (µop counts, port usage,
latencies, decoder constraints) from the uops.info database.  That database
is not available offline, so this package provides an equivalent: a
hand-written, internally consistent characterization of every instruction
template of the ISA subset on each of the nine microarchitectures.

The analytical model, the oracle simulator, and the baseline predictors all
consume this single source, mirroring how the paper's tools share the
uops.info data.
"""

from repro.uops.info import InstrInfo
from repro.uops.database import UopsDatabase
from repro.uops.fusion import can_macro_fuse
from repro.uops.blockinfo import AnalyzedInstruction, MacroOp, analyze_block

__all__ = [
    "AnalyzedInstruction",
    "InstrInfo",
    "MacroOp",
    "UopsDatabase",
    "analyze_block",
    "can_macro_fuse",
]
