"""The :class:`InstrInfo` record returned by the uops database."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

PortSet = FrozenSet[int]


@dataclass(frozen=True)
class InstrInfo:
    """Microarchitectural characterization of one instruction instance.

    Attributes:
        template_name: the instruction form this record describes.
        fused_uops: fused-domain µops produced by decoding (what the
            decoders, DSB and LSD handle).
        issued_uops: µops occupying renamer issue slots, i.e. fused-domain
            after unlamination.
        port_sets: one entry per dispatched (unfused) µop: the set of
            execution ports that µop may be dispatched to.  Empty for
            eliminated µops and NOPs.
        latency: execution latency in cycles from register sources to the
            produced value (excluding any load part).
        load_latency: additional latency from *address* sources through the
            load unit; zero for instructions that do not load.
        requires_complex_decoder: must be decoded by the complex decoder.
        n_available_simple_decoders: how many simple decoders can decode
            other instructions in the same cycle (uops.info terminology,
            consumed by Algorithm 1 of the paper).
        eliminated: handled at rename (move elimination / zero idiom);
            issued but never dispatched.
        is_nop: architectural no-op (issued, not dispatched, no values).
    """

    template_name: str
    fused_uops: int
    issued_uops: int
    port_sets: Tuple[PortSet, ...]
    latency: int
    load_latency: int
    requires_complex_decoder: bool
    n_available_simple_decoders: int
    eliminated: bool = False
    is_nop: bool = False

    @property
    def dispatched_uops(self) -> int:
        """Number of µops that occupy execution ports."""
        return len(self.port_sets)
