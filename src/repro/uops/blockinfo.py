"""Block-level microarchitectural analysis.

:func:`analyze_block` pairs macro-fusible instructions and attaches
:class:`~repro.uops.info.InstrInfo` records, producing the *macro-op*
stream every pipeline model (analytical and simulated) operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.isa.block import BasicBlock
from repro.isa.instruction import Instruction
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase
from repro.uops.fusion import can_macro_fuse
from repro.uops.info import InstrInfo


@dataclass
class MacroOp:
    """One decoded unit: a single instruction or a macro-fused pair.

    Attributes:
        instructions: the underlying instruction(s); two when macro-fused.
        info: merged characterization (a fused pair is one µop executing
            on the fused-branch ports).
        first_index: index of the first instruction within the block.
    """

    instructions: Tuple[Instruction, ...]
    info: InstrInfo
    first_index: int

    @property
    def is_fused_pair(self) -> bool:
        return len(self.instructions) == 2

    @property
    def is_macro_fusible(self) -> bool:
        """Macro-fusible first instructions cannot use the last decoder on
        microarchitectures with that restriction (Algorithm 1, line 14)."""
        return (self.is_fused_pair
                or self.instructions[0].template.fusible_first is not None)

    @property
    def is_branch(self) -> bool:
        return self.instructions[-1].is_branch

    @property
    def length(self) -> int:
        return sum(i.length for i in self.instructions)


@dataclass
class AnalyzedInstruction:
    """Per-instruction view with fusion markers."""

    instr: Instruction
    info: InstrInfo
    index: int
    fused_with_next: bool = False
    fused_into_prev: bool = False


def analyze_block(block: BasicBlock,
                  cfg: MicroArchConfig,
                  db: Optional[UopsDatabase] = None,
                  ) -> List[AnalyzedInstruction]:
    """Characterize every instruction of *block* on *cfg*.

    Macro-fusible (flag-producer, Jcc) pairs are marked; downstream models
    obtain the fused stream via :func:`macro_ops`.
    """
    db = db or UopsDatabase(cfg)
    analyzed = [
        AnalyzedInstruction(instr, db.info(instr), idx)
        for idx, instr in enumerate(block)
    ]
    i = 0
    while i < len(analyzed) - 1:
        first, second = analyzed[i], analyzed[i + 1]
        if (not first.fused_into_prev
                and can_macro_fuse(first.instr, second.instr, cfg)):
            first.fused_with_next = True
            second.fused_into_prev = True
            i += 2
        else:
            i += 1
    return analyzed


def macro_ops(analyzed: Sequence[AnalyzedInstruction],
              cfg: MicroArchConfig) -> List[MacroOp]:
    """Collapse an analyzed instruction stream into macro-ops."""
    ops: List[MacroOp] = []
    fused_branch_ports = cfg.ports_for("fused_branch")
    for entry in analyzed:
        if entry.fused_into_prev:
            continue
        if entry.fused_with_next:
            second = analyzed[entry.index + 1]
            merged = InstrInfo(
                template_name=(f"{entry.info.template_name}+"
                               f"{second.info.template_name}"),
                fused_uops=1,
                issued_uops=1,
                port_sets=(fused_branch_ports,),
                latency=entry.info.latency,
                load_latency=0,
                requires_complex_decoder=False,
                n_available_simple_decoders=cfg.n_decoders - 1,
            )
            ops.append(MacroOp((entry.instr, second.instr), merged,
                               entry.index))
        else:
            ops.append(MacroOp((entry.instr,), entry.info, entry.index))
    return ops
