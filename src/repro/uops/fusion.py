"""Macro-fusion rules (flag-producer + conditional branch pairs).

The fusion rules follow the Intel SDM: TEST/AND fuse with every Jcc;
CMP/ADD/SUB fuse with the carry- and sign-comparison conditions; INC/DEC
fuse with the non-carry conditions; instructions with memory operands do
not fuse.  All microarchitectures in the evaluation support macro fusion.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.templates import CMP_FUSIBLE_CCS, INCDEC_FUSIBLE_CCS
from repro.uarch.config import MicroArchConfig


def can_macro_fuse(first: Instruction, second: Instruction,
                   cfg: MicroArchConfig) -> bool:
    """True when *first* macro-fuses with the following *second*."""
    fuse_class = first.template.fusible_first
    if fuse_class is None:
        return False
    if first.mem_operand() is not None:
        return False
    if not second.is_cond_branch:
        return False
    cc = second.template.cc
    if fuse_class == "test":
        return True
    if fuse_class == "cmp":
        return cc in CMP_FUSIBLE_CCS
    if fuse_class == "incdec":
        return cc in INCDEC_FUSIBLE_CCS
    return False
