"""The per-µarch instruction database (uops.info substitute).

:class:`UopsDatabase` characterizes instruction instances on one
microarchitecture: fused-domain/issued/dispatched µop counts, port usage,
latencies, and decoder constraints.  The characterization is composed from
the instruction template's *archetype* plus instance-level properties
(addressing mode, zero idioms) and the µarch configuration.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.instruction import Instruction
from repro.isa.operands import MemOperand
from repro.isa.registers import Register
from repro.uarch.config import MicroArchConfig
from repro.uops.info import InstrInfo

#: Default execution latency per archetype (cycles).  Per-µarch deltas live
#: in MicroArchConfig.lat_overrides.
_DEFAULT_LATENCY: Dict[str, int] = {
    "alu": 1, "alu_noflags": 1, "alu_any": 1, "adc": 1, "mov_rr": 1,
    "mov_ri": 1, "cdq": 1, "setcc": 1, "cmov": 1, "shift": 1,
    "shift_cl": 1, "imul": 3, "mul_wide": 3, "div": 36, "bit_scan": 3,
    "lea": 1, "xchg": 2, "bswap": 2, "nop": 0, "branch": 1,
    "cond_branch": 1, "push": 1, "pop": 1, "load": 1, "store": 1,
    "alu_load": 1, "cmp_load": 1, "alu_rmw": 1,
    "fp_add": 4, "fp_mul": 4, "fma": 4, "fp_add_load": 4, "fp_mul_load": 4,
    "fp_div": 11, "fp_div_scalar": 11, "fp_sqrt": 12,
    "vec_int": 1, "vec_int_mul": 10, "vec_logic": 1, "vec_mov": 1,
    "vec_load": 1, "vec_store": 1,
}

#: Archetypes whose load-form latency adds the L1 load-to-use latency on
#: the path from the address registers (and from memory to the result).
_LOADING_ARCHETYPES = frozenset({
    "load", "pop", "vec_load", "alu_load", "cmp_load", "alu_rmw",
    "fp_add_load", "fp_mul_load",
})


class UopsDatabase:
    """Instruction characterizations for one microarchitecture.

    The database is memoized per (template, addressing-shape, idiom) key,
    so repeated queries for the same instruction form are O(1).
    """

    def __init__(self, cfg: MicroArchConfig):
        self.cfg = cfg
        self._cache: Dict[tuple, InstrInfo] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def info(self, instr: Instruction) -> InstrInfo:
        """Return the characterization of *instr* on this µarch."""
        key = self._cache_key(instr)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._characterize(instr)
            self._cache[key] = cached
        return cached

    def latency(self, instr: Instruction) -> int:
        """Execution latency of *instr* (register path)."""
        return self.info(instr).latency

    def dep_latencies(
            self, instr: Instruction,
    ) -> List[Tuple[Register, Register, int]]:
        """Latency edges (src_root, dst_root, cycles) for *instr*.

        This provides the data the paper's dependence graph (§4.9) reads
        from uops.info: for every consumed/produced value pair, the latency
        between consumption and production.  Address-register sources of
        loading instructions additionally pay the L1 load-to-use latency.
        """
        info = self.info(instr)
        if info.eliminated:
            base = 0
        else:
            base = info.latency
        mem = instr.mem_operand()
        addr_roots = set()
        if mem is not None:
            addr_roots = {r.root().name for r in mem.address_regs()}
        edges = []
        for src in instr.regs_read():
            extra = info.load_latency if src.name in addr_roots else 0
            for dst in instr.regs_written():
                edges.append((src, dst, base + extra))
        return edges

    def supports(self, instr: Instruction) -> bool:
        """True when the instruction exists on this µarch."""
        return self.cfg.supports(instr.template.feature)

    # ------------------------------------------------------------------
    # Characterization
    # ------------------------------------------------------------------

    def _cache_key(self, instr: Instruction) -> tuple:
        mem = instr.mem_operand()
        return (
            instr.template.name,
            mem.has_index if mem is not None else False,
            self._mem_components(mem),
            instr.is_zeroing_idiom(),
        )

    @staticmethod
    def _mem_components(mem) -> int:
        if mem is None:
            return 0
        return sum((mem.base is not None, mem.index is not None,
                    mem.disp != 0))

    def _base_latency(self, archetype: str) -> int:
        override = self.cfg.lat_overrides.get(archetype)
        if override is not None:
            return override
        return _DEFAULT_LATENCY[archetype]

    def _characterize(self, instr: Instruction) -> InstrInfo:
        if not self.supports(instr):
            raise UnsupportedInstruction(
                f"{instr.template.name} requires {instr.template.feature!r}"
                f" which {self.cfg.abbrev} does not support")
        archetype = instr.template.uop_archetype
        mem = instr.mem_operand()
        indexed = mem.has_index if mem is not None else False

        fused, kinds, eliminated, is_nop, latency = self._compose(
            instr, archetype, mem, indexed)

        micro_fused = len(kinds) > fused
        issued = fused
        if self.cfg.unlaminate_indexed and micro_fused and indexed:
            issued = len(kinds)

        port_sets: Tuple = ()
        if not eliminated and not is_nop:
            port_sets = tuple(self.cfg.ports_for(k) for k in kinds)

        requires_complex = fused > 1
        n_avail = self.cfg.n_decoders - 1
        if requires_complex:
            n_avail = max(0, self.cfg.n_decoders - 1 - max(0, fused - 2))

        load_latency = (self.cfg.load_latency
                        if archetype in _LOADING_ARCHETYPES else 0)

        return InstrInfo(
            template_name=instr.template.name,
            fused_uops=fused,
            issued_uops=issued,
            port_sets=port_sets,
            latency=latency,
            load_latency=load_latency,
            requires_complex_decoder=requires_complex,
            n_available_simple_decoders=n_avail,
            eliminated=eliminated,
            is_nop=is_nop,
        )

    def _compose(self, instr: Instruction, archetype: str,
                 mem, indexed: bool):
        """Return (fused_uops, µop kinds, eliminated, is_nop, latency)."""
        cfg = self.cfg
        latency = self._base_latency(
            archetype if archetype != "lea" else "lea")
        store_agu = "store_agu_indexed" if indexed else "store_agu"
        eliminated = False
        is_nop = False
        fused = 1
        kinds: List[str]

        if archetype in ("alu", "alu_noflags", "alu_any", "mov_ri", "cdq"):
            kinds = ["int_alu"]
        elif archetype == "mov_rr":
            kinds = ["int_alu"]
            eliminated = cfg.gpr_move_elim
        elif archetype == "adc":
            n = 2 if self._base_latency("adc") > 1 else 1
            fused, kinds = n, ["flags_alu"] * n
        elif archetype == "cmov":
            n = 2 if self._base_latency("cmov") > 1 else 1
            fused, kinds = n, ["flags_alu"] * n
        elif archetype == "setcc":
            kinds = ["flags_alu"]
        elif archetype == "shift":
            kinds = ["int_shift"]
        elif archetype == "shift_cl":
            fused, kinds = 2, ["int_shift", "flags_alu"]
            latency = 1
        elif archetype == "imul":
            kinds = ["int_mul"]
        elif archetype == "mul_wide":
            fused, kinds = 2, ["int_mul", "int_mul_aux"]
        elif archetype == "div":
            fused, kinds = 4, ["div"] * 4
        elif archetype == "bit_scan":
            kinds = ["bit_scan"]
        elif archetype == "lea":
            slow = self._mem_components(mem) >= 3
            kinds = ["lea_slow" if slow else "lea_simple"]
            latency = 3 if slow else 1
        elif archetype in ("load", "pop"):
            kinds = ["load"]
            latency = 0  # the load path is carried by load_latency
        elif archetype in ("store", "push"):
            kinds = [store_agu, "store_data"]
        elif archetype in ("alu_load", "cmp_load"):
            kinds = ["load", "int_alu"]
            latency = 1
        elif archetype == "alu_rmw":
            fused = 2
            kinds = ["load", "int_alu", store_agu, "store_data"]
            latency = 1
        elif archetype == "xchg":
            fused, kinds = 3, ["int_alu"] * 3
        elif archetype == "bswap":
            fused, kinds = 2, ["int_alu", "int_alu"]
        elif archetype == "nop":
            kinds = []
            is_nop = True
        elif archetype in ("branch", "cond_branch"):
            kinds = ["branch"]
        elif archetype == "vec_mov":
            kinds = ["vec_mov"]
            eliminated = cfg.vec_move_elim
        elif archetype == "vec_load":
            kinds = ["load"]
            latency = 0
        elif archetype == "vec_store":
            kinds = [store_agu, "store_data"]
        elif archetype in ("vec_int", "vec_logic"):
            kinds = [archetype]
        elif archetype == "vec_int_mul":
            kinds = ["vec_int_mul"]
        elif archetype in ("fp_add", "fp_mul", "fma"):
            kinds = {"fp_add": ["vec_fp_add"], "fp_mul": ["vec_fp_mul"],
                     "fma": ["fma"]}[archetype]
        elif archetype in ("fp_add_load", "fp_mul_load"):
            kinds = ["load",
                     "vec_fp_add" if archetype == "fp_add_load"
                     else "vec_fp_mul"]
        elif archetype in ("fp_div", "fp_div_scalar"):
            kinds = ["vec_fp_div"]
        elif archetype == "fp_sqrt":
            kinds = ["fp_sqrt"]
        else:
            raise KeyError(f"unknown archetype {archetype!r}")

        if instr.is_zeroing_idiom():
            eliminated = True
            latency = 0

        return fused, kinds, eliminated, is_nop, latency


class UnsupportedInstruction(Exception):
    """Raised when an instruction is queried on a µarch lacking it."""
