"""Seeded random generation of benchmark basic blocks."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bhive.categories import CATEGORIES, Category
from repro.isa.assembler import assemble
from repro.isa.block import BasicBlock

#: Data registers (64-bit roots) the generator cycles through.
_DATA_REGS = ("rax", "rbx", "rcx", "rdx", "r8", "r9", "r10", "r11")
#: Pointer registers used as bases of memory operands.
_PTR_REGS = ("rsi", "rdi", "r12", "r13", "r14", "r15", "rbp")
#: 16-bit views of the data registers (for LCP instructions).
_REG16 = {"rax": "ax", "rbx": "bx", "rcx": "cx", "rdx": "dx",
          "r8": "r8w", "r9": "r9w", "r10": "r10w", "r11": "r11w"}

_ALU_MNEMONICS = ("add", "sub", "and", "or", "xor")


class _GenState:
    """Mutable per-block generation state (register chains)."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.last_gpr: Optional[str] = None
        self.last_vec: Optional[str] = None
        self._gpr_cursor = rng.randrange(len(_DATA_REGS))
        self._vec_cursor = rng.randrange(8)

    def fresh_gpr(self) -> str:
        self._gpr_cursor = (self._gpr_cursor + 1) % len(_DATA_REGS)
        return _DATA_REGS[self._gpr_cursor]

    def gpr_dest(self, chain: bool) -> str:
        if chain and self.last_gpr is not None:
            return self.last_gpr
        reg = self.fresh_gpr()
        self.last_gpr = reg
        return reg

    def gpr_src(self, chain: bool) -> str:
        if chain and self.last_gpr is not None:
            return self.last_gpr
        return self.rng.choice(_DATA_REGS)

    def fresh_vec(self, width: str = "xmm") -> str:
        self._vec_cursor = (self._vec_cursor + 1) % 16
        return f"{width}{self._vec_cursor}"

    def vec_dest(self, chain: bool, width: str = "xmm") -> str:
        if chain and self.last_vec is not None \
                and self.last_vec.startswith(width):
            return self.last_vec
        reg = self.fresh_vec(width)
        self.last_vec = reg
        return reg

    def vec_src(self, width: str = "xmm") -> str:
        return f"{width}{self.rng.randrange(16)}"

    def ptr(self) -> str:
        return self.rng.choice(_PTR_REGS)

    def disp(self) -> int:
        return self.rng.choice((0, 8, 16, 24, 32, 64, 128, 256))


_Builder = Callable[[_GenState, bool], str]


def _alu_rr(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(_ALU_MNEMONICS)
    dst = state.gpr_dest(chain)
    src = state.gpr_src(False)
    return f"{mnem} {dst}, {src}"

def _alu_ri(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(_ALU_MNEMONICS + ("cmp",))
    dst = state.gpr_dest(chain)
    imm = state.rng.choice((1, 7, 100, 5000, 1 << 20))
    return f"{mnem} {dst}, {imm}"

def _mov_ri(state: _GenState, chain: bool) -> str:
    del chain
    return f"mov {state.fresh_gpr()}, {state.rng.randrange(1, 1 << 30)}"

def _mov_rr(state: _GenState, chain: bool) -> str:
    return f"mov {state.fresh_gpr()}, {state.gpr_src(chain)}"

def _lea(state: _GenState, chain: bool) -> str:
    dst = state.gpr_dest(chain)
    base = state.gpr_src(chain)
    index = state.gpr_src(False)
    scale = state.rng.choice((1, 2, 4, 8))
    if state.rng.random() < 0.5:
        return f"lea {dst}, [{base}+{index}*{scale}]"
    return f"lea {dst}, [{base}+{index}*{scale}+{state.disp() or 8}]"

def _imul(state: _GenState, chain: bool) -> str:
    return f"imul {state.gpr_dest(chain)}, {state.gpr_src(False)}"

def _shift(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("shl", "shr", "sar"))
    return f"{mnem} {state.gpr_dest(chain)}, {state.rng.randrange(1, 32)}"

def _movzx(state: _GenState, chain: bool) -> str:
    del chain
    lo = {"rax": "al", "rbx": "bl", "rcx": "cl", "rdx": "dl",
          "r8": "r8b", "r9": "r9b", "r10": "r10b", "r11": "r11b"}
    src = state.rng.choice(list(lo.values()))
    dst32 = {"rax": "eax", "rbx": "ebx", "rcx": "ecx", "rdx": "edx",
             "r8": "r8d", "r9": "r9d", "r10": "r10d",
             "r11": "r11d"}[state.fresh_gpr()]
    return f"movzx {dst32}, {src}"

def _cmp_setcc(state: _GenState, chain: bool) -> str:
    del chain
    return f"set{state.rng.choice(('e', 'ne', 'l', 'ge'))} al"

def _cmov(state: _GenState, chain: bool) -> str:
    cond = state.rng.choice(("e", "ne", "l", "ge"))
    return f"cmov{cond} {state.gpr_dest(chain)}, {state.gpr_src(False)}"

def _load(state: _GenState, chain: bool) -> str:
    dst = state.gpr_dest(chain)
    base = state.ptr()
    if state.rng.random() < 0.3:
        index = state.gpr_src(False)
        return f"mov {dst}, qword ptr [{base}+{index}*8+{state.disp()}]"
    return f"mov {dst}, qword ptr [{base}+{state.disp()}]"

def _store(state: _GenState, chain: bool) -> str:
    src = state.gpr_src(chain)
    base = state.ptr()
    if state.rng.random() < 0.25:
        index = state.gpr_src(False)
        return f"mov qword ptr [{base}+{index}*8+{state.disp()}], {src}"
    return f"mov qword ptr [{base}+{state.disp()}], {src}"

def _rmw(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("add", "sub", "and", "or"))
    return (f"{mnem} qword ptr [{state.ptr()}+{state.disp()}], "
            f"{state.gpr_src(chain)}")

def _alu_load(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("add", "sub", "and", "xor"))
    dst = state.gpr_dest(chain)
    return f"{mnem} {dst}, qword ptr [{state.ptr()}+{state.disp()}]"

def _push_pop(state: _GenState, chain: bool) -> str:
    del chain
    if state.rng.random() < 0.5:
        return f"push {state.gpr_src(False)}"
    return f"pop {state.fresh_gpr()}"

def _bswap(state: _GenState, chain: bool) -> str:
    return f"bswap {state.gpr_dest(chain)}"

def _popcnt(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("popcnt", "lzcnt", "tzcnt"))
    return f"{mnem} {state.gpr_dest(chain)}, {state.gpr_src(chain)}"

def _lcp(state: _GenState, chain: bool) -> str:
    reg = _REG16[state.gpr_dest(chain)]
    mnem = state.rng.choice(("add", "mov", "cmp"))
    return f"{mnem} {reg}, {state.rng.randrange(300, 30000)}"

def _nop(state: _GenState, chain: bool) -> str:
    del chain
    length = state.rng.choice((1, 4, 5, 7, 8, 9, 10, 15))
    return "nop" if length == 1 else f"nop{length}"

def _sse_fp(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("addps", "mulps", "subps", "minps", "maxps",
                             "addss", "mulsd", "addpd"))
    dst = state.vec_dest(chain)
    return f"{mnem} {dst}, {state.vec_src()}"

def _sse_int(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("paddd", "psubd", "pxor", "pand", "por",
                             "paddq"))
    return f"{mnem} {state.vec_dest(chain)}, {state.vec_src()}"

def _vec_mov(state: _GenState, chain: bool) -> str:
    del chain
    return f"movaps {state.fresh_vec()}, {state.vec_src()}"

def _vec_load(state: _GenState, chain: bool) -> str:
    del chain
    return (f"movaps {state.fresh_vec()}, "
            f"xmmword ptr [{state.ptr()}+{state.disp()}]")

def _vec_store(state: _GenState, chain: bool) -> str:
    del chain
    return (f"movaps xmmword ptr [{state.ptr()}+{state.disp()}], "
            f"{state.vec_src()}")

def _avx_fp(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("vaddps", "vmulps", "vsubps"))
    width = state.rng.choice(("xmm", "ymm"))
    dst = state.vec_dest(chain, width)
    return f"{mnem} {dst}, {state.vec_src(width)}, {state.vec_src(width)}"

def _fp_div(state: _GenState, chain: bool) -> str:
    return f"divps {state.vec_dest(chain)}, {state.vec_src()}"

def _fp_load(state: _GenState, chain: bool) -> str:
    mnem = state.rng.choice(("addps", "mulps"))
    dst = state.vec_dest(chain)
    return f"{mnem} {dst}, xmmword ptr [{state.ptr()}+{state.disp()}]"


#: Per-category weighted instruction menus.
_MENUS: Dict[str, List[Tuple[float, _Builder]]] = {
    "scalar_int": [
        (0.26, _alu_rr), (0.15, _alu_ri), (0.13, _lea), (0.11, _mov_rr),
        (0.08, _mov_ri), (0.07, _shift), (0.03, _imul), (0.06, _load),
        (0.04, _cmov), (0.04, _movzx), (0.02, _cmp_setcc), (0.01, _lcp),
    ],
    "numerical": [
        (0.22, _sse_fp), (0.13, _avx_fp), (0.14, _fp_load),
        (0.15, _vec_load), (0.08, _sse_int), (0.10, _vec_store),
        (0.05, _alu_rr), (0.04, _lea), (0.08, _vec_mov), (0.01, _fp_div),
    ],
    "memory": [
        (0.28, _load), (0.20, _store), (0.14, _alu_load), (0.12, _rmw),
        (0.10, _lea), (0.10, _alu_rr), (0.06, _mov_rr),
    ],
    "crypto": [
        (0.28, _alu_rr), (0.20, _shift), (0.14, _popcnt), (0.10, _bswap),
        (0.10, _alu_ri), (0.08, _imul), (0.06, _load), (0.04, _mov_rr),
    ],
    "mov_heavy": [
        (0.34, _mov_rr), (0.18, _push_pop), (0.14, _store), (0.12, _load),
        (0.12, _vec_mov), (0.10, _alu_rr),
    ],
    "front_end": [
        (0.30, _nop), (0.20, _lcp), (0.18, _alu_rr), (0.12, _mov_ri),
        (0.10, _lea), (0.10, _vec_mov),
    ],
}


#: The mutation operators of the deviation-discovery layer, in the order
#: the generator's RNG draws them.  Each takes a block body (assembly
#: lines) and returns a syntactically valid body of at least one line:
#:
#: * ``drop``       — remove one instruction;
#: * ``duplicate``  — re-insert a copy of one instruction;
#: * ``substitute`` — replace one instruction with a fresh draw from the
#:   block's category menu.
MUTATIONS = ("drop", "duplicate", "substitute")

#: Back-edge conditions loop (BHiveL) variants draw from.
LOOP_CONDS = ("ne", "e", "l", "ge")


def loop_back_edge(body_len: int, cond: str) -> str:
    """The backward conditional jump closing a loop body.

    The displacement targets the body's first instruction: rel8 when it
    reaches (a 2-byte jcc), rel32 (6 bytes) otherwise.  Shared by the
    suite generator and the discovery layer's candidates so both build
    identical loop conventions.
    """
    if body_len + 2 <= 128:
        disp = -(body_len + 2)
    else:
        disp = -(body_len + 6)
    return f"j{cond} {disp}"


class BlockGenerator:
    """Deterministic benchmark generator.

    Args:
        seed: RNG seed; suites are fully reproducible from it.

    The generator emits only instructions available on *all* evaluated
    microarchitectures (SSE + 128/256-bit AVX1), like the original BHive
    suite, so the same benchmarks can be measured on every generation
    from Sandy Bridge to Rocket Lake.
    """

    def __init__(self, seed: int = 2023):
        self.rng = random.Random(seed)

    def draw_line(self, category: Category,
                  state: Optional[_GenState] = None) -> str:
        """Draw one instruction from the category's weighted menu."""
        rng = self.rng
        if state is None:
            state = _GenState(rng)
        menu = _MENUS[category.name]
        builder = rng.choices([b for _, b in menu],
                              weights=[w for w, _ in menu])[0]
        chain = rng.random() < category.chain_probability
        return builder(state, chain)

    def body(self, category: Category) -> List[str]:
        """Generate the assembly lines of one block body."""
        rng = self.rng
        state = _GenState(rng)
        n = rng.randint(category.min_instructions,
                        category.max_instructions)
        return [self.draw_line(category, state) for _ in range(n)]

    def mutate(self, lines: Sequence[str], category: Category,
               mutation: Optional[str] = None) -> Tuple[List[str], str]:
        """Apply one mutation to a block body (discovery campaigns).

        Returns ``(new_lines, mutation_name)``.  The result always
        assembles: drop/duplicate permute existing (valid) lines, and
        substitutions come from the same menus as generated blocks.  A
        one-line body is never dropped to zero — ``drop`` falls back to
        ``substitute`` there.
        """
        rng = self.rng
        lines = list(lines)
        if mutation is None:
            mutation = rng.choice(MUTATIONS)
        if mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutation!r} "
                             f"(expected one of {MUTATIONS})")
        if mutation == "drop" and len(lines) <= 1:
            mutation = "substitute"
        index = rng.randrange(len(lines))
        if mutation == "drop":
            del lines[index]
        elif mutation == "duplicate":
            lines.insert(rng.randrange(len(lines) + 1), lines[index])
        else:  # substitute
            lines[index] = self.draw_line(category)
        return lines, mutation

    def block_pair(self, category: Category
                   ) -> Tuple[BasicBlock, BasicBlock]:
        """Generate the (BHiveU, BHiveL) variants of one benchmark."""
        lines = self.body(category)
        block_u = BasicBlock(assemble("\n".join(lines)))

        loop_lines = list(lines)
        cond = self.rng.choice(LOOP_CONDS)
        if self.rng.random() < 0.5:
            loop_lines.append(f"cmp {_DATA_REGS[self.rng.randrange(8)]}, "
                              f"{_DATA_REGS[self.rng.randrange(8)]}")
        body_len = BasicBlock(assemble("\n".join(loop_lines))).num_bytes
        loop_lines.append(loop_back_edge(body_len, cond))
        block_l = BasicBlock(assemble("\n".join(loop_lines)))
        return block_u, block_l
