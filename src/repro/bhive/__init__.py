"""BHive substrate: a synthetic basic-block benchmark suite.

The original evaluation uses (a filtered version of) the BHive suite —
300k+ basic blocks extracted from real applications in numerical
computing, databases, compilers, machine learning and cryptography.  The
suite is not redistributable offline, so this package generates a
*synthetic* suite with the property that actually matters for the
evaluation: a diverse, reproducible distribution of blocks whose
bottlenecks span the predecoder, the decoders, the issue stage, the
execution ports, and loop-carried dependence chains.

Every benchmark comes in two variants, mirroring the paper's §6.1:

* **BHiveU**: the plain block (no branch) — measured under the unrolled
  (TPU) notion of throughput.
* **BHiveL**: the same block ending in a backward conditional branch —
  measured under the loop (TPL) notion.

All generated blocks conform to the modeling assumptions of §3.3 by
construction (no unaligned accesses modeled, no branch bodies, register
and L1-resident memory traffic only).
"""

from repro.bhive.categories import CATEGORIES, Category
from repro.bhive.generator import MUTATIONS, BlockGenerator
from repro.bhive.suite import Benchmark, BenchmarkSuite, default_suite

__all__ = [
    "Benchmark",
    "BenchmarkSuite",
    "BlockGenerator",
    "CATEGORIES",
    "Category",
    "MUTATIONS",
    "default_suite",
]
