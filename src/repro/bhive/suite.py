"""Benchmark suite assembly and caching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.bhive.categories import CATEGORIES, Category
from repro.bhive.generator import BlockGenerator
from repro.isa.block import BasicBlock


@dataclass(frozen=True)
class Benchmark:
    """One benchmark with its two throughput-notion variants.

    Attributes:
        name: stable identifier, e.g. ``"numerical_0042"``.
        category: the workload category name.
        block_u: the BHiveU variant (no branch; TPU measurements).
        block_l: the BHiveL variant (branch back-edge; TPL measurements).
    """

    name: str
    category: str
    block_u: BasicBlock
    block_l: BasicBlock

    def block(self, loop: bool) -> BasicBlock:
        return self.block_l if loop else self.block_u


class BenchmarkSuite:
    """A reproducible collection of benchmarks."""

    def __init__(self, benchmarks: Sequence[Benchmark], seed: int):
        self.benchmarks = list(benchmarks)
        self.seed = seed

    @classmethod
    def generate(cls, size: int, seed: int = 2023) -> "BenchmarkSuite":
        """Generate *size* benchmarks with the default category mix."""
        generator = BlockGenerator(seed)
        weights = [c.weight for c in CATEGORIES]
        benchmarks = []
        counters: Dict[str, int] = {}
        for _ in range(size):
            category = generator.rng.choices(CATEGORIES,
                                             weights=weights)[0]
            index = counters.get(category.name, 0)
            counters[category.name] = index + 1
            block_u, block_l = generator.block_pair(category)
            benchmarks.append(Benchmark(
                name=f"{category.name}_{index:04d}",
                category=category.name,
                block_u=block_u,
                block_l=block_l,
            ))
        return cls(benchmarks, seed)

    def blocks(self, loop: bool) -> List[BasicBlock]:
        return [b.block(loop) for b in self.benchmarks]

    def __len__(self) -> int:
        return len(self.benchmarks)

    def __iter__(self) -> Iterator[Benchmark]:
        return iter(self.benchmarks)

    def __getitem__(self, idx: int) -> Benchmark:
        return self.benchmarks[idx]


_SUITE_CACHE: Dict[Tuple[int, int], BenchmarkSuite] = {}

#: Default suite size for table generation.  The paper uses the filtered
#: BHive suite (~100k blocks); the reproduction default keeps end-to-end
#: table generation in the minutes range while remaining statistically
#: stable.  Pass a larger size for higher-fidelity runs.
DEFAULT_SIZE = 150
DEFAULT_SEED = 2023


def default_suite(size: int = DEFAULT_SIZE,
                  seed: int = DEFAULT_SEED) -> BenchmarkSuite:
    """The (cached) default benchmark suite."""
    key = (size, seed)
    if key not in _SUITE_CACHE:
        _SUITE_CACHE[key] = BenchmarkSuite.generate(size, seed)
    return _SUITE_CACHE[key]
