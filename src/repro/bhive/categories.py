"""Benchmark categories mirroring BHive's application domains."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Category:
    """One workload category.

    Attributes:
        name: identifier used in reports.
        weight: sampling weight in the default suite.
        min_instructions / max_instructions: block size range.
        chain_probability: probability that an instruction extends an
            existing dependence chain rather than starting a fresh one
            (higher values produce Precedence-bound blocks).
        description: what the category stands in for.
    """

    name: str
    weight: float
    min_instructions: int
    max_instructions: int
    chain_probability: float
    description: str


#: The default category mix.  Weights are tuned so that the bottleneck
#: distribution over the generated suite is diverse (cf. Figure 6 of the
#: paper, where Predec/Dec/Issue/Ports/Precedence all appear).
CATEGORIES: Tuple[Category, ...] = (
    Category(
        name="scalar_int", weight=0.26,
        min_instructions=2, max_instructions=14, chain_probability=0.15,
        description="compiler/database scalar code: ALU, lea, mov, "
                    "cmp/test, shifts, an occasional imul",
    ),
    Category(
        name="numerical", weight=0.20,
        min_instructions=3, max_instructions=16, chain_probability=0.10,
        description="numerical kernels: SSE/AVX floating point with "
                    "loads and independent accumulator streams",
    ),
    Category(
        name="memory", weight=0.16,
        min_instructions=2, max_instructions=12, chain_probability=0.15,
        description="pointer-rich database-style code: loads, stores, "
                    "read-modify-write, address arithmetic",
    ),
    Category(
        name="crypto", weight=0.08,
        min_instructions=4, max_instructions=18, chain_probability=0.55,
        description="cryptography-style long dependence chains: xor, "
                    "shifts, rotates-by-shift, bswap, popcnt",
    ),
    Category(
        name="mov_heavy", weight=0.12,
        min_instructions=3, max_instructions=12, chain_probability=0.10,
        description="register shuffles and spills: mov r,r / push / pop "
                    "/ stack traffic (move-elimination sensitive)",
    ),
    Category(
        name="front_end", weight=0.18,
        min_instructions=4, max_instructions=16, chain_probability=0.05,
        description="front-end stressors: long-encoding instructions, "
                    "multi-byte NOPs, 16-bit immediates (LCP stalls)",
    ),
)
