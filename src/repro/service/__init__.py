"""The prediction service: Facile as long-lived infrastructure.

``facile serve`` exposes the batch engine of :mod:`repro.engine` over
HTTP (stdlib only, JSON bodies).  The package has four modules:

* :mod:`repro.service.serialize` — the wire format: request parsing,
  canonical JSON encoding of :class:`~repro.core.model.Prediction`
  values (deterministic bytes, so batching never changes responses),
  and the versioned v1 response envelope / error-code vocabulary;
* :mod:`repro.service.shard` — :class:`~repro.service.shard.ShardEngine`,
  the per-µarch worker-process proxy the front-end shards work across;
* :mod:`repro.service.server` — :class:`PredictionService`, an
  ``asyncio`` front-end that parses HTTP on an event loop, answers hot
  blocks from a response-fragment cache, and feeds everything else
  through a per-µarch :class:`~repro.engine.batching.MicroBatcher`
  into that µarch's shard;
* :mod:`repro.service.client` — :class:`ServiceClient`, the small
  ``urllib``-based client used by the tests, the examples, and the
  service load generator in :mod:`repro.engine.bench`, with typed
  :class:`PredictionResult` / :class:`BulkResult` views.

Endpoint reference and schemas: ``docs/SERVICE.md``.
"""

from repro.service.client import BulkResult, PredictionResult, \
    ServiceClient, ServiceError
from repro.service.serialize import API_VERSION, ERROR_CODES, \
    RequestError, json_bytes, prediction_to_dict
from repro.service.server import PredictionService
from repro.service.shard import ShardEngine

__all__ = [
    "API_VERSION",
    "BulkResult",
    "ERROR_CODES",
    "PredictionResult",
    "PredictionService",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "ShardEngine",
    "json_bytes",
    "prediction_to_dict",
]
