"""The prediction service: Facile as long-lived infrastructure.

``facile serve`` exposes the batch engine of :mod:`repro.engine` over
HTTP (stdlib only, JSON bodies).  The package has three modules:

* :mod:`repro.service.serialize` — the wire format: request parsing and
  canonical JSON encoding of :class:`~repro.core.model.Prediction`
  values (deterministic bytes, so batching never changes responses);
* :mod:`repro.service.server` — :class:`PredictionService`, a
  ``ThreadingHTTPServer`` whose handler feeds every predict request
  through a per-µarch :class:`~repro.engine.batching.MicroBatcher`;
* :mod:`repro.service.client` — :class:`ServiceClient`, the small
  ``urllib``-based client used by the tests, the examples, and the
  service load generator in :mod:`repro.engine.bench`.

Endpoint reference and schemas: ``docs/SERVICE.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.serialize import RequestError, json_bytes, \
    prediction_to_dict
from repro.service.server import PredictionService

__all__ = [
    "PredictionService",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "json_bytes",
    "prediction_to_dict",
]
