"""A typed stdlib client for the prediction service.

Used by the test suite, the examples, and the service load generator in
:mod:`repro.engine.bench`; it is also the reference for how to talk to
``facile serve`` from any other HTTP client (see ``docs/SERVICE.md``
for the raw schemas and equivalent ``curl`` invocations).

:class:`ServiceClient` speaks the versioned ``/v1/`` API by default: it
negotiates once per client (``GET /v1/health``; a 404 means a pre-v1
server) and transparently unwraps the v1 response envelope, so the same
client code works against both API generations.  Prediction endpoints
return typed :class:`PredictionResult` / :class:`BulkResult` views that
still behave like the underlying payload dicts (``result["cycles"]``
and ``result.cycles`` are the same value).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.robustness.retry import RetryPolicy


class ServiceError(Exception):
    """An error response from the service.

    Attributes:
        status: the HTTP status code.
        message: the error message from the JSON error body (either
            API generation).
        code: the machine-readable v1 error code (``"overloaded"``,
            ``"deadline_exceeded"``, ...); ``None`` on legacy
            responses, which carry only the message.
        retry_after: seconds to wait before retrying, if the response
            said (the ``Retry-After`` header, with the v1 body's
            ``retry_after_ms`` as fallback).
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None,
                 code: Optional[str] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.code = code


#: A block as the wire format accepts it: hex string or {"hex"/"asm": ...}.
BlockLike = Union[str, Dict[str, str]]


def _block_obj(block: BlockLike) -> Dict[str, str]:
    if isinstance(block, str):
        return {"hex": block}
    return block


class _PayloadView:
    """Dict-compatible wrapper over one response payload.

    Typed results delegate the mapping protocol to the raw payload, so
    code written against the plain-dict responses of earlier releases
    (``result["cycles"]``, ``"exact" in result``) keeps working.
    """

    def __init__(self, data: Dict, meta: Optional[Dict] = None):
        self.data = data
        #: The v1 ``meta`` object (``None`` when talking to a legacy
        #: server, which has no envelope).
        self.meta = meta

    @property
    def trace(self) -> Optional[str]:
        """The request's trace id from the v1 ``meta`` (``None`` on
        legacy servers) — quote it when reporting a service problem so
        the operator can find the matching structured log lines."""
        if self.meta is None:
            return None
        return self.meta.get("trace")

    def __getitem__(self, key: str):
        return self.data[key]

    def __contains__(self, key: str) -> bool:
        return key in self.data

    def __iter__(self) -> Iterator[str]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def get(self, key: str, default=None):
        return self.data.get(key, default)

    def keys(self):
        return self.data.keys()

    def __eq__(self, other) -> bool:
        if isinstance(other, _PayloadView):
            return self.data == other.data
        return self.data == other

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.data!r})"


class PredictionResult(_PayloadView):
    """One block's prediction, as served by ``/v1/predict``."""

    @property
    def cycles(self) -> float:
        """Predicted inverse throughput (paper rounding, 2 digits)."""
        return self.data["cycles"]

    @property
    def exact(self) -> Optional[str]:
        """The exact prediction as a fraction string (``"8/3"``)."""
        return self.data["exact"]

    @property
    def bounds(self) -> Dict[str, float]:
        return self.data["bounds"]

    @property
    def exact_bounds(self) -> Dict[str, str]:
        return self.data["exact_bounds"]

    @property
    def bottlenecks(self) -> List[str]:
        return self.data["bottlenecks"]

    @property
    def block(self) -> Dict:
        """The echoed block: ``{"hex", "instructions", "bytes"}``."""
        return self.data["block"]

    @property
    def uarch(self) -> str:
        return self.data["uarch"]

    @property
    def mode(self) -> str:
        return self.data["mode"]

    @property
    def fe_component(self) -> Optional[str]:
        return self.data["fe_component"]

    @property
    def jcc_affected(self) -> bool:
        return self.data["jcc_affected"]

    @property
    def lsd_applicable(self) -> bool:
        return self.data["lsd_applicable"]

    @property
    def critical_instructions(self) -> List[int]:
        return self.data["critical_instructions"]

    @property
    def counterfactual_speedups(self) -> Optional[Dict[str, float]]:
        """Per-component idealization speedups (requested opt-in)."""
        return self.data.get("counterfactual_speedups")


class BulkResult(_PayloadView):
    """An order-preserving bulk response (``/v1/predict/bulk``)."""

    @property
    def predictions(self) -> List[PredictionResult]:
        return [PredictionResult(entry, self.meta)
                for entry in self.data["predictions"]]

    @property
    def n_blocks(self) -> int:
        return self.data["n_blocks"]

    @property
    def uarch(self) -> str:
        return self.data["uarch"]

    @property
    def mode(self) -> str:
        return self.data["mode"]


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.PredictionService`.

    All constructor arguments are keyword-only:

    Args:
        host / port: where the service listens.
        timeout: per-request socket timeout in seconds.
        max_attempts: bound on tries per request (>= 1).  Connection
            errors and 429 load-shedding responses are retried with
            full-jitter exponential backoff (a 429's ``Retry-After``
            floors the backoff); any other error response is final —
            a 400 does not become a 400 three times slower.
        retry_policy: override the backoff schedule (mostly for tests,
            which inject a recording ``sleep`` and a seeded ``rng``).
        api: ``"auto"`` (negotiate once via ``GET /v1/health``; the
            default), ``"v1"`` (require the versioned API), or
            ``"legacy"`` (stick to the unversioned routes).

    Blocks are passed as hex strings (``"4801d8"``), or as dicts in the
    wire format (``{"asm": "add rax, rbx"}``).  Usable as a context
    manager::

        with ServiceClient(port=service.port) as client:
            result = client.predict("4801d8")
            result.cycles
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 60.0, max_attempts: int = 3,
                 retry_policy: Optional[RetryPolicy] = None,
                 api: str = "auto"):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if api not in ("auto", "v1", "legacy"):
            raise ValueError("api must be 'auto', 'v1', or 'legacy'")
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy(max_attempts=max_attempts))
        self._api = api
        self._api_version: Optional[str] = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release the client (no persistent connection is held; this
        exists so the context-manager form reads naturally)."""

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    # -- API negotiation -----------------------------------------------

    @property
    def api_version(self) -> str:
        """``"v1"`` or ``"legacy"`` — negotiated once, then cached.

        Negotiation is one ``GET /v1/health``: a 404 identifies a
        pre-v1 server.  Forced versions (``api="v1"``/``"legacy"``)
        skip the probe.
        """
        if self._api_version is None:
            if self._api != "auto":
                self._api_version = self._api
            else:
                try:
                    self.request("/v1/health")
                    self._api_version = "v1"
                except ServiceError as exc:
                    if exc.status != 404:
                        raise
                    self._api_version = "legacy"
        return self._api_version

    def _path(self, endpoint: str) -> str:
        if self.api_version == "v1":
            return "/v1" + endpoint
        return endpoint

    def _call(self, endpoint: str, body: Optional[Dict] = None):
        """One endpoint round trip; ``(result, meta)`` either way.

        On a v1 server this unwraps the response envelope; on a legacy
        server the payload *is* the result and there is no meta.
        """
        payload = self.request(self._path(endpoint), body)
        if self.api_version == "v1":
            return payload["result"], payload["meta"]
        return payload, None

    # -- transport -----------------------------------------------------

    @staticmethod
    def _parse_error(status: int, raw: bytes, headers,
                     reason: str) -> ServiceError:
        """Build a :class:`ServiceError` from either error schema."""
        code = None
        retry_after_ms = None
        try:
            error = json.loads(raw.decode("utf-8"))["error"]
            if isinstance(error, dict):  # v1 structured error
                message = error["message"]
                code = error.get("code")
                retry_after_ms = error.get("retry_after_ms")
            else:  # legacy: the error field is the message
                message = error
        except Exception:
            message = raw.decode("utf-8", "replace") or reason
        try:
            retry_after = float(headers.get("Retry-After"))
        except (TypeError, ValueError):
            retry_after = (retry_after_ms / 1000.0
                           if retry_after_ms is not None else None)
        return ServiceError(status, message, retry_after=retry_after,
                            code=code)

    def _request_once(self, path: str,
                      body: Optional[Dict] = None) -> bytes:
        """One request attempt; returns the raw response bytes."""
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raise self._parse_error(exc.code, exc.read(), exc.headers,
                                    exc.reason) from None

    def request_raw(self, path: str,
                    body: Optional[Dict] = None) -> bytes:
        """One request (with bounded retries); raw response bytes.

        GET when *body* is None, POST otherwise.  Error statuses raise
        :class:`ServiceError` with the server's message; transient
        failures (refused/dropped connections, 429 shedding) are
        retried up to the client's ``max_attempts`` before the last
        error propagates.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return self._request_once(path, body)
            except ServiceError as exc:
                if (exc.status != 429
                        or not policy.attempts_left(attempt + 1)):
                    raise
                policy.backoff(attempt, floor=exc.retry_after)
            except urllib.error.URLError:
                # Connection-level failure (refused, reset, DNS): the
                # request never reached an application answer, so a
                # retry cannot double-apply anything.
                if not policy.attempts_left(attempt + 1):
                    raise
                policy.backoff(attempt)
            attempt += 1

    def request(self, path: str, body: Optional[Dict] = None) -> Dict:
        """Like :meth:`request_raw`, but decodes the JSON payload."""
        return json.loads(self.request_raw(path, body).decode("utf-8"))

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict:
        """``GET /v1/health`` (the health payload, unwrapped)."""
        result, _ = self._call("/health")
        return result

    def stats(self) -> Dict:
        """``GET /v1/stats`` (the stats payload, unwrapped)."""
        result, _ = self._call("/stats")
        return result

    def predict(self, block: BlockLike, *, mode: str = "loop",
                uarch: Optional[str] = None,
                counterfactuals: bool = False,
                timeout_ms: Optional[float] = None) -> PredictionResult:
        """``POST /v1/predict`` — one block, full interpretable output."""
        body: Dict = {**_block_obj(block), "mode": mode}
        if uarch is not None:
            body["uarch"] = uarch
        if counterfactuals:
            body["counterfactuals"] = True
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        result, meta = self._call("/predict", body)
        return PredictionResult(result, meta)

    def predict_bulk(self, blocks: Sequence[BlockLike], *,
                     mode: str = "loop",
                     uarch: Optional[str] = None,
                     timeout_ms: Optional[float] = None) -> BulkResult:
        """``POST /v1/predict/bulk`` — many blocks, order-preserving."""
        body: Dict = {"blocks": [_block_obj(b) for b in blocks],
                      "mode": mode}
        if uarch is not None:
            body["uarch"] = uarch
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        result, meta = self._call("/predict/bulk", body)
        return BulkResult(result, meta)

    def compare(self, block: BlockLike, *, mode: str = "loop",
                uarch: Optional[str] = None,
                predictors: Optional[List[str]] = None) -> Dict:
        """``POST /v1/compare`` — Facile vs. the baseline analogs."""
        body: Dict = {**_block_obj(block), "mode": mode}
        if uarch is not None:
            body["uarch"] = uarch
        if predictors is not None:
            body["predictors"] = predictors
        result, _ = self._call("/compare", body)
        return result
