"""A minimal stdlib client for the prediction service.

Used by the test suite, the examples, and the service load generator in
:mod:`repro.engine.bench`; it is also the reference for how to talk to
``facile serve`` from any other HTTP client (see ``docs/SERVICE.md``
for the raw schemas and equivalent ``curl`` invocations).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Union

from repro.robustness.retry import RetryPolicy


class ServiceError(Exception):
    """An error response from the service.

    Attributes:
        status: the HTTP status code.
        message: the ``error`` field of the JSON error body.
        retry_after: the ``Retry-After`` header in seconds, if the
            response carried one (429 load shedding does).
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


#: A block as the wire format accepts it: hex string or {"hex"/"asm": ...}.
BlockLike = Union[str, Dict[str, str]]


def _block_obj(block: BlockLike) -> Dict[str, str]:
    if isinstance(block, str):
        return {"hex": block}
    return block


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.PredictionService`.

    Args:
        host / port: where the service listens.
        timeout: per-request socket timeout in seconds.
        max_attempts: bound on tries per request (>= 1).  Connection
            errors and 429 load-shedding responses are retried with
            full-jitter exponential backoff (a 429's ``Retry-After``
            floors the backoff); any other error response is final —
            a 400 does not become a 400 three times slower.
        retry_policy: override the backoff schedule (mostly for tests,
            which inject a recording ``sleep`` and a seeded ``rng``).

    Blocks are passed as hex strings (``"4801d8"``), or as dicts in the
    wire format (``{"asm": "add rax, rbx"}``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 60.0, max_attempts: int = 3,
                 retry_policy: Optional[RetryPolicy] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy(max_attempts=max_attempts))

    # -- transport -----------------------------------------------------

    def _request_once(self, path: str,
                      body: Optional[Dict] = None) -> bytes:
        """One request attempt; returns the raw response bytes."""
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8"))["error"]
            except Exception:
                message = raw.decode("utf-8", "replace") or exc.reason
            try:
                retry_after = float(exc.headers.get("Retry-After"))
            except (TypeError, ValueError):
                retry_after = None
            raise ServiceError(exc.code, message,
                               retry_after=retry_after) from None

    def request_raw(self, path: str,
                    body: Optional[Dict] = None) -> bytes:
        """One request (with bounded retries); raw response bytes.

        GET when *body* is None, POST otherwise.  Error statuses raise
        :class:`ServiceError` with the server's message; transient
        failures (refused/dropped connections, 429 shedding) are
        retried up to the client's ``max_attempts`` before the last
        error propagates.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return self._request_once(path, body)
            except ServiceError as exc:
                if (exc.status != 429
                        or not policy.attempts_left(attempt + 1)):
                    raise
                policy.backoff(attempt, floor=exc.retry_after)
            except urllib.error.URLError:
                # Connection-level failure (refused, reset, DNS): the
                # request never reached an application answer, so a
                # retry cannot double-apply anything.
                if not policy.attempts_left(attempt + 1):
                    raise
                policy.backoff(attempt)
            attempt += 1

    def request(self, path: str, body: Optional[Dict] = None) -> Dict:
        """Like :meth:`request_raw`, but decodes the JSON payload."""
        return json.loads(self.request_raw(path, body).decode("utf-8"))

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict:
        """``GET /health``."""
        return self.request("/health")

    def stats(self) -> Dict:
        """``GET /stats``."""
        return self.request("/stats")

    def predict(self, block: BlockLike, *, mode: str = "loop",
                uarch: Optional[str] = None,
                counterfactuals: bool = False) -> Dict:
        """``POST /predict`` — one block, full interpretable output."""
        body: Dict = {**_block_obj(block), "mode": mode}
        if uarch is not None:
            body["uarch"] = uarch
        if counterfactuals:
            body["counterfactuals"] = True
        return self.request("/predict", body)

    def predict_bulk(self, blocks: Sequence[BlockLike], *,
                     mode: str = "loop",
                     uarch: Optional[str] = None) -> Dict:
        """``POST /predict/bulk`` — many blocks, order-preserving."""
        body: Dict = {"blocks": [_block_obj(b) for b in blocks],
                      "mode": mode}
        if uarch is not None:
            body["uarch"] = uarch
        return self.request("/predict/bulk", body)

    def compare(self, block: BlockLike, *, mode: str = "loop",
                uarch: Optional[str] = None,
                predictors: Optional[List[str]] = None) -> Dict:
        """``POST /compare`` — Facile vs. the baseline analogs."""
        body: Dict = {**_block_obj(block), "mode": mode}
        if uarch is not None:
            body["uarch"] = uarch
        if predictors is not None:
            body["predictors"] = predictors
        return self.request("/compare", body)
