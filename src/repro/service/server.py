"""``facile serve``: the long-lived HTTP prediction service.

:class:`PredictionService` is an ``asyncio`` front-end over per-µarch
worker-process shards.  The event loop owns only cheap work — HTTP
parsing, routing, response-fragment cache lookups, byte assembly —
while every prediction crosses into the µarch's
:class:`~repro.service.shard.ShardEngine` worker process through the
:class:`~repro.engine.batching.MicroBatcher`, so concurrent clients are
micro-batched onto one ``predict_many`` pass per window and share that
process's analysis cache (and its persistent on-disk layer, when the
service runs with ``cache_dir``).

Two route namespaces serve the same engine:

==========================  ==============================================
``GET  /v1/health``         liveness + loaded µarchs
``GET  /v1/stats``          request counters, cache/batcher/shard stats
``POST /v1/predict``        one block → full interpretable prediction
``POST /v1/predict/bulk``   many blocks → predictions, order-preserving
``POST /v1/compare``        one block → Facile vs. the baseline analogs
==========================  ==============================================

``/v1/`` responses share one envelope — ``{"error": null, "meta":
{...}, "result": ...}`` — and one structured error schema
(:data:`repro.service.serialize.ERROR_CODES`).  The unversioned legacy
routes (``/predict``, ``/predict/bulk``, ``/compare``, ``/health``,
``/stats``) are a thin adapter over the same core handlers: they keep
serving the PR-2 payloads byte-for-byte and mark themselves with a
``Deprecation: true`` response header.

Responses are canonical JSON (:func:`repro.service.serialize.json_bytes`)
— equal payloads are equal bytes, so neither micro-batching nor the
response-fragment cache can ever change what a client observes.

Endpoint reference with schemas: ``docs/SERVICE.md``.
"""

from __future__ import annotations

import asyncio
import http.client
import math
import os
import socket
import sys
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from collections import OrderedDict

from repro.core.components import ThroughputMode
from repro.engine.batching import DEFAULT_MAX_BATCH, DEFAULT_MAX_WAIT_MS, \
    MicroBatcher
from repro.engine.cache import AnalysisCache
from repro.engine.engine import Engine, default_workers
from repro.engine.persist import PersistentAnalysisCache
from repro.isa.block import BasicBlock
from repro.obs import log as obslog
from repro.obs import metrics
from repro.obs.trace import TRACE_HEADER, new_trace_id
from repro.robustness.breaker import CircuitBreaker, OPEN
from repro.robustness.errors import CircuitOpenError, DeadlineExceeded, \
    QueueFullError
from repro.robustness.faults import active_plan, maybe_inject
from repro.service import serialize
from repro.service.serialize import API_VERSION, ERROR_CODES, \
    RequestError, json_bytes
from repro.service.shard import ShardEngine
from repro.uarch import ALL_UARCHS, uarch_by_name
from repro.uops.database import UopsDatabase

#: Baselines offered by ``POST /compare`` when the request does not name
#: predictors explicitly.  The learned analogs (Ithemal, DiffTune,
#: learning-bl) are opt-in: their first use trains a model, which would
#: turn an unsuspecting comparison request into a multi-second call.
DEFAULT_COMPARE_PREDICTORS = (
    "Facile", "uiCA", "llvm-mca-15", "CQA", "IACA 3.0", "OSACA",
)

#: Hard cap on blocks per bulk request (larger requests get a 413).
DEFAULT_MAX_BULK = 4096

#: Hard cap on request body size in bytes (larger requests get a 413).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default bound on each µarch's admission queue (queued, undispatched
#: blocks).  Beyond it the service sheds load with 429 + ``Retry-After``
#: instead of queueing without bound.
DEFAULT_MAX_QUEUE = 4096

#: Default circuit-breaker tuning for the ``/compare`` baselines:
#: skip a predictor after this many consecutive failures, probe it
#: again after the cooldown.
DEFAULT_BREAKER_FAILURES = 3
DEFAULT_BREAKER_COOLDOWN = 30.0

#: Default capacity of the per-µarch response-fragment cache (entries;
#: ``0`` disables it).  A fragment is one block's serialized prediction
#: payload, so steady-state traffic over a warm working set is answered
#: on the event loop without a shard round trip.
DEFAULT_RESPONSE_CACHE = 65536

#: Upper bounds on request framing (cheap DoS hygiene).
MAX_HEADER_COUNT = 100

#: The prediction core every serving runtime pins (advertised in
#: ``/v1/health``): shards and in-process engines both run the object
#: core, whose analysis-cache counters are the ``/stats`` surface.
SERVING_CORE = "object"

#: The served route tables, both namespaces.  ``scripts/check_docs.py``
#: checks every entry against ``docs/SERVICE.md`` in both directions.
#: ``/v1/metrics`` is v1-only by design — a new machine-scraped
#: surface gets no deprecated legacy twin.
ROUTES: Dict[str, Tuple[str, ...]] = {
    "GET": ("/health", "/stats", "/v1/health", "/v1/metrics",
            "/v1/stats"),
    "POST": ("/compare", "/predict", "/predict/bulk", "/v1/compare",
             "/v1/predict", "/v1/predict/bulk"),
}

#: Content type of the ``/v1/metrics`` exposition body.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Request-level metrics (docs/OBSERVABILITY.md).  Module-level so the
# hot path is a dict lookup + locked add, no registry traversal.
_REQUESTS = metrics.counter(
    "facile_requests_total",
    metrics.METRIC_CATALOG["facile_requests_total"][1],
    labels=("endpoint",))
_REQUEST_ERRORS = metrics.counter(
    "facile_request_errors_total",
    metrics.METRIC_CATALOG["facile_request_errors_total"][1],
    labels=("endpoint",))
_REQUEST_DURATION = metrics.histogram(
    "facile_request_duration_ms",
    metrics.METRIC_CATALOG["facile_request_duration_ms"][1],
    labels=("route",))
_SLOW_REQUESTS = metrics.counter(
    "facile_slow_requests_total",
    metrics.METRIC_CATALOG["facile_slow_requests_total"][1],
    labels=("route",))

#: Unversioned path → core handler method name.
_CORE_HANDLERS = {
    "/health": "_core_health",
    "/stats": "_core_stats",
    "/predict": "_core_predict",
    "/predict/bulk": "_core_bulk",
    "/compare": "_core_compare",
}

_REASONS = http.client.responses


def bulk_result_bytes(uarch: str, mode_value: str,
                      fragments: Sequence[bytes]) -> bytes:
    """The bulk payload assembled from pre-serialized fragments.

    Under sorted-key canonical JSON the bulk payload's keys order as
    ``mode`` < ``n_blocks`` < ``predictions`` < ``uarch``, so splicing
    the fragment list between two serialized stubs produces exactly the
    bytes of serializing the whole dict (asserted byte-for-byte in
    ``tests/service/test_v1_api.py``) without re-encoding any cached
    prediction.
    """
    head = json_bytes({"mode": mode_value, "n_blocks": len(fragments)})
    tail = json_bytes({"uarch": uarch})
    return (head[:-1] + b',"predictions":[' + b",".join(fragments)
            + b"]," + tail[1:])


class _ResponseCache:
    """LRU of serialized per-block prediction payloads.

    Keyed by ``(mode, block signature, counterfactuals)`` — the full
    identity of one prediction payload within a µarch runtime.  Thread
    safe (the warm-up path stores from outside the event loop).
    """

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Optional[bytes]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return blob

    def put(self, key: tuple, blob: bytes) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = blob

    def stats(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }


class _PersistentSyncEngine:
    """MicroBatcher backend that syncs the persistent cache per batch.

    The sharded path flushes each shard's persistent analysis cache
    after every worker batch, so its ``/stats`` persistent counters are
    always current.  The in-process ``--no-shard`` engine used to sync
    only at ``close()`` and ``warm()``, leaving ``/stats`` reading
    stale (usually all-zero) persistent counters for the whole run —
    this wrapper gives the no-shard path the same per-batch flush.
    """

    def __init__(self, engine: Engine):
        self.engine = engine

    def predict_many(self, blocks, mode, traces=None):
        try:
            return self.engine.predict_many(blocks, mode, traces=traces)
        finally:
            self.engine.cache.sync_persistent()


class _UarchRuntime:
    """Everything the service holds per loaded µarch."""

    def __init__(self, abbrev: str, *, n_workers: Optional[int],
                 max_batch: int, max_wait_ms: float,
                 max_queue: Optional[int],
                 breaker_failures: int, breaker_cooldown: float,
                 use_shard: bool, cache_dir: Optional[str],
                 response_cache_entries: int):
        cfg = uarch_by_name(abbrev)
        self.cfg = cfg
        self.shard: Optional[ShardEngine] = None
        self.engine: Optional[Engine] = None
        if use_shard:
            persist_path = None
            if cache_dir is not None:
                os.makedirs(cache_dir, exist_ok=True)
                persist_path = os.path.join(cache_dir, f"{abbrev}.facc")
            self.shard = ShardEngine(abbrev, persist_path=persist_path,
                                     n_workers=n_workers)
            backend = self.shard
        else:
            persistent = (PersistentAnalysisCache.for_uarch(cache_dir,
                                                            abbrev)
                          if cache_dir is not None else None)
            db = UopsDatabase(cfg)
            cache = AnalysisCache(db, persistent=persistent)
            # The serving tier pins the object core: its analysis-cache
            # counters and the persistent layer are the /stats surface,
            # and both are populated by the object path.  Predictions
            # are byte-identical either way (see docs/ARCHITECTURE.md).
            self.engine = Engine(cfg, db=db, cache=cache,
                                 n_workers=n_workers, core="object")
            backend = (self.engine if persistent is None
                       else _PersistentSyncEngine(self.engine))
        self.batcher = MicroBatcher(backend, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms,
                                    max_queue=max_queue,
                                    obs_label=abbrev)
        self.response_cache = _ResponseCache(response_cache_entries)
        # The comparison predictors run on the front-end side (they are
        # in-process analogs, not engine work); they get a private
        # database (hence a private analysis cache) plus a lock, so
        # they can never race each other.
        self.compare_lock = threading.Lock()
        self._predictors: Dict[str, object] = {}
        # One circuit breaker per baseline predictor: a broken tool is
        # skipped (a typed entry in the response) instead of failing
        # every /compare that names it.
        self.breaker_failures = breaker_failures
        self.breaker_cooldown = breaker_cooldown
        self.breakers: Dict[str, CircuitBreaker] = {}

    def predictor(self, name: str):
        """The (memoized, guarded) baseline predictor *name*.

        Wrapped in :class:`~repro.baselines.GuardedPredictor`: transient
        failures are retried inside the request, persistent ones open
        the runtime's per-predictor breaker.
        """
        from repro.baselines import GuardedPredictor, all_predictors, \
            predictor_names
        if name not in self._predictors:
            if name not in predictor_names():
                raise RequestError(
                    f"unknown predictor {name!r} "
                    f"(available: {', '.join(predictor_names())})",
                    status=404)
            predictor, = all_predictors(self.cfg, names=[name])
            predictor.prepare()
            self._predictors[name] = GuardedPredictor(
                predictor, breaker=self.breaker(name))
        return self._predictors[name]

    def breaker(self, name: str) -> CircuitBreaker:
        """The circuit breaker guarding predictor *name*."""
        if name not in self.breakers:
            self.breakers[name] = CircuitBreaker(
                name, failure_threshold=self.breaker_failures,
                cooldown=self.breaker_cooldown)
        return self.breakers[name]

    def open_breakers(self) -> List[str]:
        """Names of predictors whose breaker is currently open."""
        return sorted(name for name, breaker in self.breakers.items()
                      if breaker.state == OPEN)

    def telemetry(self) -> Dict[str, object]:
        """This µarch's ``/stats`` entry (may block on a shard query)."""
        if self.shard is not None:
            payload = self.shard.stats()
            cache = payload.get("cache", {})
            engine = payload.get("engine", {"tasks_retried": 0,
                                            "tasks_failed": 0,
                                            "pool_respawns": 0})
            shard_info: Optional[Dict[str, object]] = {
                "respawns": self.shard.respawns,
                "alive": self.shard.alive,
                "fallback_used": self.shard.fallback_used,
            }
        else:
            assert self.engine is not None
            cache = self.engine.cache.stats()
            engine = {"tasks_retried": self.engine.tasks_retried,
                      "tasks_failed": self.engine.tasks_failed,
                      "pool_respawns": self.engine.pool_respawns}
            shard_info = None
        entry: Dict[str, object] = {
            "cache": cache,
            "batcher": self.batcher.stats(),
            "engine": engine,
            "response_cache": self.response_cache.stats(),
            "breakers": {name: breaker.stats()
                         for name, breaker
                         in sorted(self.breakers.items())},
        }
        if shard_info is not None:
            entry["shard"] = shard_info
        return entry

    def close(self) -> None:
        self.batcher.close()
        if self.shard is not None:
            self.shard.close()
        if self.engine is not None:
            if self.engine.cache.persistent is not None:
                self.engine.cache.sync_persistent()
            self.engine.close()


class PredictionService:
    """The embeddable prediction server behind ``facile serve``.

    Args:
        uarch: default µarch for requests that do not name one.
        host / port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`port` — this is how the tests and
            the bench load generator run hermetically).  The socket is
            bound at construction, so address errors fail fast.
        n_workers: engine worker processes per µarch *inside* its shard
            (as in :class:`~repro.engine.engine.Engine`: ``0`` one per
            CPU; ``None`` resolves to the process-wide default —
            ``set_default_workers`` / ``REPRO_ENGINE_WORKERS`` — at
            construction time, so the banner and ``/stats`` report
            what the engines actually use).
        max_batch / max_wait_ms: the micro-batching window (see
            :class:`~repro.engine.batching.MicroBatcher`).
        max_bulk: maximum blocks accepted in one bulk request.
        max_queue: bound on each µarch's admission queue; beyond it the
            service sheds with ``429`` + ``Retry-After``.  ``None``
            disables shedding (unbounded queue).
        breaker_failures / breaker_cooldown: circuit-breaker tuning for
            the ``/compare`` baselines (consecutive failures to open;
            seconds until a half-open probe).
        shard: run each µarch in its own worker process (the default).
            ``False`` keeps the engine in-process (PR-2 behaviour),
            useful for debugging or fork-hostile environments.
        cache_dir: directory for the persistent analysis caches (one
            ``<uarch>.facc`` file each); ``None`` disables persistence.
        response_cache_blocks: per-µarch response-fragment cache
            capacity (``0`` disables it).

    Usable as a context manager::

        with PredictionService(uarch="SKL", port=0) as service:
            client = ServiceClient(port=service.port)
            client.predict("4801d8")
    """

    def __init__(self, uarch: str = "SKL", *, host: str = "127.0.0.1",
                 port: int = 0, n_workers: Optional[int] = None,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 max_bulk: int = DEFAULT_MAX_BULK,
                 max_queue: Optional[int] = DEFAULT_MAX_QUEUE,
                 breaker_failures: int = DEFAULT_BREAKER_FAILURES,
                 breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
                 shard: bool = True,
                 cache_dir: Optional[str] = None,
                 response_cache_blocks: int = DEFAULT_RESPONSE_CACHE):
        # Fail fast at construction: these would otherwise surface as a
        # 500 on the first request (runtimes are built lazily).
        uarch_by_name(uarch)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_bulk < 1:
            raise ValueError("max_bulk must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 or None")
        if breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be >= 0")
        if response_cache_blocks < 0:
            raise ValueError("response_cache_blocks must be >= 0")
        self.default_uarch = uarch
        self.n_workers = (n_workers if n_workers is not None
                          else default_workers())
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_bulk = max_bulk
        self.max_queue = max_queue
        self.breaker_failures = breaker_failures
        self.breaker_cooldown = breaker_cooldown
        self.use_shard = shard
        self.cache_dir = cache_dir
        self.response_cache_blocks = response_cache_blocks
        self.known_uarchs: List[str] = [cfg.abbrev for cfg in ALL_UARCHS]
        self._runtimes: Dict[str, _UarchRuntime] = {}
        self._runtimes_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests_by_endpoint: Dict[str, int] = {}
        self._errors = 0
        self._started_at = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._loop_done = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._log = obslog.get_logger("serve")
        # Pull-stats collector: component counters the hot paths keep
        # for themselves (response cache, batcher, shard proxies) enter
        # the registry only when a scrape asks (docs/OBSERVABILITY.md).
        metrics.REGISTRY.register_collector(self._collect_metrics)
        # Bind eagerly: `.port` is known before start() and bad
        # addresses raise OSError here, not inside a server thread.
        self._sock = socket.create_server((host, port), backlog=128)

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self._sock.getsockname()[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        return self._sock.getsockname()[1]

    def start(self) -> "PredictionService":
        """Serve in a background thread (returns once the loop is up)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, name="facile-serve", daemon=True)
            self._thread.start()
            self._ready.wait()
            if self._startup_error is not None:
                raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``facile serve`` loop)."""
        self._run_loop()
        if self._startup_error is not None:
            raise self._startup_error

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            server = loop.run_until_complete(asyncio.start_server(
                self._handle_client, sock=self._sock))
        except Exception as exc:  # pragma: no cover - defensive
            self._startup_error = exc
            self._ready.set()
            loop.close()
            self._loop_done.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            try:
                loop.run_until_complete(loop.shutdown_default_executor())
            except (RuntimeError, AttributeError):  # pragma: no cover
                pass
            loop.close()
            self._loop = None
            self._loop_done.set()

    def close(self) -> None:
        """Stop serving and shut down batchers, shards, and the socket."""
        metrics.REGISTRY.unregister_collector(self._collect_metrics)
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:
                pass
            self._loop_done.wait(timeout=10.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self._sock.close()
        except OSError:
            pass
        with self._runtimes_lock:
            runtimes = list(self._runtimes.values())
            self._runtimes.clear()
        for runtime in runtimes:
            runtime.close()

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    # -- runtimes ------------------------------------------------------

    def runtime(self, uarch: str) -> _UarchRuntime:
        """The shard+batcher pair for *uarch*, created on first use."""
        with self._runtimes_lock:
            runtime = self._runtimes.get(uarch)
            if runtime is None:
                runtime = _UarchRuntime(
                    uarch, n_workers=self.n_workers,
                    max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms,
                    max_queue=self.max_queue,
                    breaker_failures=self.breaker_failures,
                    breaker_cooldown=self.breaker_cooldown,
                    use_shard=self.use_shard,
                    cache_dir=self.cache_dir,
                    response_cache_entries=self.response_cache_blocks)
                self._runtimes[uarch] = runtime
            return runtime

    def warm(self, hexes: Sequence[str], *, uarch: Optional[str] = None,
             modes: Sequence[str] = ("loop", "unrolled")) -> int:
        """Pre-analyze *hexes*, filling every cache layer.

        Runs the corpus through the batcher (no HTTP involved, so this
        works before :meth:`start`), which populates the shard's
        analysis cache, its persistent on-disk layer, and the front
        end's response-fragment cache.  Returns the number of
        (block, mode) pairs warmed.  Undecodable hex raises
        ``ValueError`` — a warm corpus is operator input, not client
        traffic.
        """
        uarch = uarch or self.default_uarch
        blocks: List[BasicBlock] = []
        seen = set()
        for value in hexes:
            raw = bytes.fromhex(value)
            if raw and raw not in seen:
                seen.add(raw)
                blocks.append(BasicBlock.from_bytes(raw))
        if not blocks:
            return 0
        runtime = self.runtime(uarch)
        count = 0
        for mode_value in modes:
            mode = ThroughputMode(mode_value)
            predictions = runtime.batcher.predict_many(blocks, mode)
            for block, prediction in zip(blocks, predictions):
                blob = json_bytes(serialize.prediction_to_dict(
                    prediction, block, uarch))
                runtime.response_cache.put((mode.value, block.raw, False),
                                           blob)
            count += len(blocks)
        if (runtime.engine is not None
                and runtime.engine.cache.persistent is not None):
            runtime.engine.cache.sync_persistent()
        return count

    # -- bookkeeping ---------------------------------------------------

    def _count(self, endpoint: str, error: bool = False) -> None:
        with self._stats_lock:
            self._requests_by_endpoint[endpoint] = \
                self._requests_by_endpoint.get(endpoint, 0) + 1
            if error:
                self._errors += 1
        _REQUESTS.inc(endpoint=endpoint)
        if error:
            _REQUEST_ERRORS.inc(endpoint=endpoint)

    def _observe_request(self, route: str, started: float,
                         trace: str) -> None:
        """Record one routed request's wall time (and the slow log)."""
        duration_ms = (time.perf_counter() - started) * 1000.0
        _REQUEST_DURATION.observe(duration_ms, route=route)
        if duration_ms >= obslog.slow_threshold_ms():
            _SLOW_REQUESTS.inc(route=route)
            self._log.warning("slow_request", route=route,
                              ms=round(duration_ms, 3), trace=trace)

    def _collect_metrics(self) -> List[metrics.Family]:
        """Scrape-time families for per-runtime component counters."""
        catalog = metrics.METRIC_CATALOG
        families = [metrics.Family(
            "facile_service_uptime_seconds", metrics.GAUGE,
            catalog["facile_service_uptime_seconds"][1],
            [({}, round(time.monotonic() - self._started_at, 3))])]
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        per_uarch: Dict[str, List[Tuple[Dict[str, str], float]]] = {
            "facile_response_cache_hits_total": [],
            "facile_response_cache_misses_total": [],
            "facile_analysis_cache_hits_total": [],
            "facile_analysis_cache_misses_total": [],
            "facile_batcher_requests_total": [],
            "facile_batcher_batches_total": [],
            "facile_batcher_shed_total": [],
            "facile_batcher_deadline_drops_total": [],
            "facile_shard_respawns_total": [],
            "facile_shard_fallback_total": [],
        }
        for abbrev, runtime in sorted(runtimes.items()):
            labels = {"uarch": abbrev}
            response = runtime.response_cache
            per_uarch["facile_response_cache_hits_total"].append(
                (labels, response.hits))
            per_uarch["facile_response_cache_misses_total"].append(
                (labels, response.misses))
            batcher = runtime.batcher
            per_uarch["facile_batcher_requests_total"].append(
                (labels, batcher.requests))
            per_uarch["facile_batcher_batches_total"].append(
                (labels, batcher.batches))
            per_uarch["facile_batcher_shed_total"].append(
                (labels, batcher.shed))
            per_uarch["facile_batcher_deadline_drops_total"].append(
                (labels, batcher.deadline_drops))
            if runtime.shard is not None:
                per_uarch["facile_shard_respawns_total"].append(
                    (labels, runtime.shard.respawns))
                per_uarch["facile_shard_fallback_total"].append(
                    (labels, runtime.shard.fallback_used))
                cache = runtime.shard.stats().get("cache", {})
            else:
                assert runtime.engine is not None
                cache = runtime.engine.cache.stats()
            if cache:
                per_uarch["facile_analysis_cache_hits_total"].append(
                    (labels, cache.get("hits", 0)))
                per_uarch["facile_analysis_cache_misses_total"].append(
                    (labels, cache.get("misses", 0)))
        for name, samples in per_uarch.items():
            if samples:
                families.append(metrics.Family(
                    name, metrics.COUNTER, catalog[name][1], samples))
        return families

    def metrics_exposition(self) -> str:
        """The ``/v1/metrics`` body: registry + catalog exposition.

        May block briefly on a shard stats round trip, so the endpoint
        runs it in the executor, never on the event loop.
        """
        return metrics.exposition()

    # -- endpoint payloads ---------------------------------------------

    def health_payload(self) -> Dict:
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        # "degraded" (still HTTP 200 — the service *is* live) means a
        # baseline breaker is open or an admission queue is saturated:
        # a monitor should look, clients should expect skips / 429s.
        reasons: List[str] = []
        open_breakers: Dict[str, List[str]] = {}
        shed_total = 0
        for abbrev, runtime in sorted(runtimes.items()):
            opened = runtime.open_breakers()
            if opened:
                open_breakers[abbrev] = opened
                reasons.append(
                    f"{abbrev}: open breakers: {', '.join(opened)}")
            shed_total += runtime.batcher.shed
            if runtime.batcher.saturated:
                reasons.append(f"{abbrev}: admission queue saturated")
        return {
            "status": "degraded" if reasons else "ok",
            "service": "facile",
            "api_versions": [API_VERSION],
            "core": SERVING_CORE,
            "default_uarch": self.default_uarch,
            "uarchs_available": self.known_uarchs,
            "uarchs_loaded": sorted(runtimes),
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
            "open_breakers": open_breakers,
            "shed_total": shed_total,
            "degraded_reasons": reasons,
        }

    def stats_payload(self) -> Dict:
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        with self._stats_lock:
            by_endpoint = dict(self._requests_by_endpoint)
            errors = self._errors
        uarchs = {abbrev: runtime.telemetry()
                  for abbrev, runtime in runtimes.items()}
        # Aggregated incident counters, surfaced at the top level so a
        # monitor never has to dig through nested shard payloads.
        counters = {"shard_respawns": 0, "shard_fallback": 0,
                    "breaker_opens": 0, "engine_tasks_retried": 0}
        for entry in uarchs.values():
            shard_info = entry.get("shard")
            if shard_info is not None:
                counters["shard_respawns"] += shard_info["respawns"]
                counters["shard_fallback"] += shard_info["fallback_used"]
            counters["engine_tasks_retried"] += \
                entry["engine"].get("tasks_retried", 0)
            for breaker_stats in entry["breakers"].values():
                counters["breaker_opens"] += \
                    breaker_stats.get("times_opened", 0)
        return {
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
            "workers": self.n_workers,
            "requests": {
                "total": sum(by_endpoint.values()),
                "by_endpoint": by_endpoint,
                "errors": errors,
            },
            "counters": counters,
            "uarchs": uarchs,
        }

    @staticmethod
    def _parse_deadline(body: Dict):
        """``(deadline, wait)`` from the request's ``timeout_ms``.

        *deadline* is the ``time.monotonic`` timestamp the batcher
        sheds queued work at; *wait* bounds how long the handler
        awaits the future (the deadline budget plus one second of
        dispatch slack, so in-flight engine work gets a beat to finish
        before the handler gives up).  Both ``None`` without a budget.
        """
        timeout_ms = serialize.parse_timeout_ms(body)
        if timeout_ms is None:
            return None, None
        budget = timeout_ms / 1000.0
        return time.monotonic() + budget, budget + 1.0

    @staticmethod
    def _shed_to_http(exc: Exception) -> RequestError:
        """Map batcher overload signals onto their HTTP vocabulary."""
        if isinstance(exc, QueueFullError):
            error = RequestError(
                str(exc), status=429,
                headers={"Retry-After":
                         str(int(math.ceil(exc.retry_after)))})
            error.retry_after_ms = exc.retry_after * 1000.0
            return error
        return RequestError(
            "deadline exceeded before the prediction completed "
            "(raise 'timeout_ms' or retry when the server is "
            "less loaded)", status=504)

    async def _core_predict(self, body: Dict, trace: Optional[str] = None):
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        block = serialize.parse_block(body)
        counterfactuals = serialize.parse_counterfactuals(body)
        deadline, wait = self._parse_deadline(body)
        runtime = self.runtime(uarch)
        key = (mode.value, block.raw, counterfactuals)
        meta = {"uarch": uarch, "mode": mode.value}
        # An already-expired deadline skips the fragment cache so the
        # batcher can drop-and-count it (the documented 504 contract).
        if deadline is None or deadline > time.monotonic():
            blob = runtime.response_cache.get(key)
            if blob is not None:
                meta["cache"] = "hit"
                return blob, meta
        try:
            future = runtime.batcher.submit(block, mode,
                                            deadline=deadline,
                                            trace=trace)
            prediction = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=wait)
        except (QueueFullError, DeadlineExceeded,
                asyncio.TimeoutError) as exc:
            raise self._shed_to_http(exc)
        blob = json_bytes(serialize.prediction_to_dict(
            prediction, block, uarch, counterfactuals=counterfactuals))
        runtime.response_cache.put(key, blob)
        meta["cache"] = "miss"
        return blob, meta

    async def _core_bulk(self, body: Dict, trace: Optional[str] = None):
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        blocks = serialize.parse_blocks(body, max_blocks=self.max_bulk)
        counterfactuals = serialize.parse_counterfactuals(body)
        deadline, wait = self._parse_deadline(body)
        runtime = self.runtime(uarch)
        fragments: List[Optional[bytes]] = [None] * len(blocks)
        if deadline is None or deadline > time.monotonic():
            for index, block in enumerate(blocks):
                fragments[index] = runtime.response_cache.get(
                    (mode.value, block.raw, counterfactuals))
        missing = [index for index, fragment in enumerate(fragments)
                   if fragment is None]
        if missing:
            try:
                futures = runtime.batcher.submit_many(
                    [blocks[index] for index in missing], mode,
                    deadline=deadline, trace=trace)
                wrapped = [asyncio.wrap_future(future)
                           for future in futures]
                for task in wrapped:
                    task.add_done_callback(_consume_exception)
                predictions = await asyncio.wait_for(
                    asyncio.gather(*wrapped), timeout=wait)
            except (QueueFullError, DeadlineExceeded,
                    asyncio.TimeoutError) as exc:
                raise self._shed_to_http(exc)
            for index, prediction in zip(missing, predictions):
                blob = json_bytes(serialize.prediction_to_dict(
                    prediction, blocks[index], uarch,
                    counterfactuals=counterfactuals))
                runtime.response_cache.put(
                    (mode.value, blocks[index].raw, counterfactuals),
                    blob)
                fragments[index] = blob
        result = bulk_result_bytes(uarch, mode.value, fragments)
        return result, {"uarch": uarch, "mode": mode.value,
                        "cache": {"hits": len(blocks) - len(missing),
                                  "misses": len(missing)}}

    async def _core_compare(self, body: Dict, trace: Optional[str] = None):
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self.compare_payload,
                                             body)
        return json_bytes(payload), {"uarch": payload["uarch"],
                                     "mode": payload["mode"]}

    async def _core_health(self, body: Optional[Dict],
                           trace: Optional[str] = None):
        return json_bytes(self.health_payload()), {}

    async def _core_stats(self, body: Optional[Dict],
                          trace: Optional[str] = None):
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self.stats_payload)
        return json_bytes(payload), {}

    def compare_payload(self, body: Dict) -> Dict:
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        block = serialize.parse_block(body)
        names = body.get("predictors", list(DEFAULT_COMPARE_PREDICTORS))
        if (not isinstance(names, list)
                or not all(isinstance(n, str) for n in names)
                or not names):
            raise RequestError(
                "'predictors' must be a non-empty array of names")
        runtime = self.runtime(uarch)
        predictions: Dict[str, float] = {}
        skipped: Dict[str, Dict] = {}
        with runtime.compare_lock:
            for name in names:
                predictor = runtime.predictor(name)
                try:
                    value = round(float(predictor.predict(block, mode)),
                                  2)
                except CircuitOpenError as exc:
                    # Typed skip: the tool kept failing, its breaker is
                    # open, and the response says so instead of a 500.
                    skipped[name] = {
                        "reason": "circuit_open",
                        "retry_after_sec": round(exc.retry_after, 3),
                    }
                    continue
                except RequestError:
                    raise
                except Exception as exc:
                    # Past its retries: the tool sits this request out.
                    skipped[name] = {
                        "reason": "error",
                        "detail": f"{type(exc).__name__}: {exc}",
                    }
                    continue
                predictions[name] = value
        return {
            "block": {"hex": block.raw.hex(),
                      "instructions": len(block),
                      "bytes": block.num_bytes},
            "uarch": uarch,
            "mode": mode.value,
            "predictions": predictions,
            "skipped": skipped,
        }

    # -- the HTTP front-end --------------------------------------------

    def _error_bytes(self, versioned: bool, status: int, message: str,
                     retry_after_ms: Optional[float] = None,
                     trace: Optional[str] = None) -> bytes:
        if versioned:
            return serialize.error_envelope_bytes(
                status, message, retry_after_ms=retry_after_ms,
                trace=trace)
        return json_bytes({"error": message})

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, body: bytes, *,
                              headers: Optional[Dict[str, str]] = None,
                              content_type: str = "application/json",
                              close: bool = False) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, '')}",
            "Server: facile-serve/2",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close" if close
                     else "Connection: keep-alive")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while await self._serve_one(reader, writer):
                pass
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        except Exception:  # pragma: no cover - defensive
            traceback.print_exc(file=sys.stderr)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        """Read, route, and answer one request; whether to keep alive.

        Error responses always carry ``Connection: close`` — the
        request body may not have been drained, so the connection is
        not safe to reuse.
        """
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            await self._write_response(
                writer, 400,
                self._error_bytes(False, 400, "request line too long"),
                close=True)
            return False
        if not line or not line.strip():
            return False  # clean EOF between requests
        try:
            method, target, _version = \
                line.decode("latin-1").strip().split(None, 2)
        except ValueError:
            await self._write_response(
                writer, 400,
                self._error_bytes(False, 400, "malformed request line"),
                close=True)
            return False
        path = target.split("?", 1)[0].rstrip("/") or "/"
        versioned = path == "/v1" or path.startswith("/v1/")
        # One trace id per request: echoed in the v1 meta, every error
        # envelope, and the X-Trace-Id header on all routes.
        trace_id = new_trace_id()

        async def bail(status: int, message: str,
                       headers: Optional[Dict[str, str]] = None,
                       retry_after_ms: Optional[float] = None) -> bool:
            merged = {TRACE_HEADER: trace_id}
            if headers:
                merged.update(headers)
            await self._write_response(
                writer, status,
                self._error_bytes(versioned, status, message,
                                  retry_after_ms=retry_after_ms,
                                  trace=trace_id),
                headers=merged, close=True)
            return False

        headers: Dict[str, str] = {}
        while True:
            try:
                header_line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                return await bail(400, "header line too long")
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = \
                header_line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
            if len(headers) > MAX_HEADER_COUNT:
                return await bail(400, "too many headers")

        # Route before reading the body: unknown endpoints answer
        # without draining client bytes (hence the forced close).
        if method not in ("GET", "POST"):
            self._count("unknown", error=True)
            return await bail(405, f"method {method} not supported "
                                   "(use GET/POST endpoints as "
                                   "documented in docs/SERVICE.md)")
        table = ROUTES[method]
        other = ROUTES["POST" if method == "GET" else "GET"]
        if path not in table:
            if path in other:
                self._count(path, error=True)
                wanted = "POST" if method == "GET" else "GET"
                return await bail(
                    405, f"method not allowed for {path} (use {wanted} "
                         "as documented in docs/SERVICE.md)")
            self._count("unknown", error=True)
            return await bail(404, f"unknown endpoint {path!r}")

        if "transfer-encoding" in headers:
            self._count(path, error=True)
            return await bail(400,
                              "chunked transfer encoding not supported")
        try:
            length = int(headers.get("content-length") or 0)
            if length < 0:
                raise ValueError
        except ValueError:
            self._count(path, error=True)
            return await bail(400, "invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            self._count(path, error=True)
            return await bail(
                413,
                f"request body too large (> {MAX_BODY_BYTES} bytes)")
        raw_body = (await reader.readexactly(length) if length else b"")

        keep = headers.get("connection", "").lower() != "close"
        if path == "/v1/metrics":
            # Text exposition, not a JSON envelope: the one route that
            # bypasses the core-handler machinery.  The scrape may
            # query shard processes, so it runs in the executor.
            started = time.perf_counter()
            text = await asyncio.get_running_loop().run_in_executor(
                None, self.metrics_exposition)
            self._count(path)
            self._observe_request(path, started, trace_id)
            await self._write_response(
                writer, 200, text.encode("utf-8"),
                headers={TRACE_HEADER: trace_id},
                content_type=METRICS_CONTENT_TYPE, close=not keep)
            return keep

        base_path = path[3:] if versioned else path
        started = time.perf_counter()
        try:
            # Service-level fault site: a ``slow@service./predict``
            # clause delays the request here, before any work happens
            # (an ``injected`` kind surfaces as a clean 500 below).
            # Faults sleep, so they run off the event loop.
            if active_plan() is not None:
                await asyncio.get_running_loop().run_in_executor(
                    None, maybe_inject, "service." + path)
            body = (serialize.parse_json_body(raw_body)
                    if method == "POST" else None)
            core = getattr(self, _CORE_HANDLERS[base_path])
            result_bytes, meta_info = await core(body, trace_id)
        except RequestError as exc:
            self._count(path, error=True)
            self._observe_request(path, started, trace_id)
            return await bail(
                exc.status, str(exc), headers=exc.headers or None,
                retry_after_ms=getattr(exc, "retry_after_ms", None))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Detail stays server-side: exception text can carry paths
            # and internals that an untrusted client has no business
            # seeing.
            traceback.print_exc(file=sys.stderr)
            self._log.error("internal_error", route=path, trace=trace_id,
                            error=f"{type(exc).__name__}: {exc}")
            self._count(path, error=True)
            self._observe_request(path, started, trace_id)
            return await bail(500, "internal error")
        self._count(path)
        self._observe_request(path, started, trace_id)
        extra = {TRACE_HEADER: trace_id}
        if versioned:
            timing_ms = round((time.perf_counter() - started) * 1000.0,
                              3)
            meta = serialize.meta_dict(
                uarch=meta_info.get("uarch"),
                mode=meta_info.get("mode"),
                cache=meta_info.get("cache"),
                timing_ms=timing_ms,
                trace=trace_id)
            response = serialize.envelope_bytes(result_bytes, meta)
        else:
            response = result_bytes
            extra["Deprecation"] = "true"
        await self._write_response(writer, 200, response, headers=extra,
                                   close=not keep)
        return keep


def _consume_exception(task: "asyncio.Future") -> None:
    """Mark a gathered future's exception as retrieved (log hygiene)."""
    if not task.cancelled():
        task.exception()
