"""``facile serve``: the long-lived HTTP prediction service.

:class:`PredictionService` wraps a stdlib ``ThreadingHTTPServer``.  Each
request thread parses its JSON body and submits blocks to the per-µarch
:class:`~repro.engine.batching.MicroBatcher`, so concurrent clients are
micro-batched onto one ``Engine.predict_many`` call per window and all
share the engine's :class:`~repro.engine.cache.AnalysisCache` (and
worker pool, when the service was started with workers).

Endpoints (reference with schemas in ``docs/SERVICE.md``):

=======================  ==================================================
``GET  /health``         liveness + loaded µarchs
``GET  /stats``          request counters, cache and batcher statistics
``POST /predict``        one block → full interpretable prediction
``POST /predict/bulk``   many blocks → predictions, order-preserving
``POST /compare``        one block → Facile vs. the baseline analogs
=======================  ==================================================

Responses are canonical JSON (:func:`repro.service.serialize.json_bytes`)
— equal payloads are equal bytes, so micro-batching can never change
what a client observes.
"""

from __future__ import annotations

import concurrent.futures
import math
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro.core.components import ThroughputMode
from repro.engine.batching import DEFAULT_MAX_BATCH, DEFAULT_MAX_WAIT_MS, \
    MicroBatcher
from repro.engine.engine import Engine, default_workers
from repro.robustness.breaker import CircuitBreaker, OPEN
from repro.robustness.errors import CircuitOpenError, DeadlineExceeded, \
    QueueFullError
from repro.robustness.faults import maybe_inject
from repro.service import serialize
from repro.service.serialize import RequestError, json_bytes
from repro.uarch import ALL_UARCHS, uarch_by_name

#: Baselines offered by ``POST /compare`` when the request does not name
#: predictors explicitly.  The learned analogs (Ithemal, DiffTune,
#: learning-bl) are opt-in: their first use trains a model, which would
#: turn an unsuspecting comparison request into a multi-second call.
DEFAULT_COMPARE_PREDICTORS = (
    "Facile", "uiCA", "llvm-mca-15", "CQA", "IACA 3.0", "OSACA",
)

#: Hard cap on blocks per bulk request (larger requests get a 413).
DEFAULT_MAX_BULK = 4096

#: Hard cap on request body size in bytes (larger requests get a 413).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default bound on each µarch's admission queue (queued, undispatched
#: blocks).  Beyond it the service sheds load with 429 + ``Retry-After``
#: instead of queueing without bound.
DEFAULT_MAX_QUEUE = 4096

#: Default circuit-breaker tuning for the ``/compare`` baselines:
#: skip a predictor after this many consecutive failures, probe it
#: again after the cooldown.
DEFAULT_BREAKER_FAILURES = 3
DEFAULT_BREAKER_COOLDOWN = 30.0


class _ThreadingServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` tuned for bursty client fleets.

    The stdlib default listen backlog (5) drops connections when a few
    dozen clients connect in the same instant — the exact load the
    service exists to serve — so the queue is sized to ride out a burst
    of at least the acceptance-test fleet (32 concurrent clients).
    """

    daemon_threads = True
    request_queue_size = 128


class _UarchRuntime:
    """Everything the service holds per loaded µarch."""

    def __init__(self, abbrev: str, *, n_workers: Optional[int],
                 max_batch: int, max_wait_ms: float,
                 max_queue: Optional[int],
                 breaker_failures: int, breaker_cooldown: float):
        cfg = uarch_by_name(abbrev)
        self.cfg = cfg
        self.engine = Engine(cfg, n_workers=n_workers)
        self.batcher = MicroBatcher(self.engine, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms,
                                    max_queue=max_queue)
        # The comparison predictors run in request threads, not through
        # the batcher's dispatcher; they get a private database (hence a
        # private analysis cache) plus a lock, so they can never race
        # the dispatcher on the engine's unsynchronized cache.
        self.compare_lock = threading.Lock()
        self._predictors: Dict[str, object] = {}
        # One circuit breaker per baseline predictor: a broken tool is
        # skipped (a typed entry in the response) instead of failing
        # every /compare that names it.
        self.breaker_failures = breaker_failures
        self.breaker_cooldown = breaker_cooldown
        self.breakers: Dict[str, CircuitBreaker] = {}

    def predictor(self, name: str):
        """The (memoized, guarded) baseline predictor *name*.

        Wrapped in :class:`~repro.baselines.GuardedPredictor`: transient
        failures are retried inside the request, persistent ones open
        the runtime's per-predictor breaker.
        """
        from repro.baselines import GuardedPredictor, all_predictors, \
            predictor_names
        if name not in self._predictors:
            if name not in predictor_names():
                raise RequestError(
                    f"unknown predictor {name!r} "
                    f"(available: {', '.join(predictor_names())})",
                    status=404)
            predictor, = all_predictors(self.cfg, names=[name])
            predictor.prepare()
            self._predictors[name] = GuardedPredictor(
                predictor, breaker=self.breaker(name))
        return self._predictors[name]

    def breaker(self, name: str) -> CircuitBreaker:
        """The circuit breaker guarding predictor *name*."""
        if name not in self.breakers:
            self.breakers[name] = CircuitBreaker(
                name, failure_threshold=self.breaker_failures,
                cooldown=self.breaker_cooldown)
        return self.breakers[name]

    def open_breakers(self) -> List[str]:
        """Names of predictors whose breaker is currently open."""
        return sorted(name for name, breaker in self.breakers.items()
                      if breaker.state == OPEN)

    def close(self) -> None:
        self.batcher.close()
        self.engine.close()


class PredictionService:
    """The embeddable prediction server behind ``facile serve``.

    Args:
        uarch: default µarch for requests that do not name one.
        host / port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`port` — this is how the tests and
            the bench load generator run hermetically).
        n_workers: engine worker processes per µarch (as in
            :class:`~repro.engine.engine.Engine`: ``0`` one per CPU;
            ``None`` resolves to the process-wide default —
            ``set_default_workers`` / ``REPRO_ENGINE_WORKERS`` — at
            construction time, so the banner and ``/stats`` report
            what the engines actually use).
        max_batch / max_wait_ms: the micro-batching window (see
            :class:`~repro.engine.batching.MicroBatcher`).
        max_bulk: maximum blocks accepted in one bulk request.
        max_queue: bound on each µarch's admission queue; beyond it the
            service sheds with ``429`` + ``Retry-After``.  ``None``
            disables shedding (unbounded queue).
        breaker_failures / breaker_cooldown: circuit-breaker tuning for
            the ``/compare`` baselines (consecutive failures to open;
            seconds until a half-open probe).

    Usable as a context manager::

        with PredictionService(uarch="SKL", port=0) as service:
            client = ServiceClient(port=service.port)
            client.predict(hex="4801d8")
    """

    def __init__(self, uarch: str = "SKL", *, host: str = "127.0.0.1",
                 port: int = 0, n_workers: Optional[int] = None,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 max_bulk: int = DEFAULT_MAX_BULK,
                 max_queue: Optional[int] = DEFAULT_MAX_QUEUE,
                 breaker_failures: int = DEFAULT_BREAKER_FAILURES,
                 breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN):
        # Fail fast at construction: these would otherwise surface as a
        # 500 on the first request (runtimes are built lazily).
        uarch_by_name(uarch)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_bulk < 1:
            raise ValueError("max_bulk must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 or None")
        if breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be >= 0")
        self.default_uarch = uarch
        self.n_workers = (n_workers if n_workers is not None
                          else default_workers())
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_bulk = max_bulk
        self.max_queue = max_queue
        self.breaker_failures = breaker_failures
        self.breaker_cooldown = breaker_cooldown
        self.known_uarchs: List[str] = [cfg.abbrev for cfg in ALL_UARCHS]
        self._runtimes: Dict[str, _UarchRuntime] = {}
        self._runtimes_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests_by_endpoint: Dict[str, int] = {}
        self._errors = 0
        self._started_at = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        self._httpd = _ThreadingServer((host, port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        return self._httpd.server_address[1]

    def start(self) -> "PredictionService":
        """Serve in a background thread (returns once the socket is up)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="facile-serve", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``facile serve`` loop)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and shut down batchers, pools, and the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._runtimes_lock:
            runtimes = list(self._runtimes.values())
        for runtime in runtimes:
            runtime.close()

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    # -- runtimes ------------------------------------------------------

    def runtime(self, uarch: str) -> _UarchRuntime:
        """The engine+batcher pair for *uarch*, created on first use."""
        with self._runtimes_lock:
            runtime = self._runtimes.get(uarch)
            if runtime is None:
                runtime = _UarchRuntime(
                    uarch, n_workers=self.n_workers,
                    max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms,
                    max_queue=self.max_queue,
                    breaker_failures=self.breaker_failures,
                    breaker_cooldown=self.breaker_cooldown)
                self._runtimes[uarch] = runtime
            return runtime

    # -- bookkeeping ---------------------------------------------------

    def _count(self, endpoint: str, error: bool = False) -> None:
        with self._stats_lock:
            self._requests_by_endpoint[endpoint] = \
                self._requests_by_endpoint.get(endpoint, 0) + 1
            if error:
                self._errors += 1

    # -- endpoint payloads ---------------------------------------------

    def health_payload(self) -> Dict:
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        # "degraded" (still HTTP 200 — the service *is* live) means a
        # baseline breaker is open or an admission queue is saturated:
        # a monitor should look, clients should expect skips / 429s.
        reasons: List[str] = []
        open_breakers: Dict[str, List[str]] = {}
        shed_total = 0
        for abbrev, runtime in sorted(runtimes.items()):
            opened = runtime.open_breakers()
            if opened:
                open_breakers[abbrev] = opened
                reasons.append(
                    f"{abbrev}: open breakers: {', '.join(opened)}")
            shed_total += runtime.batcher.shed
            if runtime.batcher.saturated:
                reasons.append(f"{abbrev}: admission queue saturated")
        return {
            "status": "degraded" if reasons else "ok",
            "service": "facile",
            "default_uarch": self.default_uarch,
            "uarchs_available": self.known_uarchs,
            "uarchs_loaded": sorted(runtimes),
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
            "open_breakers": open_breakers,
            "shed_total": shed_total,
            "degraded_reasons": reasons,
        }

    def stats_payload(self) -> Dict:
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        with self._stats_lock:
            by_endpoint = dict(self._requests_by_endpoint)
            errors = self._errors
        return {
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
            "workers": self.n_workers,
            "requests": {
                "total": sum(by_endpoint.values()),
                "by_endpoint": by_endpoint,
                "errors": errors,
            },
            "uarchs": {
                abbrev: {
                    "cache": runtime.engine.cache.stats(),
                    "batcher": runtime.batcher.stats(),
                    "engine": {
                        "tasks_retried": runtime.engine.tasks_retried,
                        "tasks_failed": runtime.engine.tasks_failed,
                        "pool_respawns": runtime.engine.pool_respawns,
                    },
                    "breakers": {
                        name: breaker.stats()
                        for name, breaker
                        in sorted(runtime.breakers.items())
                    },
                }
                for abbrev, runtime in runtimes.items()
            },
        }

    @staticmethod
    def _parse_deadline(body: Dict):
        """``(deadline, wait)`` from the request's ``timeout_ms``.

        *deadline* is the ``time.monotonic`` timestamp the batcher
        sheds queued work at; *wait* bounds how long the request thread
        blocks on the future (the deadline budget plus one second of
        dispatch slack, so in-flight engine work gets a beat to finish
        before the thread gives up).  Both ``None`` without a budget.
        """
        timeout_ms = serialize.parse_timeout_ms(body)
        if timeout_ms is None:
            return None, None
        budget = timeout_ms / 1000.0
        return time.monotonic() + budget, budget + 1.0

    @staticmethod
    def _shed_to_http(exc: Exception) -> RequestError:
        """Map batcher overload signals onto their HTTP vocabulary."""
        if isinstance(exc, QueueFullError):
            return RequestError(
                str(exc), status=429,
                headers={"Retry-After":
                         str(int(math.ceil(exc.retry_after)))})
        return RequestError(
            "deadline exceeded before the prediction completed "
            "(raise 'timeout_ms' or retry when the server is "
            "less loaded)", status=504)

    def predict_payload(self, body: Dict) -> Dict:
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        block = serialize.parse_block(body)
        counterfactuals = serialize.parse_counterfactuals(body)
        deadline, wait = self._parse_deadline(body)
        try:
            prediction = self.runtime(uarch).batcher.predict(
                block, mode, timeout=wait, deadline=deadline)
        except (QueueFullError, DeadlineExceeded,
                concurrent.futures.TimeoutError) as exc:
            raise self._shed_to_http(exc)
        return serialize.prediction_to_dict(
            prediction, block, uarch, counterfactuals=counterfactuals)

    def bulk_payload(self, body: Dict) -> Dict:
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        blocks = serialize.parse_blocks(body, max_blocks=self.max_bulk)
        counterfactuals = serialize.parse_counterfactuals(body)
        deadline, wait = self._parse_deadline(body)
        try:
            predictions = self.runtime(uarch).batcher.predict_many(
                blocks, mode, timeout=wait, deadline=deadline)
        except (QueueFullError, DeadlineExceeded,
                concurrent.futures.TimeoutError) as exc:
            raise self._shed_to_http(exc)
        return {
            "uarch": uarch,
            "mode": mode.value,
            "n_blocks": len(blocks),
            "predictions": [
                serialize.prediction_to_dict(
                    prediction, block, uarch,
                    counterfactuals=counterfactuals)
                for prediction, block in zip(predictions, blocks)
            ],
        }

    def compare_payload(self, body: Dict) -> Dict:
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        block = serialize.parse_block(body)
        names = body.get("predictors", list(DEFAULT_COMPARE_PREDICTORS))
        if (not isinstance(names, list)
                or not all(isinstance(n, str) for n in names)
                or not names):
            raise RequestError(
                "'predictors' must be a non-empty array of names")
        runtime = self.runtime(uarch)
        predictions: Dict[str, float] = {}
        skipped: Dict[str, Dict] = {}
        with runtime.compare_lock:
            for name in names:
                predictor = runtime.predictor(name)
                try:
                    value = round(float(predictor.predict(block, mode)),
                                  2)
                except CircuitOpenError as exc:
                    # Typed skip: the tool kept failing, its breaker is
                    # open, and the response says so instead of a 500.
                    skipped[name] = {
                        "reason": "circuit_open",
                        "retry_after_sec": round(exc.retry_after, 3),
                    }
                    continue
                except RequestError:
                    raise
                except Exception as exc:
                    # Past its retries: the tool sits this request out.
                    skipped[name] = {
                        "reason": "error",
                        "detail": f"{type(exc).__name__}: {exc}",
                    }
                    continue
                predictions[name] = value
        return {
            "block": {"hex": block.raw.hex(),
                      "instructions": len(block),
                      "bytes": block.num_bytes},
            "uarch": uarch,
            "mode": mode.value,
            "predictions": predictions,
            "skipped": skipped,
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto :class:`PredictionService` payloads."""

    server_version = "facile-serve/1"
    protocol_version = "HTTP/1.1"

    #: Endpoint tables: path -> payload-builder name.
    GET_ROUTES = {"/health": "health_payload", "/stats": "stats_payload"}
    POST_ROUTES = {"/predict": "predict_payload",
                   "/predict/bulk": "bulk_payload",
                   "/compare": "compare_payload"}

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Silence per-request stderr logging (stats carry the counts)."""

    # -- plumbing ------------------------------------------------------

    def _send_json(self, status: int, payload: Dict, *,
                   close: bool = False,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         headers: Optional[Dict[str, str]] = None
                         ) -> None:
        # Error paths may not have drained the request body (404/405
        # routes, oversized bodies); leftover bytes would be parsed as
        # the next request line on a kept-alive connection, so close it.
        # (send_header("Connection", "close") also sets
        # self.close_connection for the stdlib handler loop.)
        self._send_json(status, {"error": message}, close=True,
                        headers=headers)

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        try:
            length = int(length or 0)
        except ValueError:
            raise RequestError("invalid Content-Length header")
        if length < 0:
            raise RequestError("invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body too large (> {MAX_BODY_BYTES} bytes)",
                status=413)
        return self.rfile.read(length)

    def _dispatch(self, routes: Dict[str, str],
                  other_routes: Dict[str, str], with_body: bool) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        builder_name = routes.get(path)
        if builder_name is None:
            if path in other_routes:
                self.service._count(path, error=True)
                self._send_error_json(
                    405, f"method not allowed for {path} "
                         f"(use {'GET' if with_body else 'POST'} "
                         "endpoints as documented in docs/SERVICE.md)")
            else:
                # Folded into one counter: client-chosen paths must not
                # grow the stats dict (the server may be long-lived and
                # internet-facing).
                self.service._count("unknown", error=True)
                self._send_error_json(404, f"unknown endpoint {path!r}")
            return
        try:
            # Service-level fault site: a ``slow@service./predict``
            # clause delays the request here, before any work happens
            # (an ``injected`` kind surfaces as a clean 500 below).
            maybe_inject("service." + path)
            builder = getattr(self.service, builder_name)
            if with_body:
                body = serialize.parse_json_body(self._read_body())
                payload = builder(body)
            else:
                payload = builder()
        except RequestError as exc:
            self.service._count(path, error=True)
            self._send_error_json(exc.status, str(exc),
                                  headers=exc.headers or None)
            return
        except Exception:  # pragma: no cover - defensive
            # Detail stays server-side: exception text can carry paths
            # and internals that an untrusted client has no business
            # seeing.
            import traceback
            traceback.print_exc(file=sys.stderr)
            self.service._count(path, error=True)
            self._send_error_json(500, "internal error")
            return
        self.service._count(path)
        self._send_json(200, payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self.GET_ROUTES, self.POST_ROUTES, with_body=False)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self.POST_ROUTES, self.GET_ROUTES, with_body=True)
