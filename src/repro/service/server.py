"""``facile serve``: the long-lived HTTP prediction service.

:class:`PredictionService` wraps a stdlib ``ThreadingHTTPServer``.  Each
request thread parses its JSON body and submits blocks to the per-µarch
:class:`~repro.engine.batching.MicroBatcher`, so concurrent clients are
micro-batched onto one ``Engine.predict_many`` call per window and all
share the engine's :class:`~repro.engine.cache.AnalysisCache` (and
worker pool, when the service was started with workers).

Endpoints (reference with schemas in ``docs/SERVICE.md``):

=======================  ==================================================
``GET  /health``         liveness + loaded µarchs
``GET  /stats``          request counters, cache and batcher statistics
``POST /predict``        one block → full interpretable prediction
``POST /predict/bulk``   many blocks → predictions, order-preserving
``POST /compare``        one block → Facile vs. the baseline analogs
=======================  ==================================================

Responses are canonical JSON (:func:`repro.service.serialize.json_bytes`)
— equal payloads are equal bytes, so micro-batching can never change
what a client observes.
"""

from __future__ import annotations

import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro.core.components import ThroughputMode
from repro.engine.batching import DEFAULT_MAX_BATCH, DEFAULT_MAX_WAIT_MS, \
    MicroBatcher
from repro.engine.engine import Engine, default_workers
from repro.service import serialize
from repro.service.serialize import RequestError, json_bytes
from repro.uarch import ALL_UARCHS, uarch_by_name

#: Baselines offered by ``POST /compare`` when the request does not name
#: predictors explicitly.  The learned analogs (Ithemal, DiffTune,
#: learning-bl) are opt-in: their first use trains a model, which would
#: turn an unsuspecting comparison request into a multi-second call.
DEFAULT_COMPARE_PREDICTORS = (
    "Facile", "uiCA", "llvm-mca-15", "CQA", "IACA 3.0", "OSACA",
)

#: Hard cap on blocks per bulk request (larger requests get a 413).
DEFAULT_MAX_BULK = 4096

#: Hard cap on request body size in bytes (larger requests get a 413).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _ThreadingServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` tuned for bursty client fleets.

    The stdlib default listen backlog (5) drops connections when a few
    dozen clients connect in the same instant — the exact load the
    service exists to serve — so the queue is sized to ride out a burst
    of at least the acceptance-test fleet (32 concurrent clients).
    """

    daemon_threads = True
    request_queue_size = 128


class _UarchRuntime:
    """Everything the service holds per loaded µarch."""

    def __init__(self, abbrev: str, *, n_workers: Optional[int],
                 max_batch: int, max_wait_ms: float):
        cfg = uarch_by_name(abbrev)
        self.cfg = cfg
        self.engine = Engine(cfg, n_workers=n_workers)
        self.batcher = MicroBatcher(self.engine, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms)
        # The comparison predictors run in request threads, not through
        # the batcher's dispatcher; they get a private database (hence a
        # private analysis cache) plus a lock, so they can never race
        # the dispatcher on the engine's unsynchronized cache.
        self.compare_lock = threading.Lock()
        self._predictors: Dict[str, object] = {}

    def predictor(self, name: str):
        """The (memoized) baseline predictor *name* on this µarch."""
        from repro.baselines import all_predictors, predictor_names
        if name not in self._predictors:
            if name not in predictor_names():
                raise RequestError(
                    f"unknown predictor {name!r} "
                    f"(available: {', '.join(predictor_names())})",
                    status=404)
            predictor, = all_predictors(self.cfg, names=[name])
            predictor.prepare()
            self._predictors[name] = predictor
        return self._predictors[name]

    def close(self) -> None:
        self.batcher.close()
        self.engine.close()


class PredictionService:
    """The embeddable prediction server behind ``facile serve``.

    Args:
        uarch: default µarch for requests that do not name one.
        host / port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`port` — this is how the tests and
            the bench load generator run hermetically).
        n_workers: engine worker processes per µarch (as in
            :class:`~repro.engine.engine.Engine`: ``0`` one per CPU;
            ``None`` resolves to the process-wide default —
            ``set_default_workers`` / ``REPRO_ENGINE_WORKERS`` — at
            construction time, so the banner and ``/stats`` report
            what the engines actually use).
        max_batch / max_wait_ms: the micro-batching window (see
            :class:`~repro.engine.batching.MicroBatcher`).
        max_bulk: maximum blocks accepted in one bulk request.

    Usable as a context manager::

        with PredictionService(uarch="SKL", port=0) as service:
            client = ServiceClient(port=service.port)
            client.predict(hex="4801d8")
    """

    def __init__(self, uarch: str = "SKL", *, host: str = "127.0.0.1",
                 port: int = 0, n_workers: Optional[int] = None,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 max_bulk: int = DEFAULT_MAX_BULK):
        # Fail fast at construction: these would otherwise surface as a
        # 500 on the first request (runtimes are built lazily).
        uarch_by_name(uarch)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_bulk < 1:
            raise ValueError("max_bulk must be >= 1")
        self.default_uarch = uarch
        self.n_workers = (n_workers if n_workers is not None
                          else default_workers())
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_bulk = max_bulk
        self.known_uarchs: List[str] = [cfg.abbrev for cfg in ALL_UARCHS]
        self._runtimes: Dict[str, _UarchRuntime] = {}
        self._runtimes_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests_by_endpoint: Dict[str, int] = {}
        self._errors = 0
        self._started_at = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        self._httpd = _ThreadingServer((host, port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        return self._httpd.server_address[1]

    def start(self) -> "PredictionService":
        """Serve in a background thread (returns once the socket is up)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="facile-serve", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``facile serve`` loop)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and shut down batchers, pools, and the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._runtimes_lock:
            runtimes = list(self._runtimes.values())
        for runtime in runtimes:
            runtime.close()

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    # -- runtimes ------------------------------------------------------

    def runtime(self, uarch: str) -> _UarchRuntime:
        """The engine+batcher pair for *uarch*, created on first use."""
        with self._runtimes_lock:
            runtime = self._runtimes.get(uarch)
            if runtime is None:
                runtime = _UarchRuntime(
                    uarch, n_workers=self.n_workers,
                    max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms)
                self._runtimes[uarch] = runtime
            return runtime

    # -- bookkeeping ---------------------------------------------------

    def _count(self, endpoint: str, error: bool = False) -> None:
        with self._stats_lock:
            self._requests_by_endpoint[endpoint] = \
                self._requests_by_endpoint.get(endpoint, 0) + 1
            if error:
                self._errors += 1

    # -- endpoint payloads ---------------------------------------------

    def health_payload(self) -> Dict:
        with self._runtimes_lock:
            loaded = sorted(self._runtimes)
        return {
            "status": "ok",
            "service": "facile",
            "default_uarch": self.default_uarch,
            "uarchs_available": self.known_uarchs,
            "uarchs_loaded": loaded,
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
        }

    def stats_payload(self) -> Dict:
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        with self._stats_lock:
            by_endpoint = dict(self._requests_by_endpoint)
            errors = self._errors
        return {
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
            "workers": self.n_workers,
            "requests": {
                "total": sum(by_endpoint.values()),
                "by_endpoint": by_endpoint,
                "errors": errors,
            },
            "uarchs": {
                abbrev: {
                    "cache": runtime.engine.cache.stats(),
                    "batcher": runtime.batcher.stats(),
                }
                for abbrev, runtime in runtimes.items()
            },
        }

    def predict_payload(self, body: Dict) -> Dict:
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        block = serialize.parse_block(body)
        counterfactuals = serialize.parse_counterfactuals(body)
        prediction = self.runtime(uarch).batcher.predict(block, mode)
        return serialize.prediction_to_dict(
            prediction, block, uarch, counterfactuals=counterfactuals)

    def bulk_payload(self, body: Dict) -> Dict:
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        blocks = serialize.parse_blocks(body, max_blocks=self.max_bulk)
        counterfactuals = serialize.parse_counterfactuals(body)
        predictions = self.runtime(uarch).batcher.predict_many(blocks,
                                                               mode)
        return {
            "uarch": uarch,
            "mode": mode.value,
            "n_blocks": len(blocks),
            "predictions": [
                serialize.prediction_to_dict(
                    prediction, block, uarch,
                    counterfactuals=counterfactuals)
                for prediction, block in zip(predictions, blocks)
            ],
        }

    def compare_payload(self, body: Dict) -> Dict:
        uarch = serialize.parse_uarch(body, self.default_uarch,
                                      self.known_uarchs)
        mode = serialize.parse_mode(body)
        block = serialize.parse_block(body)
        names = body.get("predictors", list(DEFAULT_COMPARE_PREDICTORS))
        if (not isinstance(names, list)
                or not all(isinstance(n, str) for n in names)
                or not names):
            raise RequestError(
                "'predictors' must be a non-empty array of names")
        runtime = self.runtime(uarch)
        predictions = {}
        with runtime.compare_lock:
            for name in names:
                predictor = runtime.predictor(name)
                predictions[name] = round(
                    float(predictor.predict(block, mode)), 2)
        return {
            "block": {"hex": block.raw.hex(),
                      "instructions": len(block),
                      "bytes": block.num_bytes},
            "uarch": uarch,
            "mode": mode.value,
            "predictions": predictions,
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto :class:`PredictionService` payloads."""

    server_version = "facile-serve/1"
    protocol_version = "HTTP/1.1"

    #: Endpoint tables: path -> payload-builder name.
    GET_ROUTES = {"/health": "health_payload", "/stats": "stats_payload"}
    POST_ROUTES = {"/predict": "predict_payload",
                   "/predict/bulk": "bulk_payload",
                   "/compare": "compare_payload"}

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Silence per-request stderr logging (stats carry the counts)."""

    # -- plumbing ------------------------------------------------------

    def _send_json(self, status: int, payload: Dict, *,
                   close: bool = False) -> None:
        body = json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        # Error paths may not have drained the request body (404/405
        # routes, oversized bodies); leftover bytes would be parsed as
        # the next request line on a kept-alive connection, so close it.
        # (send_header("Connection", "close") also sets
        # self.close_connection for the stdlib handler loop.)
        self._send_json(status, {"error": message}, close=True)

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        try:
            length = int(length or 0)
        except ValueError:
            raise RequestError("invalid Content-Length header")
        if length < 0:
            raise RequestError("invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body too large (> {MAX_BODY_BYTES} bytes)",
                status=413)
        return self.rfile.read(length)

    def _dispatch(self, routes: Dict[str, str],
                  other_routes: Dict[str, str], with_body: bool) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        builder_name = routes.get(path)
        if builder_name is None:
            if path in other_routes:
                self.service._count(path, error=True)
                self._send_error_json(
                    405, f"method not allowed for {path} "
                         f"(use {'GET' if with_body else 'POST'} "
                         "endpoints as documented in docs/SERVICE.md)")
            else:
                # Folded into one counter: client-chosen paths must not
                # grow the stats dict (the server may be long-lived and
                # internet-facing).
                self.service._count("unknown", error=True)
                self._send_error_json(404, f"unknown endpoint {path!r}")
            return
        try:
            builder = getattr(self.service, builder_name)
            if with_body:
                body = serialize.parse_json_body(self._read_body())
                payload = builder(body)
            else:
                payload = builder()
        except RequestError as exc:
            self.service._count(path, error=True)
            self._send_error_json(exc.status, str(exc))
            return
        except Exception:  # pragma: no cover - defensive
            # Detail stays server-side: exception text can carry paths
            # and internals that an untrusted client has no business
            # seeing.
            import traceback
            traceback.print_exc(file=sys.stderr)
            self.service._count(path, error=True)
            self._send_error_json(500, "internal error")
            return
        self.service._count(path)
        self._send_json(200, payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self.GET_ROUTES, self.POST_ROUTES, with_body=False)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self.POST_ROUTES, self.GET_ROUTES, with_body=True)
