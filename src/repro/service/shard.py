"""Per-µarch worker-process shards behind the async service front-end.

The asyncio front-end (:mod:`repro.service.server`) never runs
prediction work on its event loop.  Each µarch gets a
:class:`ShardEngine`: a proxy whose dedicated **worker process** owns
that µarch's :class:`~repro.uops.database.UopsDatabase`,
:class:`~repro.engine.cache.AnalysisCache` (optionally layered over a
:class:`~repro.engine.persist.PersistentAnalysisCache`) and
:class:`~repro.engine.engine.Engine`.  Requests cross the process
boundary as compact picklable payloads — ``(request id, mode value,
[raw block bytes, ...])`` — and answers come back as pickled
:class:`~repro.core.model.Prediction` lists matched to their request by
id, the same payload discipline the parallel engine uses for its pool
tasks.

Determinism: the worker computes predictions with a serial
``Engine.predict_many`` pass over the exact request order (or its own
pool when ``n_workers`` asks for one — itself deterministic by index
merge), so serving through a shard is byte-identical to serving
in-process.

Fault tolerance mirrors the engine pool: a dead or hung worker fails
the in-flight request with :class:`ShardCrash`, the proxy respawns the
process and retries once with faults cleared, and if the respawn also
fails it falls back to a lazily-built in-process engine — same bytes,
reduced isolation.  The deterministic fault harness reaches the shard
via the :data:`SHARD_SITE` site (``REPRO_FAULTS`` clauses matching
``service.shard``); drawn faults are shipped to the worker and acted
out there (``worker_kill`` exits the worker, ``slow`` sleeps).
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import Future, TimeoutError as FutureTimeout
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.components import ThroughputMode
from repro.core.model import Prediction
from repro.engine.cache import AnalysisCache
from repro.engine.engine import DEFAULT_FAULTED_TIMEOUT, Engine, \
    _pool_context
from repro.engine.persist import PersistentAnalysisCache
from repro.isa.block import BasicBlock
from repro.obs import log
from repro.obs.trace import Span
from repro.robustness.faults import act_in_worker, active_plan
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

#: The shard's fault-injection site (``REPRO_FAULTS`` pattern target).
SHARD_SITE = "service.shard"

#: How long the proxy waits for a graceful worker shutdown before
#: escalating to ``terminate()``.
SHUTDOWN_GRACE = 2.0


class ShardCrash(RuntimeError):
    """The shard worker died (or hung) before answering a request."""


def _shard_main(abbrev: str, request_queue, result_queue,
                persist_path: Optional[str],
                n_workers: Optional[int]) -> None:
    """Worker-process entry point: serve requests until shutdown.

    Messages in: ``("predict", id, mode, raws, faults, traces)``,
    ``("stats", id)``, ``("shutdown",)``.  Messages out:
    ``(id, ok, payload)`` where a failed request carries
    ``"ExcType: message"`` text instead of its payload (full tracebacks
    stay in the worker; the front-end answers an opaque 500).

    At debug level the worker logs one structured line per predict
    batch carrying the originating trace ids, so a client-visible
    ``meta.trace`` can be joined with the worker that computed it.
    """
    # Re-read REPRO_LOG: on fork the child inherits module state parsed
    # before the parent's environment may have changed.
    log.refresh_level()
    logger = log.get_logger("shard")
    cfg = uarch_by_name(abbrev)
    db = UopsDatabase(cfg)
    persistent = (PersistentAnalysisCache(persist_path, abbrev)
                  if persist_path else None)
    cache = AnalysisCache(db, persistent=persistent)
    # Shards pin the object core: the analysis cache + persistent layer
    # they report through /stats are populated by the object path.
    engine = Engine(cfg, db=db, cache=cache, n_workers=n_workers,
                    core="object")
    while True:
        message = request_queue.get()
        if message[0] == "shutdown":
            break
        if message[0] == "stats":
            result_queue.put((message[1], True, {
                "cache": cache.stats(),
                "engine": {"tasks_retried": engine.tasks_retried,
                           "tasks_failed": engine.tasks_failed,
                           "pool_respawns": engine.pool_respawns},
            }))
            continue
        _, request_id, mode_value, raws, faults, traces = message
        try:
            if log.level_enabled("debug"):
                logger.debug(
                    "predict_batch", uarch=abbrev, mode=mode_value,
                    n_blocks=len(raws),
                    traces=sorted({t for t in traces if t}))
            for fault in faults:
                if fault is not None:
                    act_in_worker(fault, SHARD_SITE)
            blocks = [BasicBlock.from_bytes(raw) for raw in raws]
            predictions = engine.predict_many(
                blocks, ThroughputMode(mode_value))
            if persistent is not None:
                cache.sync_persistent()
            result_queue.put((request_id, True, predictions))
        except Exception as exc:  # noqa: BLE001 - shipped as text
            result_queue.put((request_id, False,
                              f"{type(exc).__name__}: {exc}"))
    engine.close()


class _WorkerHandle:
    """One worker-process generation: process, queues, pending futures.

    Bundling per-generation state keeps a late reader thread of a dead
    generation from ever touching the futures of its successor.
    """

    def __init__(self, context, abbrev: str, persist_path: Optional[str],
                 n_workers: Optional[int]):
        self.request_queue = context.Queue()
        self.result_queue = context.Queue()
        self.pending: Dict[int, Future] = {}
        self.lock = threading.Lock()
        self.process = context.Process(
            target=_shard_main,
            args=(abbrev, self.request_queue, self.result_queue,
                  persist_path, n_workers),
            name=f"facile-shard-{abbrev}", daemon=True)
        self.process.start()
        self.reader = threading.Thread(
            target=self._read_loop, name=f"facile-shard-{abbrev}-reader",
            daemon=True)
        self.reader.start()

    def register(self, request_id: int) -> Future:
        future: Future = Future()
        with self.lock:
            self.pending[request_id] = future
        return future

    def forget(self, request_id: int) -> None:
        with self.lock:
            self.pending.pop(request_id, None)

    def _resolve(self, request_id: int, ok: bool, payload) -> None:
        with self.lock:
            future = self.pending.pop(request_id, None)
        if future is None:
            return
        if ok:
            future.set_result(payload)
        else:
            future.set_exception(RuntimeError(payload))

    def _read_loop(self) -> None:
        while True:
            try:
                request_id, ok, payload = self.result_queue.get(
                    timeout=0.1)
            except queue.Empty:
                if not self.process.is_alive():
                    self._drain_then_fail()
                    return
                with self.lock:
                    idle = not self.pending
                if idle and getattr(self, "finished", False):
                    return
                continue
            except (EOFError, OSError):
                self._drain_then_fail()
                return
            self._resolve(request_id, ok, payload)

    def _drain_then_fail(self) -> None:
        # The worker died: deliver whatever it managed to flush, then
        # fail every still-pending future so callers can recover.
        while True:
            try:
                request_id, ok, payload = self.result_queue.get_nowait()
            except (queue.Empty, EOFError, OSError):
                break
            self._resolve(request_id, ok, payload)
        with self.lock:
            pending = list(self.pending.values())
            self.pending.clear()
        crash = ShardCrash("shard worker process died")
        for future in pending:
            if not future.done():
                future.set_exception(crash)

    def stop(self) -> None:
        self.finished = True
        try:
            self.request_queue.put(("shutdown",))
        except (ValueError, OSError):
            pass
        self.process.join(timeout=SHUTDOWN_GRACE)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=SHUTDOWN_GRACE)


class ShardEngine:
    """Engine-shaped proxy for one µarch's worker-process shard.

    Exposes the one method the :class:`~repro.engine.batching.
    MicroBatcher` dispatcher needs — :meth:`predict_many` — plus
    :meth:`stats` (a control-message round trip) and :meth:`close`.
    ``predict_many`` is intended to be called from one dispatcher
    thread; ``stats`` may be called concurrently from others.
    """

    def __init__(self, uarch: str, *, persist_path: Optional[str] = None,
                 n_workers: Optional[int] = None):
        self.uarch = uarch
        self.persist_path = persist_path
        self.n_workers = n_workers
        self.respawns = 0
        self.fallback_used = 0
        self._request_ids = itertools.count()
        self._context = _pool_context()
        self._closed = False
        self._fallback: Optional[Engine] = None
        self._worker = _WorkerHandle(self._context, uarch, persist_path,
                                     n_workers)

    # -- prediction ----------------------------------------------------

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode,
                     traces: Optional[Sequence[Optional[str]]] = None
                     ) -> List[Prediction]:
        """Predict *blocks* in the worker; byte-identical to in-process.

        A crashed/hung worker triggers one respawn-and-retry (faults
        cleared, mirroring the engine pool's recovery contract); if the
        fresh worker fails too, the request is served by an in-process
        fallback engine.

        *traces* (optional, one per block) are per-request trace ids
        shipped in the IPC payload so the worker can log them; they
        never affect prediction bytes.
        """
        if self._closed:
            raise RuntimeError("ShardEngine is closed")
        plan = active_plan()
        faults: List[Optional[Tuple[str, float]]] = []
        for _ in blocks:
            fault = plan.check(SHARD_SITE) if plan is not None else None
            faults.append(fault.encode() if fault is not None else None)
        try:
            return self._roundtrip(blocks, mode, faults, traces)
        except ShardCrash:
            self._respawn()
            try:
                return self._roundtrip(blocks, mode,
                                       [None] * len(blocks), traces)
            except ShardCrash:
                self.fallback_used += len(blocks)
                return self._fallback_engine().predict_many(blocks, mode)

    def _roundtrip(self, blocks: Sequence[BasicBlock],
                   mode: ThroughputMode,
                   faults: List[Optional[Tuple[str, float]]],
                   traces: Optional[Sequence[Optional[str]]] = None
                   ) -> List[Prediction]:
        worker = self._worker
        request_id = next(self._request_ids)
        future = worker.register(request_id)
        try:
            worker.request_queue.put(
                ("predict", request_id, mode.value,
                 [block.raw for block in blocks], faults,
                 list(traces) if traces is not None
                 else [None] * len(blocks)))
        except (ValueError, OSError) as exc:
            worker.forget(request_id)
            raise ShardCrash(f"shard request queue unusable: {exc}")
        try:
            with Span("shard.roundtrip"):
                return future.result(
                    timeout=self._timeout_for(len(blocks)))
        except FutureTimeout:
            worker.forget(request_id)
            raise ShardCrash("shard worker did not answer in time")
        except ShardCrash:
            raise
        # RuntimeError from the worker (a real prediction failure, not
        # a crash) propagates to the batcher unchanged.

    def _timeout_for(self, n_blocks: int) -> Optional[float]:
        """Bounded waits only under an active fault plan.

        Without injected faults a slow answer is just a big batch on a
        busy box — the reader thread catches real deaths, so the wait
        is unbounded.  With a plan active, a ``timeout`` fault can hang
        the worker; scale the engine's faulted budget by batch size.
        """
        if active_plan() is None:
            return None
        return DEFAULT_FAULTED_TIMEOUT * max(1.0, n_blocks / 16.0)

    def _respawn(self) -> None:
        if self._closed:
            raise ShardCrash("ShardEngine closed during recovery")
        self.respawns += 1
        old = self._worker
        old.finished = True
        if old.process.is_alive():
            old.process.terminate()
            old.process.join(timeout=SHUTDOWN_GRACE)
        self._worker = _WorkerHandle(self._context, self.uarch,
                                     self.persist_path, self.n_workers)

    def _fallback_engine(self) -> Engine:
        if self._fallback is None:
            cfg = uarch_by_name(self.uarch)
            self._fallback = Engine(cfg, core="object")
        return self._fallback

    # -- reporting -----------------------------------------------------

    @property
    def alive(self) -> bool:
        return (not self._closed) and self._worker.process.is_alive()

    def stats(self, timeout: float = 5.0) -> Dict[str, object]:
        """The worker's cache/engine counters (``{}`` if unreachable)."""
        if self._closed:
            return {}
        worker = self._worker
        request_id = next(self._request_ids)
        future = worker.register(request_id)
        try:
            worker.request_queue.put(("stats", request_id))
            payload = future.result(timeout=timeout)
        except Exception:  # noqa: BLE001 - stats are best-effort
            worker.forget(request_id)
            return {}
        return payload

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardEngine":
        return self

    def __exit__(self, exc_type, exc_value, trace) -> None:
        self.close()

    def close(self) -> None:
        """Stop the worker process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._worker.stop()
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None
