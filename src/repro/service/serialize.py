"""The service wire format: request parsing and canonical JSON.

Responses are encoded with :func:`json_bytes` — sorted keys, no
whitespace — so a response's bytes are a pure function of its payload.
That is what makes the service's acceptance property testable: a bulk
response must be *byte-identical* to serializing the predictions of a
serial :meth:`Engine.predict_many` over the same blocks.

Prediction values carry exact :class:`fractions.Fraction` bounds; the
wire format keeps both views — ``cycles`` (the paper's 2-digit float
rounding) and ``exact`` (the fraction as a string) — so clients never
lose precision to JSON's float type.

Request-side helpers raise :class:`RequestError`, which carries the
HTTP status the server should answer with (400 for malformed bodies,
404 for unknown µarchs/predictors).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional

import json

from repro.core.components import ThroughputMode
from repro.core.counterfactual import idealized_speedup
from repro.core.model import Prediction
from repro.isa.block import BasicBlock


class RequestError(Exception):
    """A client error, answered with *status* and a JSON error body.

    *headers* (optional) are extra response headers — the 429
    load-shedding path uses this to attach ``Retry-After``.
    """

    def __init__(self, message: str, status: int = 400,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.headers = dict(headers) if headers else {}


def json_bytes(payload: Dict) -> bytes:
    """Canonical JSON encoding (sorted keys, compact, UTF-8).

    Deterministic by construction: equal payloads always serialize to
    equal bytes, regardless of how the predictions behind them were
    batched.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _fraction_str(value: Fraction) -> str:
    return (f"{value.numerator}/{value.denominator}"
            if value.denominator != 1 else str(value.numerator))


def prediction_to_dict(prediction: Prediction, block: BasicBlock,
                       uarch: str, *,
                       counterfactuals: bool = False) -> Dict:
    """The wire representation of one prediction (see docs/SERVICE.md).

    Args:
        prediction: the model output to serialize.
        block: the predicted block (for the ``block`` echo field).
        uarch: µarch abbreviation the prediction was made on.
        counterfactuals: include per-component idealization speedups
            (the Table-4 analysis) under ``counterfactual_speedups``.
    """
    payload = {
        "block": {
            "hex": block.raw.hex(),
            "instructions": len(block),
            "bytes": block.num_bytes,
        },
        "uarch": uarch,
        "mode": prediction.mode.value,
        "cycles": prediction.cycles,
        "exact": (_fraction_str(prediction.throughput)
                  if prediction.throughput is not None else None),
        "bounds": {comp.value: round(float(bound), 2)
                   for comp, bound in prediction.bounds.items()},
        "exact_bounds": {comp.value: _fraction_str(bound)
                         for comp, bound in prediction.bounds.items()},
        "bottlenecks": [comp.value for comp in prediction.bottlenecks],
        "fe_component": (prediction.fe_component.value
                         if prediction.fe_component is not None else None),
        "jcc_affected": prediction.jcc_affected,
        "lsd_applicable": prediction.lsd_applicable,
        "critical_instructions":
            list(prediction.critical_instruction_indices),
    }
    if counterfactuals:
        speedups = {}
        for comp in prediction.bounds:
            speedup = idealized_speedup(prediction, comp)
            if speedup is not None:
                speedups[comp.value] = round(speedup, 2)
        payload["counterfactual_speedups"] = speedups
    return payload


def parse_json_body(raw: bytes) -> Dict:
    """Decode a request body; must be a JSON object."""
    if not raw:
        raise RequestError("empty request body (expected a JSON object)")
    try:
        body = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RequestError(f"invalid JSON body: {exc}")
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    return body


def parse_block(obj: Dict, *, field: str = "request") -> BasicBlock:
    """Build a block from a ``{"hex": ...}`` or ``{"asm": ...}`` object."""
    if not isinstance(obj, dict):
        raise RequestError(f"{field} must be an object with "
                           "an 'hex' or 'asm' field")
    raw_hex = obj.get("hex")
    asm = obj.get("asm")
    if (raw_hex is None) == (asm is None):
        raise RequestError(
            f"{field} needs exactly one of 'hex' or 'asm'")
    try:
        if raw_hex is not None:
            if not isinstance(raw_hex, str):
                raise ValueError("'hex' must be a string")
            return BasicBlock.from_bytes(bytes.fromhex(raw_hex))
        if not isinstance(asm, str):
            raise ValueError("'asm' must be a string")
        return BasicBlock.from_asm(asm.replace("\\n", "\n"))
    except RequestError:
        raise
    except Exception as exc:
        raise RequestError(f"undecodable {field}: {exc}")


def parse_mode(body: Dict) -> ThroughputMode:
    """The throughput notion of a request (default: loop/TPL)."""
    value = body.get("mode", ThroughputMode.LOOP.value)
    try:
        return ThroughputMode(value)
    except ValueError:
        raise RequestError(
            f"unknown mode {value!r} (expected 'unrolled' or 'loop')")


def parse_blocks(body: Dict, *, max_blocks: int) -> List[BasicBlock]:
    """The block list of a bulk request (bounded, order-preserving)."""
    blocks = body.get("blocks")
    if not isinstance(blocks, list) or not blocks:
        raise RequestError("'blocks' must be a non-empty array")
    if len(blocks) > max_blocks:
        raise RequestError(
            f"bulk request too large ({len(blocks)} blocks; "
            f"the server accepts at most {max_blocks})", status=413)
    return [parse_block(obj, field=f"blocks[{index}]")
            for index, obj in enumerate(blocks)]


#: Upper bound on request deadlines: a client cannot pin a request (and
#: whatever resources wait on it) for more than this.
MAX_TIMEOUT_MS = 10 * 60 * 1000.0


def parse_timeout_ms(body: Dict) -> Optional[float]:
    """The request's ``timeout_ms`` deadline budget, if it sent one.

    ``None`` means "no deadline" (the pre-robustness behavior).  The
    service adds the budget to ``time.monotonic()`` at parse time and
    propagates the resulting deadline into the micro-batcher, which
    sheds the request (HTTP 504) if it is still queued when the
    deadline passes.
    """
    value = body.get("timeout_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError("'timeout_ms' must be a number")
    if value <= 0:
        raise RequestError("'timeout_ms' must be > 0")
    return float(min(value, MAX_TIMEOUT_MS))


def parse_counterfactuals(body: Dict) -> bool:
    value = body.get("counterfactuals", False)
    if not isinstance(value, bool):
        raise RequestError("'counterfactuals' must be a boolean")
    return value


def parse_uarch(body: Dict, default: str,
                known: Optional[List[str]] = None) -> str:
    """The µarch of a request (404 on unknown names)."""
    value = body.get("uarch", default)
    if not isinstance(value, str):
        raise RequestError("'uarch' must be a string")
    if known is not None and value not in known:
        raise RequestError(
            f"unknown uarch {value!r} (available: {', '.join(known)})",
            status=404)
    return value


# -- the versioned (v1) response envelope ------------------------------

#: The API version served under the ``/v1/`` route namespace.
API_VERSION = "v1"

#: The structured error-code vocabulary of the v1 API: HTTP status →
#: machine-readable ``error.code``.  ``scripts/check_docs.py`` checks
#: this table against the error-code reference in ``docs/SERVICE.md``
#: in both directions.
ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    413: "too_large",
    429: "overloaded",
    500: "internal",
    504: "deadline_exceeded",
}


def meta_dict(*, uarch: Optional[str] = None, mode: Optional[str] = None,
              cache: object = None,
              timing_ms: Optional[float] = None,
              trace: Optional[str] = None) -> Dict:
    """The v1 ``meta`` object; every key always present (null if N/A)."""
    return {
        "api_version": API_VERSION,
        "uarch": uarch,
        "mode": mode,
        "cache": cache,
        "timing_ms": timing_ms,
        "trace": trace,
    }


def envelope_bytes(result_bytes: bytes, meta: Dict) -> bytes:
    """A v1 success envelope assembled at the byte level.

    The envelope's keys sort as ``error`` < ``meta`` < ``result``, so
    splicing pre-serialized *result_bytes* into a literal skeleton
    yields exactly the bytes :func:`json_bytes` would produce for the
    full dict — tested in ``tests/service/test_v1_api.py`` — while
    letting the server reuse cached prediction fragments without ever
    re-parsing them.
    """
    return (b'{"error":null,"meta":' + json_bytes(meta)
            + b',"result":' + result_bytes + b"}")


def error_envelope_bytes(status: int, message: str, *,
                         retry_after_ms: Optional[float] = None,
                         trace: Optional[str] = None) -> bytes:
    """The v1 structured error body for *status*.

    Unknown statuses fall back to the ``internal`` code rather than
    leaking a numeric status into the code vocabulary.
    """
    error: Dict = {
        "code": ERROR_CODES.get(status, ERROR_CODES[500]),
        "message": message,
    }
    if retry_after_ms is not None:
        error["retry_after_ms"] = round(retry_after_ms, 3)
    return json_bytes({"error": error, "meta": meta_dict(trace=trace),
                       "result": None})
