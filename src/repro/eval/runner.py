"""Measurement/prediction collection shared by all tables and figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.eval.metrics import kendall_tau, mape
from repro.isa.block import BasicBlock
from repro.sim.measure import measure
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@dataclass
class EvaluationResult:
    """Accuracy of one predictor on one (µarch, mode) combination."""

    predictor: str
    uarch: str
    mode: ThroughputMode
    measured: List[float]
    predicted: List[float]

    @property
    def mape(self) -> float:
        return mape(self.measured, self.predicted)

    @property
    def kendall(self) -> float:
        return kendall_tau(self.measured, self.predicted)


def measured_suite(suite: BenchmarkSuite, cfg: MicroArchConfig,
                   mode: ThroughputMode,
                   db: Optional[UopsDatabase] = None,
                   n_workers: Optional[int] = None) -> List[float]:
    """Oracle measurements for the whole suite (cached per block).

    When a worker count is given — or a process-wide engine default is
    configured — the cycle-level simulations fan out over a pool, which
    is where most of a full-suite evaluation's wall-clock goes.
    """
    from repro.engine.engine import default_workers, measure_many
    from repro.uarch import uarch_by_name

    loop = mode is ThroughputMode.LOOP
    workers = n_workers if n_workers is not None else default_workers()
    if workers is not None and len(suite) > 1:
        try:
            registered = uarch_by_name(cfg.abbrev) == cfg
        except KeyError:
            registered = False
        if registered:
            return measure_many(cfg, [b.block(loop) for b in suite],
                                mode, n_workers=workers)
        # Custom configs cannot be rebuilt by name inside workers:
        # measure serially rather than fail.
    db = db or UopsDatabase(cfg)
    return [measure(b.block(loop), cfg, mode, db) for b in suite]


def evaluate_predictor(predictor, suite: BenchmarkSuite,
                       mode: ThroughputMode,
                       measured: Optional[List[float]] = None,
                       ) -> EvaluationResult:
    """Run one predictor over the suite and pair it with measurements.

    The suite is predicted as one batch via ``predictor.predict_many``,
    which lets engine-backed predictors share analyses and fan out over
    worker processes; plain predictors fall back to a serial loop.
    """
    cfg = predictor.cfg
    loop = mode is ThroughputMode.LOOP
    if measured is None:
        measured = measured_suite(suite, cfg, mode, predictor.db)
    predictor.prepare()
    predicted = predictor.predict_many([b.block(loop) for b in suite],
                                       mode)
    return EvaluationResult(predictor.name, cfg.abbrev, mode,
                            measured, predicted)


def evaluate_callable(name: str, fn: Callable[[BasicBlock], float],
                      suite: BenchmarkSuite, cfg: MicroArchConfig,
                      mode: ThroughputMode,
                      measured: Optional[List[float]] = None,
                      db: Optional[UopsDatabase] = None,
                      ) -> EvaluationResult:
    """Evaluate a bare prediction function (used for model variants)."""
    loop = mode is ThroughputMode.LOOP
    if measured is None:
        measured = measured_suite(suite, cfg, mode, db)
    predicted = [fn(b.block(loop)) for b in suite]
    return EvaluationResult(name, cfg.abbrev, mode, measured, predicted)
