"""Evaluation harness: metrics, table and figure regeneration (paper §6)."""

from repro.eval.metrics import kendall_tau, mape
from repro.eval.runner import EvaluationResult, evaluate_predictor
from repro.eval import tables
from repro.eval import figures

__all__ = [
    "EvaluationResult",
    "evaluate_predictor",
    "figures",
    "kendall_tau",
    "mape",
    "tables",
]
