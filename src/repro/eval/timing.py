"""Wall-clock timing of predictors and of Facile's components (§6.3).

The original experiments measure tool runtime on the BHive benchmarks;
here we time the analogs the same way: per-benchmark prediction time,
with Facile's per-component cost obtained by running single-component
variants and deducting the shared overhead (input parsing and
disassembly), exactly as the paper describes.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import (
    Component,
    LOOP_COMPONENTS,
    ThroughputMode,
    UNROLLED_COMPONENTS,
)
from repro.core.model import Facile
from repro.engine.cache import AnalysisCache
from repro.engine.engine import Engine
from repro.isa.block import BasicBlock
from repro.obs import metrics as obs_metrics
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@dataclass
class TimingResult:
    """Per-benchmark execution times (milliseconds)."""

    name: str
    samples_ms: List[float]

    @property
    def mean_ms(self) -> float:
        return sum(self.samples_ms) / len(self.samples_ms)

    @property
    def median_ms(self) -> float:
        ordered = sorted(self.samples_ms)
        return ordered[len(ordered) // 2]


def time_predictor(predictor, suite: BenchmarkSuite,
                   mode: ThroughputMode) -> TimingResult:
    """Time one predictor over the suite (prediction only, no training).

    Block-level caches (shared analyses, the global Ports memo) are
    dropped first: tools share databases during evaluation, and timing a
    tool against caches warmed by a previously timed tool would
    understate its per-call cost (Figure 5 compares tools' runtimes).
    The per-instruction characterization cache stays warm, as in the
    seed setup.
    """
    from repro.core.ports import clear_ports_memo

    predictor.prepare()
    for db in predictor.databases():
        AnalysisCache.shared(db).clear()
    loop = mode is ThroughputMode.LOOP
    samples = []
    for bench in suite:
        raw = bench.block(loop).raw
        # Per sample, as in time_facile_components: repeated port
        # multisets across blocks must not be served from the memo.
        clear_ports_memo()
        start = time.perf_counter()
        # Like the real tools, the input is a binary: decoding is part of
        # the measured work.
        block = BasicBlock.from_bytes(raw)
        predictor.predict(block, mode)
        samples.append(1000.0 * (time.perf_counter() - start))
    return TimingResult(predictor.name, samples)


def time_facile_components(cfg: MicroArchConfig, suite: BenchmarkSuite,
                           mode: ThroughputMode,
                           db: Optional[UopsDatabase] = None,
                           ) -> Dict[str, TimingResult]:
    """Figure 4 data: overhead, per-component, and total Facile times.

    The overhead (disassembly, block analysis, combination) is measured
    with all components deactivated; each component's cost is the
    single-component run minus that overhead.

    Every variant runs with its own fresh analysis cache: sharing the
    engine's cache across variants would make every run after the first
    measure a cache lookup instead of the component's cost.
    """
    db = db or UopsDatabase(cfg)
    loop = mode is ThroughputMode.LOOP
    relevant = (LOOP_COMPONENTS if loop else UNROLLED_COMPONENTS)

    def run(model: Facile) -> List[float]:
        # The global Ports memo would otherwise turn repeated multisets
        # (across variants *and* across blocks within this run) into
        # lookups — drop it before every sample so each prediction pays
        # the full per-call price the seed code measured.
        from repro.core.ports import clear_ports_memo
        samples = []
        for bench in suite:
            raw = bench.block(loop).raw
            clear_ports_memo()
            start = time.perf_counter()
            block = BasicBlock.from_bytes(raw)
            model.predict(block, mode)
            samples.append(1000.0 * (time.perf_counter() - start))
        return samples

    def fresh(**kwargs) -> Facile:
        return Facile(cfg, db=db, cache=AnalysisCache(db), **kwargs)

    results: Dict[str, TimingResult] = {}
    results["FACILE"] = TimingResult("FACILE", run(fresh()))
    overhead = run(fresh(components=()))
    results["Overhead"] = TimingResult("Overhead", overhead)
    for comp in relevant:
        samples = run(fresh(components={comp}))
        deducted = [max(0.0, s - o) for s, o in zip(samples, overhead)]
        results[comp.value] = TimingResult(comp.value, deducted)
    return results


# ---------------------------------------------------------------------------
# Engine path timing (the perf-regression harness's measurement kernel)
# ---------------------------------------------------------------------------

@dataclass
class PathTiming:
    """Wall-clock of one prediction path over a suite.

    Attributes:
        path: ``"single"``, ``"single_object"``, ``"cached"``,
            ``"parallel"``, or ``"service"``.
        n_blocks: number of blocks predicted in the timed pass.
        seconds: wall-clock of the timed pass.
        peak_rss_kb: the process's peak resident set (kilobytes) when
            the path finished — a high-water mark, so paths measured
            later can only report equal-or-larger values.
        metrics: the registry counters this path moved
            (``name{labels}`` -> delta), for the bench record only —
            the regression gate never reads it.
    """

    path: str
    n_blocks: int
    seconds: float
    peak_rss_kb: Optional[int] = None
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def blocks_per_sec(self) -> float:
        if self.seconds <= 0.0:
            return float("inf")
        return self.n_blocks / self.seconds


def peak_rss_kb() -> Optional[int]:
    """The process's peak RSS in kilobytes (None where unsupported)."""
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return None


def _counters_delta(before: Dict[str, float],
                    after: Dict[str, float]) -> Dict[str, float]:
    """The non-zero counter movement between two flat snapshots."""
    return {key: round(value - before.get(key, 0.0), 6)
            for key, value in sorted(after.items())
            if value != before.get(key, 0.0)}


#: Never-seen passes of the payload-variant stream timed by the
#: ``single`` / ``single_object`` paths.
VARIANT_PASSES = 4
#: RNG seed of the variant stream (fixed: the stream must be identical
#: across runs and across the two paths that time it).
VARIANT_SEED = 2029


def _payload_variant(raw: bytes, rng: random.Random) -> bytes:
    """One imm-randomized copy of *raw* (same signature, unseen bytes).

    Immediate payload bytes are randomized (all but the top byte, so
    signs and relative-branch targets stay sane); the instruction forms
    — and hence the columnar signature — are untouched.  Falls back to
    *raw* itself in the rare case the mutation does not decode.
    """
    block = BasicBlock.from_bytes(raw)
    out = bytearray()
    mutated = False
    for instr in block:
        encoded = bytearray(instr.raw)
        enc = instr.template.encoding
        imm_len = enc.imm_width // 8 if enc.imm_width else 0
        if imm_len and enc.fixed_bytes is None:
            for i in range(len(encoded) - imm_len, len(encoded) - 1):
                encoded[i] = rng.randrange(256)
            mutated = True
        out += encoded
    if not mutated:
        return raw
    variant = bytes(out)
    try:
        BasicBlock.from_bytes(variant)
    except Exception:
        return raw
    return variant


def payload_variant_stream(raws: Sequence[bytes],
                           passes: int = VARIANT_PASSES,
                           seed: int = VARIANT_SEED) -> List[bytes]:
    """*passes* never-seen imm-randomized copies of a suite's blocks.

    This is the cold-call workload of the ``single`` paths: block bytes
    the process has never predicted, drawn from the instruction mix of
    the suite.  The same fixed-seed stream feeds both the columnar and
    the seed-equivalent measurement so they are strictly comparable.
    """
    rng = random.Random(seed)
    return [_payload_variant(raw, rng)
            for _ in range(passes) for raw in raws]


def time_prediction_paths(cfg: MicroArchConfig, suite: BenchmarkSuite,
                          mode: ThroughputMode, *,
                          workers: int = 2,
                          include_parallel: bool = True,
                          progress: Optional[Callable[[str], None]] = None,
                          ) -> Dict[str, PathTiming]:
    """Blocks/sec of the engine paths on one (µarch, mode).

    * ``single`` — the engine's default cold-call path: the columnar
      core (:mod:`repro.engine.columnar`), warmed once over the suite,
      then timed per-call on a stream of *never-seen* payload variants
      (same instruction forms, fresh displacement/immediate bytes).
      Unseen blocks resolving to warm template-level sub-results is
      precisely the columnar core's claim, so that is what the number
      measures.
    * ``single_object`` — the seed-equivalent reference on the *same*
      variant stream: each block is decoded from bytes and predicted
      with a cold analysis cache and a cold Ports memo, i.e. every call
      re-derives the full analysis (what every ``predict()`` cost
      before the engine existed).  ``single`` / ``single_object`` is
      the columnar speedup the perf gate enforces.
    * ``cached`` — the object model's serial batch path in its steady
      state: the suite was evaluated once to warm the shared cache, and
      the timed pass measures repeated evaluation (the ablation /
      counterfactual / multi-variant regime).
    * ``parallel`` — the engine's pool path, cold: compact payloads are
      shipped to *workers* processes which decode, analyze, and predict,
      results merged by index.  Includes pool start-up, so it reflects
      what a fresh parallel suite evaluation costs end to end.
    """
    from repro.core.ports import clear_ports_memo
    from repro.engine.columnar import ColumnarCore

    loop = mode is ThroughputMode.LOOP
    raws = [bench.block(loop).raw for bench in suite]
    results: Dict[str, PathTiming] = {}

    def record(timing: PathTiming,
               counters_before: Dict[str, float]) -> None:
        """Attach the observability record and report progress.

        Runs strictly *after* the timed region — the RSS probe and the
        registry snapshot never sit inside a measurement.
        """
        timing.peak_rss_kb = peak_rss_kb()
        timing.metrics = _counters_delta(
            counters_before, obs_metrics.REGISTRY.counters_flat())
        results[timing.path] = timing
        if progress is not None:
            progress(timing.path)

    # The cold-call workload: never-seen payload variants (built and
    # decode-validated outside every timed region).
    variants = payload_variant_stream(raws)

    # -- single (columnar core, per-call, unseen bytes) -----------------
    clear_ports_memo()  # shared with the object paths: start cold
    core = ColumnarCore(cfg)
    core.predict_raw_many(raws, mode)  # warm-up: compile the suite once
    counters = obs_metrics.REGISTRY.counters_flat()
    start = time.perf_counter()
    for raw in variants:
        core.predict_raw(raw, mode)
    record(PathTiming("single", len(variants),
                      time.perf_counter() - start), counters)

    # -- single_object (seed-style cold predictions, same stream) -------
    db = UopsDatabase(cfg)
    cache = AnalysisCache(db)
    model = Facile(cfg, db=db, cache=cache)
    counters = obs_metrics.REGISTRY.counters_flat()
    start = time.perf_counter()
    for raw in variants:
        # The seed path had no memoization at all: drop both the block
        # cache and the global Ports memo before every call.
        cache.clear()
        clear_ports_memo()
        model.predict(BasicBlock.from_bytes(raw), mode)
    record(PathTiming("single_object", len(variants),
                      time.perf_counter() - start), counters)

    # -- cached batch path (warm shared cache, serial by construction:
    # going through Engine here would inherit the process-wide worker
    # default and silently measure the pool instead) -------------------
    blocks = [BasicBlock.from_bytes(raw) for raw in raws]
    warm_db = UopsDatabase(cfg)
    warm_model = Facile(cfg, db=warm_db, cache=AnalysisCache(warm_db))
    warm_model.predict_many(blocks, mode)  # warm-up pass fills the cache
    counters = obs_metrics.REGISTRY.counters_flat()
    start = time.perf_counter()
    warm_model.predict_many(blocks, mode)
    record(PathTiming("cached", len(blocks),
                      time.perf_counter() - start), counters)

    # -- parallel batch path (cold pool) -------------------------------
    if include_parallel:
        # Workers are forked from this process: drop the warm Ports memo
        # so they start as cold as a fresh parallel evaluation would.
        clear_ports_memo()
        with Engine(cfg, db=UopsDatabase(cfg),
                    n_workers=workers) as parallel_engine:
            counters = obs_metrics.REGISTRY.counters_flat()
            start = time.perf_counter()
            parallel_engine.predict_many(blocks, mode)
            record(PathTiming("parallel", len(blocks),
                              time.perf_counter() - start), counters)
    return results
