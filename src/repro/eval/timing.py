"""Wall-clock timing of predictors and of Facile's components (§6.3).

The original experiments measure tool runtime on the BHive benchmarks;
here we time the analogs the same way: per-benchmark prediction time,
with Facile's per-component cost obtained by running single-component
variants and deducting the shared overhead (input parsing and
disassembly), exactly as the paper describes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import (
    Component,
    LOOP_COMPONENTS,
    ThroughputMode,
    UNROLLED_COMPONENTS,
)
from repro.core.model import Facile
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@dataclass
class TimingResult:
    """Per-benchmark execution times (milliseconds)."""

    name: str
    samples_ms: List[float]

    @property
    def mean_ms(self) -> float:
        return sum(self.samples_ms) / len(self.samples_ms)

    @property
    def median_ms(self) -> float:
        ordered = sorted(self.samples_ms)
        return ordered[len(ordered) // 2]


def time_predictor(predictor, suite: BenchmarkSuite,
                   mode: ThroughputMode) -> TimingResult:
    """Time one predictor over the suite (prediction only, no training)."""
    predictor.prepare()
    loop = mode is ThroughputMode.LOOP
    samples = []
    for bench in suite:
        raw = bench.block(loop).raw
        start = time.perf_counter()
        # Like the real tools, the input is a binary: decoding is part of
        # the measured work.
        block = BasicBlock.from_bytes(raw)
        predictor.predict(block, mode)
        samples.append(1000.0 * (time.perf_counter() - start))
    return TimingResult(predictor.name, samples)


def time_facile_components(cfg: MicroArchConfig, suite: BenchmarkSuite,
                           mode: ThroughputMode,
                           db: Optional[UopsDatabase] = None,
                           ) -> Dict[str, TimingResult]:
    """Figure 4 data: overhead, per-component, and total Facile times.

    The overhead (disassembly, block analysis, combination) is measured
    with all components deactivated; each component's cost is the
    single-component run minus that overhead.
    """
    db = db or UopsDatabase(cfg)
    loop = mode is ThroughputMode.LOOP
    relevant = (LOOP_COMPONENTS if loop else UNROLLED_COMPONENTS)

    def run(model: Facile) -> List[float]:
        samples = []
        for bench in suite:
            raw = bench.block(loop).raw
            start = time.perf_counter()
            block = BasicBlock.from_bytes(raw)
            model.predict(block, mode)
            samples.append(1000.0 * (time.perf_counter() - start))
        return samples

    results: Dict[str, TimingResult] = {}
    results["FACILE"] = TimingResult("FACILE", run(Facile(cfg, db=db)))
    overhead = run(Facile(cfg, db=db, components=()))
    results["Overhead"] = TimingResult("Overhead", overhead)
    for comp in relevant:
        samples = run(Facile(cfg, db=db, components={comp}))
        deducted = [max(0.0, s - o) for s, o in zip(samples, overhead)]
        results[comp.value] = TimingResult(comp.value, deducted)
    return results
