"""Regeneration of the paper's tables.

Every function returns structured data plus a ``render_*`` helper that
prints rows in the paper's layout, so benches can both assert on the
numbers and emit human-readable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import all_predictors
from repro.bhive.suite import BenchmarkSuite
from repro.core.components import Component, ThroughputMode
from repro.core.counterfactual import speedup_table
from repro.core.model import Facile
from repro.eval.metrics import kendall_tau, mape
from repro.eval.runner import (
    EvaluationResult,
    evaluate_callable,
    evaluate_predictor,
    measured_suite,
)
from repro.uarch import ALL_UARCHS, UARCH_ORDER, uarch_by_name
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

_MODES = (ThroughputMode.UNROLLED, ThroughputMode.LOOP)


# ---------------------------------------------------------------------------
# Table 1: microarchitectures
# ---------------------------------------------------------------------------

def table1() -> List[Dict[str, object]]:
    """The evaluated microarchitectures (paper Table 1)."""
    return [
        {"uarch": u.name, "abbr": u.abbrev, "released": u.released,
         "cpu": u.cpu}
        for u in ALL_UARCHS
    ]


def render_table1() -> str:
    lines = [f"{'µArch':<14} {'Abbr.':<6} {'Released':<9} CPU"]
    for row in table1():
        lines.append(f"{row['uarch']:<14} {row['abbr']:<6} "
                     f"{row['released']:<9} {row['cpu']}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2: predictor comparison
# ---------------------------------------------------------------------------

@dataclass
class Table2Row:
    uarch: str
    predictor: str
    mape_u: float
    kendall_u: float
    mape_l: float
    kendall_l: float


def table2(suite: BenchmarkSuite,
           uarchs: Optional[Sequence[MicroArchConfig]] = None,
           predictor_names: Optional[List[str]] = None) -> List[Table2Row]:
    """MAPE and Kendall's tau of every predictor on BHiveU and BHiveL."""
    uarchs = list(uarchs) if uarchs is not None else list(ALL_UARCHS)
    rows: List[Table2Row] = []
    for cfg in uarchs:
        db = UopsDatabase(cfg)
        measured = {mode: measured_suite(suite, cfg, mode, db)
                    for mode in _MODES}
        for predictor in all_predictors(cfg, db, predictor_names):
            results = {
                mode: evaluate_predictor(predictor, suite, mode,
                                         measured[mode])
                for mode in _MODES
            }
            rows.append(Table2Row(
                uarch=cfg.abbrev,
                predictor=predictor.name,
                mape_u=results[ThroughputMode.UNROLLED].mape,
                kendall_u=results[ThroughputMode.UNROLLED].kendall,
                mape_l=results[ThroughputMode.LOOP].mape,
                kendall_l=results[ThroughputMode.LOOP].kendall,
            ))
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    lines = [f"{'µArch':<6} {'Predictor':<13} "
             f"{'U-MAPE':>8} {'U-Kendall':>10} "
             f"{'L-MAPE':>8} {'L-Kendall':>10}"]
    last_uarch = None
    for row in rows:
        label = row.uarch if row.uarch != last_uarch else ""
        last_uarch = row.uarch
        lines.append(
            f"{label:<6} {row.predictor:<13} "
            f"{100 * row.mape_u:7.2f}% {row.kendall_u:10.4f} "
            f"{100 * row.mape_l:7.2f}% {row.kendall_l:10.4f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3: component ablations
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    uarch: str
    variant: str
    mape_u: Optional[float]
    kendall_u: Optional[float]
    mape_l: Optional[float]
    kendall_l: Optional[float]


def _variant_models(cfg: MicroArchConfig, db: UopsDatabase):
    """(name, Facile instance or ("only", components)) in paper order."""
    composite_only = {
        "only Predec+Ports": (Component.PREDEC, Component.PORTS),
        "only Precedence+Ports": (Component.PRECEDENCE, Component.PORTS),
    }
    variants: List[Tuple[str, object]] = [
        ("Facile", Facile(cfg, db=db)),
        ("Facile w/ SimplePredec", Facile(cfg, db=db, simple_predec=True)),
        ("Facile w/ SimpleDec", Facile(cfg, db=db, simple_dec=True)),
    ]
    for comp in Component:
        variants.append((f"only {comp.value}",
                         Facile(cfg, db=db, components={comp})))
    for name, comps in composite_only.items():
        variants.append((name, Facile(cfg, db=db, components=set(comps))))
    for comp in Component:
        variants.append((f"Facile w/o {comp.value}",
                         Facile(cfg, db=db, exclude={comp})))
    return variants


def table3(suite: BenchmarkSuite,
           uarch_names: Sequence[str] = ("RKL", "SKL", "SNB"),
           ) -> List[Table3Row]:
    """Influence of components on accuracy (paper Table 3).

    Cells that are not meaningful (e.g. "only DSB" under TPU, where the
    DSB plays no role) are None, matching the paper's empty cells.
    """
    rows: List[Table3Row] = []
    blocks = {mode: [bench.block(mode is ThroughputMode.LOOP)
                     for bench in suite] for mode in _MODES}
    for abbr in uarch_names:
        cfg = uarch_by_name(abbr)
        db = UopsDatabase(cfg)
        measured = {mode: measured_suite(suite, cfg, mode, db)
                    for mode in _MODES}
        # All variants share *db* and therefore one analysis cache: each
        # block is analyzed once for the whole seventeen-variant sweep.
        for name, model in _variant_models(cfg, db):
            cells: Dict[ThroughputMode, Tuple[Optional[float],
                                              Optional[float]]] = {}
            for mode in _MODES:
                # Variants that cannot bound a block predict 0 cycles,
                # like a crashed/timed-out tool in the paper's protocol
                # (this is what produces the "only DSB" 100%-MAPE row).
                predictions = [
                    p.cycles
                    for p in model.predict_many(blocks[mode], mode)
                ]
                cells[mode] = (mape(measured[mode], predictions),
                               kendall_tau(measured[mode], predictions))
            rows.append(Table3Row(
                uarch=abbr, variant=name,
                mape_u=cells[ThroughputMode.UNROLLED][0],
                kendall_u=cells[ThroughputMode.UNROLLED][1],
                mape_l=cells[ThroughputMode.LOOP][0],
                kendall_l=cells[ThroughputMode.LOOP][1],
            ))
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    def fmt(value: Optional[float], pct: bool) -> str:
        if value is None:
            return "      —"
        return f"{100 * value:6.2f}%" if pct else f"{value:7.4f}"

    lines = [f"{'µArch':<6} {'Variant':<26} "
             f"{'U-MAPE':>8} {'U-Kendall':>9} {'L-MAPE':>8} {'L-Kendall':>9}"]
    last = None
    for row in rows:
        label = row.uarch if row.uarch != last else ""
        last = row.uarch
        lines.append(f"{label:<6} {row.variant:<26} "
                     f"{fmt(row.mape_u, True):>8} {fmt(row.kendall_u, False):>9} "
                     f"{fmt(row.mape_l, True):>8} {fmt(row.kendall_l, False):>9}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 4: counterfactual speedups
# ---------------------------------------------------------------------------

_TABLE4_COMPONENTS = (Component.PREDEC, Component.DEC, Component.ISSUE,
                      Component.PORTS, Component.PRECEDENCE)


def table4(suite: BenchmarkSuite) -> Dict[str, Dict[str, float]]:
    """Speedup when idealizing a single component, TPU (paper Table 4)."""
    blocks = suite.blocks(loop=False)
    result: Dict[str, Dict[str, float]] = {}
    for cfg in UARCH_ORDER:
        speedups = speedup_table(cfg, blocks, _TABLE4_COMPONENTS)
        result[cfg.abbrev] = {c.value: round(v, 2)
                              for c, v in speedups.items()}
    return result


def render_table4(data: Dict[str, Dict[str, float]]) -> str:
    components = [c.value for c in _TABLE4_COMPONENTS]
    header = f"{'µArch':<6}" + "".join(f"{c:>12}" for c in components)
    lines = [header]
    for uarch, row in data.items():
        lines.append(f"{uarch:<6}"
                     + "".join(f"{row[c]:>12.2f}" for c in components))
    return "\n".join(lines)
