"""Accuracy metrics: MAPE and Kendall's tau (paper §6.2)."""

from __future__ import annotations

from typing import Sequence, Tuple


def mape(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute percentage error relative to measurements.

    Pairs with a zero measurement are skipped (cannot be normalized);
    the paper's measurements are strictly positive.
    """
    if len(measured) != len(predicted):
        raise ValueError("length mismatch")
    total = 0.0
    count = 0
    for m, p in zip(measured, predicted):
        if m == 0:
            continue
        total += abs(m - p) / m
        count += 1
    if count == 0:
        raise ValueError("no valid pairs")
    return total / count


def kendall_tau(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Kendall's tau-b rank correlation (tie-corrected).

    The O(n²) pair enumeration is exact and fast enough for suite sizes
    in the thousands; tests cross-check against scipy's implementation.
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError("length mismatch")
    if n < 2:
        raise ValueError("need at least two samples")
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        xi, yi = xs[i], ys[i]
        for j in range(i + 1, n):
            dx = xi - xs[j]
            dy = yi - ys[j]
            if dx == 0 and dy == 0:
                ties_x += 1
                ties_y += 1
            elif dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    n0 = n * (n - 1) // 2
    denom = ((n0 - ties_x) * (n0 - ties_y)) ** 0.5
    if denom == 0:
        return 0.0
    return (concordant - discordant) / denom
