"""Accuracy metrics: MAPE and Kendall's tau (paper §6.2), plus the
per-block comparison primitives the deviation-discovery subsystem
(:mod:`repro.discovery`) scores candidates with."""

from __future__ import annotations

from typing import Sequence, Tuple


def relative_error(measured: float, predicted: float) -> float:
    """``|predicted - measured| / measured`` for one block.

    The per-pair term of :func:`mape`, exposed for the discovery layer
    (deviation of one predictor from the oracle on one block).  A zero
    measurement cannot be normalized: the error is 0 when the prediction
    agrees exactly and ``inf`` otherwise (an always-interesting pair).
    """
    if measured == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - measured) / abs(measured)


def relative_disagreement(a: float, b: float) -> float:
    """Symmetric relative difference of two predictions of one block.

    ``|a - b|`` normalized by the pair mean (AnICA's interestingness
    term), so it is symmetric, bounded by 2, and needs no choice of
    reference tool.  Both values zero means perfect agreement (0.0).
    """
    denom = (abs(a) + abs(b)) / 2.0
    if denom == 0:
        return 0.0
    return abs(a - b) / denom


def mape(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute percentage error relative to measurements.

    Pairs with a zero measurement are skipped (cannot be normalized);
    the paper's measurements are strictly positive.
    """
    if len(measured) != len(predicted):
        raise ValueError("length mismatch")
    total = 0.0
    count = 0
    for m, p in zip(measured, predicted):
        if m == 0:
            continue
        total += abs(m - p) / m
        count += 1
    if count == 0:
        raise ValueError("no valid pairs")
    return total / count


def kendall_tau(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Kendall's tau-b rank correlation (tie-corrected).

    The O(n²) pair enumeration is exact and fast enough for suite sizes
    in the thousands; tests cross-check against scipy's implementation.
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError("length mismatch")
    if n < 2:
        raise ValueError("need at least two samples")
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        xi, yi = xs[i], ys[i]
        for j in range(i + 1, n):
            dx = xi - xs[j]
            dy = yi - ys[j]
            if dx == 0 and dy == 0:
                ties_x += 1
                ties_y += 1
            elif dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    n0 = n * (n - 1) // 2
    denom = ((n0 - ties_x) * (n0 - ties_y)) ** 0.5
    if denom == 0:
        return 0.0
    return (concordant - discordant) / denom
