"""Regeneration of the paper's figures as machine-readable data.

No plotting backend is available offline, so each figure is emitted as
the numeric content a plot would render: 2-D histogram counts (Fig. 3),
timing quantiles (Figs. 4 and 5), and bottleneck transition matrices
(Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import all_predictors
from repro.bhive.suite import BenchmarkSuite
from repro.core.components import Component, ThroughputMode
from repro.core.model import Facile
from repro.eval.runner import evaluate_predictor, measured_suite
from repro.eval.timing import (
    TimingResult,
    time_facile_components,
    time_predictor,
)
from repro.uarch import uarch_by_name
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


# ---------------------------------------------------------------------------
# Figure 3: measured-vs-predicted heatmaps
# ---------------------------------------------------------------------------

@dataclass
class Heatmap:
    """2-D histogram of (measured, predicted) pairs.

    Attributes:
        predictor: tool name.
        bins: bin edges (shared by both axes).
        counts: counts[i][j] pairs with measured in bin i, predicted in
            bin j; out-of-range pairs are clamped to the last bin.
    """

    predictor: str
    bins: List[float]
    counts: List[List[int]]

    @property
    def diagonal_fraction(self) -> float:
        """Fraction of pairs on the diagonal (equal bins)."""
        total = sum(sum(row) for row in self.counts)
        diag = sum(self.counts[i][i] for i in range(len(self.counts)))
        return diag / total if total else 0.0


_FIG3_PREDICTORS = ("Facile", "uiCA", "llvm-mca-15", "CQA")


def figure3_heatmaps(suite: BenchmarkSuite, uarch: str = "RKL",
                     max_cycles: float = 10.0, bin_width: float = 0.5,
                     predictors: Sequence[str] = _FIG3_PREDICTORS,
                     ) -> List[Heatmap]:
    """Heatmaps for BHiveL blocks with measured throughput < max_cycles."""
    cfg = uarch_by_name(uarch)
    db = UopsDatabase(cfg)
    mode = ThroughputMode.LOOP
    measured = measured_suite(suite, cfg, mode, db)
    keep = [i for i, m in enumerate(measured) if 0 < m < max_cycles]

    n_bins = int(max_cycles / bin_width)
    edges = [i * bin_width for i in range(n_bins + 1)]

    def bin_index(value: float) -> int:
        return min(n_bins - 1, max(0, int(value / bin_width)))

    heatmaps = []
    for predictor in all_predictors(cfg, db, list(predictors)):
        result = evaluate_predictor(predictor, suite, mode, measured)
        counts = [[0] * n_bins for _ in range(n_bins)]
        for i in keep:
            counts[bin_index(result.measured[i])][
                bin_index(result.predicted[i])] += 1
        heatmaps.append(Heatmap(predictor.name, edges, counts))
    return heatmaps


def optimism_fraction(suite: BenchmarkSuite, uarch: str = "RKL",
                      mode: ThroughputMode = ThroughputMode.LOOP) -> float:
    """Fraction of blocks where Facile predicts at most the measurement
    (the paper's observation that Facile is always optimistic)."""
    cfg = uarch_by_name(uarch)
    db = UopsDatabase(cfg)
    measured = measured_suite(suite, cfg, mode, db)
    model = Facile(cfg, db=db)
    loop = mode is ThroughputMode.LOOP
    predictions = model.predict_many(
        [bench.block(loop) for bench in suite], mode)
    return sum(
        1 for prediction, m in zip(predictions, measured)
        if prediction.cycles <= m + 1e-9
    ) / len(suite)


# ---------------------------------------------------------------------------
# Figure 4: Facile component-time distributions
# ---------------------------------------------------------------------------

def figure4_component_times(suite: BenchmarkSuite, uarch: str = "SKL",
                            ) -> Dict[str, Dict[str, TimingResult]]:
    """Per-component execution-time distributions under TPU and TPL."""
    cfg = uarch_by_name(uarch)
    db = UopsDatabase(cfg)
    return {
        "TPU": time_facile_components(cfg, suite,
                                      ThroughputMode.UNROLLED, db),
        "TPL": time_facile_components(cfg, suite, ThroughputMode.LOOP, db),
    }


# ---------------------------------------------------------------------------
# Figure 5: tool efficiency
# ---------------------------------------------------------------------------

def figure5_tool_times(suite: BenchmarkSuite, uarch: str = "SKL",
                       predictor_names: Optional[List[str]] = None,
                       ) -> Dict[str, Dict[str, float]]:
    """Mean per-benchmark prediction time (ms) per tool, TPU and TPL."""
    cfg = uarch_by_name(uarch)
    db = UopsDatabase(cfg)
    result: Dict[str, Dict[str, float]] = {}
    for predictor in all_predictors(cfg, db, predictor_names):
        result[predictor.name] = {
            "TPU": time_predictor(predictor, suite,
                                  ThroughputMode.UNROLLED).mean_ms,
            "TPL": time_predictor(predictor, suite,
                                  ThroughputMode.LOOP).mean_ms,
        }
    return result


# ---------------------------------------------------------------------------
# Figure 6: bottleneck evolution
# ---------------------------------------------------------------------------

#: Bottleneck priority for reporting (front end first), paper §6.4.
_PRIORITY = (Component.PREDEC, Component.DEC, Component.ISSUE,
             Component.PORTS, Component.PRECEDENCE)


def primary_bottleneck(prediction) -> Component:
    """The bottleneck closest to the front end among the argmax set."""
    for comp in _PRIORITY:
        if comp in prediction.bottlenecks:
            return comp
    return prediction.bottlenecks[0]


def bottleneck_shares(suite: BenchmarkSuite,
                      cfg: MicroArchConfig) -> Dict[str, int]:
    """TPU bottleneck counts per component."""
    model = Facile(cfg)
    counts = {comp.value: 0 for comp in _PRIORITY}
    predictions = model.predict_many([bench.block_u for bench in suite],
                                     ThroughputMode.UNROLLED)
    for prediction in predictions:
        counts[primary_bottleneck(prediction).value] += 1
    return counts


def figure6_bottleneck_evolution(
        suite: BenchmarkSuite,
        uarch_names: Sequence[str] = ("SNB", "HSW", "CLX", "RKL"),
) -> List[Dict[str, object]]:
    """Sankey data: bottleneck transition matrices between generations.

    Each entry covers one adjacent µarch pair and contains the transition
    counts ``matrix[from_component][to_component]`` plus the marginal
    shares on both sides.
    """
    assignments: Dict[str, List[Component]] = {}
    blocks = [bench.block_u for bench in suite]
    for abbr in uarch_names:
        cfg = uarch_by_name(abbr)
        model = Facile(cfg)
        assignments[abbr] = [
            primary_bottleneck(prediction)
            for prediction in model.predict_many(
                blocks, ThroughputMode.UNROLLED)
        ]

    flows = []
    for src, dst in zip(uarch_names, uarch_names[1:]):
        matrix = {a.value: {b.value: 0 for b in _PRIORITY}
                  for a in _PRIORITY}
        for from_comp, to_comp in zip(assignments[src], assignments[dst]):
            matrix[from_comp.value][to_comp.value] += 1
        flows.append({
            "from_uarch": src,
            "to_uarch": dst,
            "matrix": matrix,
            "from_shares": _marginals(assignments[src]),
            "to_shares": _marginals(assignments[dst]),
        })
    return flows


def _marginals(components: List[Component]) -> Dict[str, int]:
    counts = {comp.value: 0 for comp in _PRIORITY}
    for comp in components:
        counts[comp.value] += 1
    return counts


def render_figure6(flows: List[Dict[str, object]]) -> str:
    lines = []
    for flow in flows:
        lines.append(f"{flow['from_uarch']} -> {flow['to_uarch']}")
        lines.append(f"  shares {flow['from_uarch']}: "
                     f"{flow['from_shares']}")
        lines.append(f"  shares {flow['to_uarch']}:  {flow['to_shares']}")
        matrix = flow["matrix"]
        for src, row in matrix.items():
            moved = {dst: n for dst, n in row.items() if n}
            if moved:
                lines.append(f"  {src:<11} -> {moved}")
    return "\n".join(lines)
