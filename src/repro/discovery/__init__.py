"""Deviation discovery: differential testing of throughput predictors.

Facile's speed makes systematic differential testing practical: in the
time other predictors analyze one block, a campaign can generate,
predict, and compare hundreds.  This package composes the repo's
generator, batch engine, baselines, and metrics into the AnICA-style
loop behind ``facile hunt``:

* :mod:`~repro.discovery.campaign` — seeded campaign orchestration
  (generate candidates + mutants, fan out all tools, score, minimize,
  cluster);
* :mod:`~repro.discovery.interestingness` — scoring predictor
  disagreement (the oracle simulator participates as a tool);
* :mod:`~repro.discovery.minimize` — greedy instruction-dropping
  while the deviation persists;
* :mod:`~repro.discovery.abstraction` — per-instruction feature
  lattices and abstract blocks (match / subsume / sample);
* :mod:`~repro.discovery.generalize` — widening minimized witnesses
  into empirically-validated abstract deviation families;
* :mod:`~repro.discovery.subsumption` — cross-campaign dedup of
  families by subsumption (``--known``);
* :mod:`~repro.discovery.coverage` — fraction of a BHive-style corpus
  each family explains;
* :mod:`~repro.discovery.cluster` — fallback grouping of minimized
  witnesses by generalization signature (category, bottleneck, port
  multiset, deviating pair);
* :mod:`~repro.discovery.report` — canonical (byte-reproducible) JSON
  reports plus markdown summaries.

Reference: ``docs/DISCOVERY.md``.
"""

from repro.discovery.abstraction import (
    AbstractBlock,
    AbstractInsn,
    FEATURE_ORDER,
    PowerSetFeature,
    SingletonFeature,
    block_features,
    sample_block,
)
from repro.discovery.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    CampaignResult,
    Candidate,
    DEFAULT_BUDGET,
    DEFAULT_MAX_WITNESSES,
    DEFAULT_MUTATION_RATE,
    DEFAULT_PREDICTORS,
    Witness,
    run_campaign,
)
from repro.discovery.coverage import (
    family_coverage,
    load_coverage_corpus,
)
from repro.discovery.generalize import (
    DEFAULT_FRESH_WITNESSES,
    DEFAULT_GEN_SAMPLES,
    DEFAULT_MAX_FAMILIES,
    Family,
    FreshWitness,
    generalize_report,
    generalize_uarch,
    generalize_witness,
    rank_families,
)
from repro.discovery.subsumption import (
    KnownFamily,
    family_id,
    load_known_families,
)
from repro.discovery.checkpoint import (
    CheckpointError,
    CheckpointStore,
    DEFAULT_EVERY as DEFAULT_CHECKPOINT_EVERY,
)
from repro.discovery.cluster import (
    Cluster,
    Signature,
    canonical_port_set,
    cluster_witnesses,
    format_port_multiset,
    port_multiset_signature,
)
from repro.discovery.interestingness import (
    DEFAULT_THRESHOLD,
    ORACLE,
    BlockScore,
    score_values,
)
from repro.discovery.minimize import minimize_lines
from repro.discovery.report import (
    campaign_report,
    render_json,
    render_markdown,
)

__all__ = [
    "AbstractBlock",
    "AbstractInsn",
    "BlockScore",
    "CampaignConfig",
    "CampaignInterrupted",
    "CampaignResult",
    "Candidate",
    "CheckpointError",
    "CheckpointStore",
    "Cluster",
    "DEFAULT_BUDGET",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_FRESH_WITNESSES",
    "DEFAULT_GEN_SAMPLES",
    "DEFAULT_MAX_FAMILIES",
    "DEFAULT_MAX_WITNESSES",
    "DEFAULT_MUTATION_RATE",
    "DEFAULT_PREDICTORS",
    "DEFAULT_THRESHOLD",
    "FEATURE_ORDER",
    "Family",
    "FreshWitness",
    "KnownFamily",
    "ORACLE",
    "PowerSetFeature",
    "Signature",
    "SingletonFeature",
    "Witness",
    "block_features",
    "campaign_report",
    "canonical_port_set",
    "cluster_witnesses",
    "family_coverage",
    "family_id",
    "format_port_multiset",
    "generalize_report",
    "generalize_uarch",
    "generalize_witness",
    "load_coverage_corpus",
    "load_known_families",
    "minimize_lines",
    "port_multiset_signature",
    "rank_families",
    "render_json",
    "render_markdown",
    "run_campaign",
    "sample_block",
    "score_values",
]
