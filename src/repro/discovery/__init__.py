"""Deviation discovery: differential testing of throughput predictors.

Facile's speed makes systematic differential testing practical: in the
time other predictors analyze one block, a campaign can generate,
predict, and compare hundreds.  This package composes the repo's
generator, batch engine, baselines, and metrics into the AnICA-style
loop behind ``facile hunt``:

* :mod:`~repro.discovery.campaign` — seeded campaign orchestration
  (generate candidates + mutants, fan out all tools, score, minimize,
  cluster);
* :mod:`~repro.discovery.interestingness` — scoring predictor
  disagreement (the oracle simulator participates as a tool);
* :mod:`~repro.discovery.minimize` — greedy instruction-dropping
  while the deviation persists;
* :mod:`~repro.discovery.cluster` — grouping minimized witnesses by
  generalization signature (category, bottleneck, port multiset,
  deviating pair);
* :mod:`~repro.discovery.report` — canonical (byte-reproducible) JSON
  reports plus markdown summaries.

Reference: ``docs/DISCOVERY.md``.
"""

from repro.discovery.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    CampaignResult,
    Candidate,
    DEFAULT_BUDGET,
    DEFAULT_MAX_WITNESSES,
    DEFAULT_MUTATION_RATE,
    DEFAULT_PREDICTORS,
    Witness,
    run_campaign,
)
from repro.discovery.checkpoint import (
    CheckpointError,
    CheckpointStore,
    DEFAULT_EVERY as DEFAULT_CHECKPOINT_EVERY,
)
from repro.discovery.cluster import (
    Cluster,
    Signature,
    cluster_witnesses,
    port_multiset_signature,
)
from repro.discovery.interestingness import (
    DEFAULT_THRESHOLD,
    ORACLE,
    BlockScore,
    score_values,
)
from repro.discovery.minimize import minimize_lines
from repro.discovery.report import (
    campaign_report,
    render_json,
    render_markdown,
)

__all__ = [
    "BlockScore",
    "CampaignConfig",
    "CampaignInterrupted",
    "CampaignResult",
    "Candidate",
    "CheckpointError",
    "CheckpointStore",
    "Cluster",
    "DEFAULT_BUDGET",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_MAX_WITNESSES",
    "DEFAULT_MUTATION_RATE",
    "DEFAULT_PREDICTORS",
    "DEFAULT_THRESHOLD",
    "ORACLE",
    "Signature",
    "Witness",
    "campaign_report",
    "cluster_witnesses",
    "minimize_lines",
    "port_multiset_signature",
    "render_json",
    "render_markdown",
    "run_campaign",
    "score_values",
]
