"""Seeded differential-testing campaigns (the ``facile hunt`` core).

A campaign composes the repo's existing ingredients into an AnICA-style
discovery loop:

1. **Generate** — seeded candidate blocks per category
   (:class:`~repro.bhive.generator.BlockGenerator`), plus mutants of the
   most interesting candidates (the generator's drop / duplicate /
   substitute hooks);
2. **Evaluate** — fan every selected predictor and the oracle simulator
   over the candidates: Facile goes through
   :meth:`repro.engine.Engine.predict_many` (shared analysis cache,
   opt-in worker pool), measurements through
   :func:`repro.engine.engine.measure_many` when workers are configured;
3. **Score** — each (block, mode) evaluation gets an interestingness
   score (:mod:`repro.discovery.interestingness`);
4. **Minimize** — deviating blocks are shrunk by greedy instruction
   dropping while the deviation persists
   (:mod:`repro.discovery.minimize`);
5. **Cluster** — minimized witnesses are grouped by generalization
   signature and ranked (:mod:`repro.discovery.cluster`).

Everything downstream of the config is deterministic: candidates come
from one seeded RNG, evaluations are pure functions of block bytes, and
worker counts change wall-clock only — a campaign run with ``n_workers``
set produces results identical to a serial run (the engine merges by
index and measurements are rounded identically on both paths).  The
worker count is therefore an *execution* detail and deliberately not
part of the campaign report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import GuardedPredictor, all_predictors, \
    predictor_names
from repro.bhive.categories import CATEGORIES, Category
from repro.bhive.generator import LOOP_CONDS, BlockGenerator, \
    loop_back_edge
from repro.core.components import ThroughputMode
from repro.discovery.checkpoint import CheckpointStore
from repro.discovery.cluster import (
    Cluster,
    Signature,
    cluster_witnesses,
    port_multiset_signature,
)
from repro.discovery.generalize import (
    DEFAULT_FRESH_WITNESSES,
    DEFAULT_GEN_SAMPLES,
    DEFAULT_MAX_FAMILIES,
    Family,
    attach_coverage,
    generalize_uarch,
    rank_families,
)
from repro.discovery.interestingness import (
    DEFAULT_THRESHOLD,
    ORACLE,
    BlockScore,
    score_values,
)
from repro.discovery.minimize import minimize_lines
from repro.discovery.subsumption import KnownFamily
from repro.engine.engine import Engine, measure_many
from repro.isa.assembler import assemble
from repro.isa.block import BasicBlock
from repro.obs import metrics
from repro.robustness.errors import CircuitOpenError
from repro.sim.measure import measure
from repro.uarch import uarch_by_name
from repro.uops.database import UopsDatabase

#: Default tool set: Facile, the simulation-grade analog (uiCA) and the
#: back-end-only analog (llvm-mca) — cheap, deterministic, and spanning
#: the modeling-scope spectrum.  Learned analogs (Ithemal, DiffTune,
#: learning-bl) can be selected explicitly but train on first use.
DEFAULT_PREDICTORS: Tuple[str, ...] = ("Facile", "uiCA", "llvm-mca-15")

#: Default campaign shape (mirrors the CLI defaults).
DEFAULT_BUDGET = 200
DEFAULT_MUTATION_RATE = 0.3
DEFAULT_MAX_WITNESSES = 20

_CATEGORY_BY_NAME: Dict[str, Category] = {c.name: c for c in CATEGORIES}

#: Campaign progress counters — purely observational (the CLI heartbeat
#: reads them); campaign results never depend on the registry.
_BLOCKS_EVALUATED = metrics.counter(
    "facile_hunt_blocks_evaluated_total",
    metrics.METRIC_CATALOG["facile_hunt_blocks_evaluated_total"][1],
    labels=("uarch",))
_DEVIATIONS = metrics.counter(
    "facile_hunt_deviations_total",
    metrics.METRIC_CATALOG["facile_hunt_deviations_total"][1],
    labels=("uarch",))

#: A progress hook: called (with no arguments) after every evaluation
#: batch, from the campaign thread.  Hooks read the metrics registry
#: for the numbers; exceptions they raise propagate (a heartbeat must
#: never silently corrupt a campaign, so hooks are expected to be
#: trivial and total).
ProgressHook = Callable[[], None]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's results.

    ``n_workers`` is the one exception: it selects the engine's parallel
    path (``None`` = serial, ``0`` = one worker per CPU) but never
    changes results, and is excluded from the canonical report.
    """

    seed: int = 0
    budget: int = DEFAULT_BUDGET
    uarchs: Tuple[str, ...] = ("SKL",)
    predictors: Tuple[str, ...] = DEFAULT_PREDICTORS
    modes: Tuple[str, ...] = ("unrolled", "loop")
    threshold: float = DEFAULT_THRESHOLD
    mutation_rate: float = DEFAULT_MUTATION_RATE
    max_witnesses: int = DEFAULT_MAX_WITNESSES
    generalize: bool = False
    gen_samples: int = DEFAULT_GEN_SAMPLES
    fresh_witnesses: int = DEFAULT_FRESH_WITNESSES
    max_families: int = DEFAULT_MAX_FAMILIES
    n_workers: Optional[int] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on any inconsistent field."""
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if not self.uarchs:
            raise ValueError("need at least one µarch")
        for abbrev in self.uarchs:
            try:
                uarch_by_name(abbrev)
            except KeyError:
                raise ValueError(f"unknown µarch {abbrev!r} "
                                 "(see `facile table1`)") from None
        if len(set(self.uarchs)) != len(self.uarchs):
            raise ValueError("duplicate µarch names")
        if not self.predictors:
            raise ValueError("need at least one predictor "
                             "(the oracle simulator always participates)")
        known = set(predictor_names())
        unknown = [n for n in self.predictors if n not in known]
        if unknown:
            raise ValueError(
                f"unknown predictor(s) {unknown!r}; "
                f"registered: {sorted(known)}")
        if len(set(self.predictors)) != len(self.predictors):
            raise ValueError("duplicate predictor names")
        if not self.modes:
            raise ValueError("need at least one throughput mode")
        for mode in self.modes:
            ThroughputMode(mode)  # raises ValueError on bad names
        if len(set(self.modes)) != len(self.modes):
            raise ValueError("duplicate modes")
        if not self.threshold > 0:
            raise ValueError("threshold must be > 0")
        if not 0 <= self.mutation_rate <= 1:
            raise ValueError("mutation_rate must be within [0, 1]")
        if self.max_witnesses < 1:
            raise ValueError("max_witnesses must be >= 1")
        if self.gen_samples < 2:
            raise ValueError("gen_samples must be >= 2 (a widening step "
                             "cannot be validated on fewer samples)")
        if self.fresh_witnesses < 1:
            raise ValueError("fresh_witnesses must be >= 1")
        if self.max_families < 1:
            raise ValueError("max_families must be >= 1")
        if self.n_workers is not None and self.n_workers < 0:
            raise ValueError(
                "n_workers must be >= 0 (0 = one per CPU, None = serial)")


@dataclass(frozen=True)
class Candidate:
    """One candidate block of a campaign, kept in source-line form.

    Carrying the assembly lines (not just bytes) is what makes
    minimization trivially sound: dropping a line and reassembling
    always yields a valid block, and the loop variant's back edge is
    re-encoded with a correct displacement at every size.
    """

    index: int
    category: str
    origin: str  # "generated" or "mutant:<op>"
    lines: Tuple[str, ...]
    loop_cond: str

    def block(self, mode: ThroughputMode) -> BasicBlock:
        """The concrete block evaluated under *mode* (loop variants end
        in a conditional branch back to the first instruction)."""
        body = "\n".join(self.lines)
        if mode is ThroughputMode.UNROLLED:
            return BasicBlock(assemble(body))
        body_len = BasicBlock(assemble(body)).num_bytes
        back_edge = loop_back_edge(body_len, self.loop_cond)
        return BasicBlock(assemble(f"{body}\n{back_edge}"))


@dataclass
class Witness:
    """One minimized, clustered deviation."""

    uarch: str
    mode: str
    category: str
    origin: str
    original_lines: Tuple[str, ...]
    minimized_lines: Tuple[str, ...]
    original_score: float
    score: float
    pair: Tuple[str, str]
    pair_values: Tuple[float, float]
    oracle_error: Optional[float]
    values: Dict[str, float]
    raw_hex: str
    asm: str
    minimize_trials: int
    signature: Signature
    loop_cond: str = "ne"


@dataclass
class CampaignResult:
    """A finished campaign: per-µarch stats, witnesses, ranked clusters.

    ``incidents`` records *unrecovered* robustness events — a predictor
    whose circuit breaker stayed open, a tool skipped for a whole batch
    — as typed entries; transient failures that retries absorbed leave
    no trace here, so a fault-injected run that fully recovers reports
    byte-identically to a fault-free one.  ``partial`` marks a result
    raised out of an interrupted campaign.
    """

    config: CampaignConfig
    stats: Dict[str, Dict[str, int]]
    witnesses: List[Witness]
    clusters: List[Cluster] = field(default_factory=list)
    incidents: List[Dict[str, object]] = field(default_factory=list)
    partial: bool = False
    #: Ranked abstract deviation families (``--generalize`` runs only).
    families: List[Family] = field(default_factory=list)
    #: Witnesses matched by already-known families (cross-campaign
    #: subsumption dedup) instead of spawning duplicates.
    subsumed: List[Dict[str, object]] = field(default_factory=list)
    #: Coverage-corpus provenance of a generalized run, else None.
    generalization: Optional[Dict[str, object]] = None


class CampaignInterrupted(Exception):
    """``facile hunt`` was interrupted; carries the partial result.

    Raised by :func:`run_campaign` on ``KeyboardInterrupt`` after
    flushing the checkpoint (when one is attached): completed µarchs
    keep their witnesses, and the CLI renders the partial report with
    ``partial: true`` before exiting non-zero.
    """

    def __init__(self, result: CampaignResult):
        super().__init__(
            "campaign interrupted; partial results attached")
        self.result = result


class _Evaluator:
    """Per-µarch fan-out of all selected tools plus the oracle.

    Facile routes through the batch :class:`Engine` (shared
    ``AnalysisCache``; parallel when workers are configured); baseline
    analogs share the same :class:`UopsDatabase`; oracle measurements go
    through :func:`measure_many` on the parallel path and the (equally
    cached, equally rounded) serial :func:`measure` otherwise.
    """

    def __init__(self, abbrev: str, predictors: Sequence[str],
                 n_workers: Optional[int],
                 checkpoint: Optional[CheckpointStore] = None,
                 progress: Optional[ProgressHook] = None):
        self.abbrev = abbrev
        self.progress = progress
        self.cfg = uarch_by_name(abbrev)
        self.db = UopsDatabase(self.cfg)
        self.n_workers = n_workers
        self.engine = Engine(self.cfg, db=self.db, n_workers=n_workers)
        self.use_facile = "Facile" in predictors
        self.baselines = [
            GuardedPredictor(predictor)
            for predictor in all_predictors(
                self.cfg, self.db,
                names=[name for name in predictors if name != "Facile"])
        ]
        for predictor in self.baselines:
            predictor.prepare()
        self.checkpoint = checkpoint
        # All tools an evaluation must cover for a checkpoint entry to
        # substitute for re-running it.
        self._required = frozenset(
            (["Facile"] if self.use_facile else [])
            + [predictor.name for predictor in self.baselines]
            + [ORACLE])
        self.blocks_evaluated = 0
        # (predictor, reason) -> [first detail, batch count]; only
        # *unrecovered* events land here (see CampaignResult.incidents).
        self._incidents: Dict[Tuple[str, str], List[object]] = {}

    def incidents(self) -> List[Dict[str, object]]:
        """Typed, deterministic records of unrecovered tool failures."""
        return [
            {"uarch": self.abbrev, "predictor": predictor,
             "reason": reason, "detail": detail, "batches": count}
            for (predictor, reason), (detail, count)
            in sorted(self._incidents.items())
        ]

    def _record_incident(self, predictor: str, reason: str,
                         detail: str) -> None:
        entry = self._incidents.setdefault((predictor, reason),
                                           [detail, 0])
        entry[1] += 1

    def _compute(self, blocks: Sequence[BasicBlock],
                 mode: ThroughputMode) -> List[Dict[str, float]]:
        """Run every tool plus the oracle over *blocks* (no cache)."""
        values: List[Dict[str, float]] = [{} for _ in blocks]
        if self.use_facile:
            predictions = self.engine.predict_many(blocks, mode)
            for entry, prediction in zip(values, predictions):
                entry["Facile"] = prediction.cycles
        for predictor in self.baselines:
            try:
                batch = predictor.predict_many(blocks, mode)
            except CircuitOpenError:
                # The breaker opened (or already was open): skip the
                # tool for this batch, record the skip, keep hunting
                # with the remaining tools.
                self._record_incident(
                    predictor.name, "circuit_open",
                    "circuit breaker open after "
                    f"{predictor.breaker.failure_threshold} consecutive "
                    "failed calls")
                continue
            except Exception as exc:
                # One block kept failing past its retries: values for
                # the batch are incomplete, so the tool sits this batch
                # out entirely (partial per-block coverage would make
                # scores depend on *where* in a batch a tool broke).
                self._record_incident(
                    predictor.name, "error",
                    f"{type(exc).__name__}: {exc}")
                continue
            for entry, cycles in zip(values, batch):
                entry[predictor.name] = cycles
        # measure_many spins a pool up per call, so fan out only when
        # the batch can amortize it (campaign sweeps and large
        # minimization rounds); smaller batches measure serially
        # through the same cache with identical rounding — which path
        # a batch takes never changes results.
        if self.n_workers is not None and len(blocks) >= 8:
            measured = measure_many(self.cfg, blocks, mode,
                                    n_workers=self.n_workers)
        else:
            measured = [measure(block, self.cfg, mode, self.db)
                        for block in blocks]
        for entry, cycles in zip(values, measured):
            entry[ORACLE] = cycles
        return values

    def evaluate(self, blocks: Sequence[BasicBlock],
                 mode: ThroughputMode) -> List[Dict[str, float]]:
        """Per-tool cycles for every block (the :data:`ORACLE` included).

        With a checkpoint attached, evaluations already in the store
        are read back instead of re-executed (that is what makes
        ``--resume`` cheap), and fresh evaluations are written through.
        ``blocks_evaluated`` counts *logical* evaluations either way,
        so a resumed campaign reports the same statistics as an
        uninterrupted one.
        """
        blocks = list(blocks)
        if not blocks:
            return []
        self.blocks_evaluated += len(blocks)
        _BLOCKS_EVALUATED.inc(len(blocks), uarch=self.abbrev)
        if self.progress is not None:
            self.progress()
        if self.checkpoint is None:
            return self._compute(blocks, mode)
        results: List[Optional[Dict[str, float]]] = [None] * len(blocks)
        missing: List[int] = []
        for index, block in enumerate(blocks):
            entry = self.checkpoint.get(self.abbrev, mode.value,
                                        block.raw.hex())
            # An entry only counts when it covers every tool of *this*
            # campaign — an entry recorded while a breaker was open is
            # incomplete and gets re-evaluated rather than replayed.
            if entry is not None and self._required <= set(entry):
                results[index] = {name: entry[name]
                                  for name in self._required}
            else:
                missing.append(index)
        if missing:
            computed = self._compute([blocks[i] for i in missing], mode)
            for index, values in zip(missing, computed):
                results[index] = values
                self.checkpoint.put(self.abbrev, mode.value,
                                    blocks[index].raw.hex(), values)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        if self.checkpoint is not None:
            self.checkpoint.flush()
        self.engine.close()


_Scored = Tuple[Candidate, ThroughputMode, BlockScore]


def _score_candidates(evaluator: _Evaluator,
                      candidates: Sequence[Candidate],
                      modes: Sequence[ThroughputMode]) -> List[_Scored]:
    """Evaluate candidates under every mode; keep each one's best mode.

    Ties go to the earlier mode in config order, keeping the selection
    deterministic.
    """
    if not candidates:
        return []
    per_mode = {
        mode: [score_values(values) for values in evaluator.evaluate(
            [candidate.block(mode) for candidate in candidates], mode)]
        for mode in modes
    }
    scored: List[_Scored] = []
    for i, candidate in enumerate(candidates):
        best_mode = modes[0]
        best = per_mode[best_mode][i]
        for mode in modes[1:]:
            if per_mode[mode][i].score > best.score:
                best, best_mode = per_mode[mode][i], mode
        scored.append((candidate, best_mode, best))
    return scored


def _signature(evaluator: _Evaluator, abbrev: str, mode: ThroughputMode,
               candidate: Candidate, block: BasicBlock,
               score: BlockScore) -> Signature:
    """The generalization signature of one minimized witness."""
    prediction = evaluator.engine.predict(block, mode)
    bottleneck = (prediction.bottlenecks[0].value
                  if prediction.bottlenecks else "-")
    ports = port_multiset_signature(
        evaluator.engine.cache.analysis(block).ops)
    return Signature(uarch=abbrev, mode=mode.value,
                     category=candidate.category, bottleneck=bottleneck,
                     ports=ports, pair=score.pair)


def _hunt_uarch(abbrev: str, config: CampaignConfig,
                modes: Sequence[ThroughputMode],
                checkpoint: Optional[CheckpointStore] = None,
                known: Sequence[KnownFamily] = (),
                corpus_blocks: Optional[List] = None,
                progress: Optional[ProgressHook] = None,
                ) -> Tuple[List[Witness], Dict[str, int],
                           List[Dict[str, object]], List[Family],
                           List[Dict[str, object]]]:
    """Run one µarch's generate → evaluate → minimize pipeline.

    With ``config.generalize`` set, a generalization phase follows:
    the strongest witnesses are widened into abstract families
    (validated by fresh samples through the same evaluator), deduped
    against *known* families by subsumption, and scored for coverage
    over *corpus_blocks*.
    """
    evaluator = _Evaluator(abbrev, config.predictors, config.n_workers,
                           checkpoint=checkpoint, progress=progress)
    try:
        # Each µarch restarts the generator from the campaign seed, so
        # every µarch hunts over the same candidate corpus and µarchs
        # can be added/removed without perturbing each other's results.
        generator = BlockGenerator(config.seed)
        rng = generator.rng

        n_mutants = int(round(config.budget * config.mutation_rate))
        n_fresh = max(1, config.budget - n_mutants)
        n_mutants = config.budget - n_fresh

        weights = [c.weight for c in CATEGORIES]
        candidates = []
        for index in range(n_fresh):
            category = rng.choices(CATEGORIES, weights=weights)[0]
            lines = tuple(generator.body(category))
            candidates.append(Candidate(
                index=index, category=category.name, origin="generated",
                lines=lines, loop_cond=rng.choice(LOOP_CONDS)))
        scored = _score_candidates(evaluator, candidates, modes)

        # Mutation phase: perturb the interesting candidates (fall back
        # to the whole corpus while nothing deviates yet).
        parents = [entry[0] for entry in
                   sorted((e for e in scored
                           if e[2].score >= config.threshold),
                          key=lambda e: (-e[2].score, e[0].index))]
        if not parents:
            parents = list(candidates)
        mutants = []
        for offset in range(n_mutants):
            parent = parents[rng.randrange(len(parents))]
            lines, op = generator.mutate(
                parent.lines, _CATEGORY_BY_NAME[parent.category])
            mutants.append(Candidate(
                index=n_fresh + offset, category=parent.category,
                origin=f"mutant:{op}", lines=tuple(lines),
                loop_cond=parent.loop_cond))
        scored.extend(_score_candidates(evaluator, mutants, modes))

        deviations = [entry for entry in scored
                      if entry[2].score >= config.threshold]
        deviations.sort(key=lambda e: (-e[2].score, e[0].index))
        if deviations:
            _DEVIATIONS.inc(len(deviations), uarch=abbrev)
        if progress is not None:
            progress()

        witnesses: List[Witness] = []
        seen = set()
        minimize_trials = 0
        # Minimize until max_witnesses *distinct* witnesses exist:
        # different candidates can shrink to the same minimal block, so
        # walk past duplicates into the remaining deviations — bounded
        # at 2x the cap so a corpus where everything minimizes
        # identically stays cheap.
        for candidate, mode, original in \
                deviations[:2 * config.max_witnesses]:
            if len(witnesses) >= config.max_witnesses:
                break
            def score_bodies(bodies, _mode=mode, _cand=candidate):
                trials = [Candidate(
                    index=_cand.index, category=_cand.category,
                    origin=_cand.origin, lines=body,
                    loop_cond=_cand.loop_cond) for body in bodies]
                return [score_values(values).score
                        for values in evaluator.evaluate(
                            [t.block(_mode) for t in trials], _mode)]

            minimized, trials = minimize_lines(
                candidate.lines, score_bodies, config.threshold)
            minimize_trials += trials
            final_candidate = Candidate(
                index=candidate.index, category=candidate.category,
                origin=candidate.origin, lines=minimized,
                loop_cond=candidate.loop_cond)
            block = final_candidate.block(mode)
            key = (mode.value, block.raw)
            if key in seen:  # two candidates shrank to the same witness
                continue
            seen.add(key)
            values = evaluator.evaluate([block], mode)[0]
            final = score_values(values)
            witnesses.append(Witness(
                uarch=abbrev, mode=mode.value,
                category=candidate.category, origin=candidate.origin,
                original_lines=candidate.lines,
                minimized_lines=minimized,
                original_score=original.score, score=final.score,
                pair=final.pair, pair_values=final.pair_values,
                oracle_error=final.oracle_error, values=values,
                raw_hex=block.raw.hex(), asm=block.text(),
                minimize_trials=trials,
                signature=_signature(evaluator, abbrev, mode,
                                     final_candidate, block, final),
                loop_cond=candidate.loop_cond))
        stats = {
            "candidates": n_fresh,
            "mutants": n_mutants,
            "deviating": len(deviations),
            "witnesses": len(witnesses),
            "minimize_trials": minimize_trials,
        }
        families: List[Family] = []
        subsumed: List[Dict[str, object]] = []
        if config.generalize:
            outcome = generalize_uarch(
                evaluator, witnesses, samples=config.gen_samples,
                fresh_needed=config.fresh_witnesses,
                max_families=config.max_families,
                threshold=config.threshold, seed=config.seed,
                known=known)
            families = outcome.families
            subsumed = outcome.subsumed
            attach_coverage(families, corpus_blocks or [], evaluator.db)
            stats.update({
                "families": outcome.stats["families"],
                "families_folded": outcome.stats["folded"],
                "families_subsumed": outcome.stats["subsumed"],
                "families_unconfirmed": outcome.stats["unconfirmed"],
                "generalize_samples": outcome.stats["gen_samples"],
            })
        stats["blocks_evaluated"] = evaluator.blocks_evaluated
        return witnesses, stats, evaluator.incidents(), families, subsumed
    finally:
        evaluator.close()


def run_campaign(config: CampaignConfig,
                 checkpoint: Optional[CheckpointStore] = None,
                 known: Sequence[KnownFamily] = (),
                 coverage_corpus: Optional[str] = None,
                 progress: Optional[ProgressHook] = None,
                 ) -> CampaignResult:
    """Run a full deviation-discovery campaign.

    Deterministic given the config (minus ``n_workers``): two runs with
    the same seed/budget/tool set produce identical witnesses, clusters,
    and (canonical) reports.  A resumed campaign (same config, a
    *checkpoint* holding earlier evaluations) replays the identical
    control flow against the cache and is byte-identical too.

    With ``config.generalize`` set, witnesses are widened into ranked
    abstract families; *known* families (from a prior report, see
    ``facile hunt --known``) dedup re-discoveries by subsumption, and
    *coverage_corpus* (a hex/BHive-CSV path, default: the deterministic
    benchmark suite) scores each family's suite coverage.

    Raises:
        CampaignInterrupted: on ``KeyboardInterrupt`` — the checkpoint
            (when attached) is flushed first, and the exception carries
            the partial result of the µarchs that completed.
    """
    config.validate()
    modes = tuple(ThroughputMode(m) for m in config.modes)
    witnesses: List[Witness] = []
    stats: Dict[str, Dict[str, int]] = {}
    incidents: List[Dict[str, object]] = []
    families: List[Family] = []
    subsumed: List[Dict[str, object]] = []
    generalization: Optional[Dict[str, object]] = None
    corpus_blocks: Optional[List] = None
    if config.generalize:
        from repro.discovery.coverage import load_coverage_corpus
        corpus_label, corpus_blocks = \
            load_coverage_corpus(coverage_corpus)
        generalization = {"corpus": corpus_label,
                          "corpus_blocks": len(corpus_blocks),
                          "known_families": len(known)}

    def _result(partial: bool) -> CampaignResult:
        return CampaignResult(
            config=config, stats=stats, witnesses=witnesses,
            clusters=cluster_witnesses(witnesses), incidents=incidents,
            partial=partial, families=rank_families(families),
            subsumed=subsumed, generalization=generalization)

    try:
        for abbrev in config.uarchs:
            uarch_witnesses, uarch_stats, uarch_incidents, \
                uarch_families, uarch_subsumed = \
                _hunt_uarch(abbrev, config, modes,
                            checkpoint=checkpoint, known=known,
                            corpus_blocks=corpus_blocks,
                            progress=progress)
            witnesses.extend(uarch_witnesses)
            stats[abbrev] = uarch_stats
            incidents.extend(uarch_incidents)
            families.extend(uarch_families)
            subsumed.extend(uarch_subsumed)
    except KeyboardInterrupt:
        # The evaluator's close() (the finally in _hunt_uarch) already
        # flushed the checkpoint; hand back what completed.
        raise CampaignInterrupted(_result(partial=True)) from None
    return _result(partial=False)
