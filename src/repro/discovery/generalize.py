"""Witness generalization: from concrete deviations to block families.

This is the second half of the AnICA recipe (`facile hunt` implements
the first): take each minimized witness and **widen** it, one feature
lattice at a time, into the most general abstract block that still
deviates.  Every widening step is *validated empirically*: fresh
concrete blocks are sampled from the widened abstraction
(:meth:`AbstractBlock.sample`) and batch-evaluated through the same
per-µarch evaluator the campaign uses (Facile via
``Engine.predict_many``, baselines via their guarded ``predict_many``,
the oracle via ``measure_many``/``measure``), and the step is kept only
when the witness's deviating tool pair keeps disagreeing on (almost)
all of them.

The result of a successful generalization is a :class:`Family`:

* the widened :class:`AbstractBlock` (canonically serializable);
* the campaign witnesses it covers;
* ``K`` **fresh sampled witnesses** — concrete blocks drawn from the
  family that were *not* campaign inputs, each re-verified to deviate
  (the report's proof that the family is real, not an artifact of the
  original block);
* suite-coverage numbers filled in by
  :mod:`repro.discovery.coverage`.

Everything is driven by seeded sub-RNGs keyed on the campaign seed and
the witness bytes, and every tool evaluation flows through the
campaign's checkpoint-aware evaluator — generalized reports stay
byte-reproducible and ``--resume``-compatible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.components import ThroughputMode
from repro.bhive.generator import loop_back_edge
from repro.discovery.abstraction import FEATURE_ORDER, AbstractBlock
from repro.discovery.coverage import corpus_feature_index, family_coverage
from repro.discovery.subsumption import KnownFamily, family_id, \
    subsuming_family
from repro.eval.metrics import relative_disagreement
from repro.isa.assembler import assemble
from repro.isa.block import BasicBlock
from repro.isa.instruction import Instruction

#: Fresh samples drawn to validate one widening step.
DEFAULT_GEN_SAMPLES = 5
#: Fresh deviating witnesses a family must produce to be reported.
DEFAULT_FRESH_WITNESSES = 3
#: Generalization attempts per µarch (strongest witnesses first).
DEFAULT_MAX_FAMILIES = 8

#: Fraction of validation samples that must keep deviating for a
#: widening step to be accepted.
ACCEPT_RATIO = 0.8

#: Sampling patience: batches drawn per needed fresh witness before a
#: family is declared unconfirmed.
_FRESH_BATCHES = 10


@dataclass
class FreshWitness:
    """One sampled, re-verified member of a family."""

    lines: Tuple[str, ...]
    raw_hex: str
    score: float
    values: Dict[str, float]


@dataclass
class Family:
    """One generalized (and empirically confirmed) abstract deviation."""

    uarch: str
    mode: str
    category: str
    pair: Tuple[str, str]
    loop_cond: str
    abstraction: AbstractBlock
    witness_hexes: List[str]
    fresh: List[FreshWitness]
    widenings_tried: int
    widenings_accepted: int
    samples_evaluated: int
    coverage_matched: int = 0
    coverage_total: int = 0

    @property
    def id(self) -> str:
        return family_id(self.abstraction, self.uarch, self.mode,
                         self.pair)

    @property
    def coverage(self) -> float:
        if not self.coverage_total:
            return 0.0
        return self.coverage_matched / self.coverage_total

    @property
    def max_fresh_score(self) -> float:
        return max((fresh.score for fresh in self.fresh), default=0.0)


@dataclass
class GeneralizationOutcome:
    """Everything one µarch's generalization phase produced."""

    families: List[Family] = field(default_factory=list)
    subsumed: List[Dict[str, object]] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=lambda: {
        "attempted": 0, "families": 0, "folded": 0, "subsumed": 0,
        "unconfirmed": 0, "gen_samples": 0})


def _make_block(body: Sequence[Instruction], mode: ThroughputMode,
                loop_cond: str) -> BasicBlock:
    """A campaign-evaluable block from a body instruction list."""
    body = list(body)
    if mode is ThroughputMode.UNROLLED:
        return BasicBlock(body)
    body_len = sum(instr.length for instr in body)
    back = assemble(loop_back_edge(body_len, loop_cond))
    return BasicBlock(body + back)


def _deviates(values: Dict[str, float], pair: Tuple[str, str],
              threshold: float) -> Optional[float]:
    """The pair's disagreement when it meets *threshold*, else None."""
    first, second = pair
    if first not in values or second not in values:
        return None
    score = relative_disagreement(values[first], values[second])
    if score >= threshold:
        return score
    return None


def _draw_distinct(abstraction: AbstractBlock, rng: random.Random, db,
                   count: int, exclude: Set[bytes],
                   ) -> List[List[Instruction]]:
    """Up to *count* sampled bodies with pairwise-distinct encodings."""
    bodies: List[List[Instruction]] = []
    seen: Set[bytes] = set(exclude)
    for _ in range(4 * count):
        if len(bodies) >= count:
            break
        body = abstraction.sample(rng, db)
        if body is None:
            continue
        raw = b"".join(instr.raw for instr in body)
        if raw in seen:
            continue
        seen.add(raw)
        bodies.append(body)
    return bodies


def generalize_witness(witness, evaluator, *, samples: int,
                       fresh_needed: int, threshold: float, seed: int,
                       excluded_hexes: Set[str],
                       ) -> Tuple[Optional[Family], int]:
    """Widen one witness into a confirmed family.

    Returns ``(family, samples_evaluated)``; the family is ``None``
    when it could not be confirmed with *fresh_needed* fresh deviating
    witnesses.  Deterministic: the RNG is keyed on the campaign seed
    and the witness bytes, and all tool runs go through
    ``evaluator.evaluate`` (checkpoint-aware).
    """
    mode = ThroughputMode(witness.mode)
    rng = random.Random(
        f"{seed}|generalize|{witness.uarch}|{witness.mode}|"
        f"{witness.raw_hex}")
    body = assemble("\n".join(witness.minimized_lines))
    body_raw = b"".join(instr.raw for instr in body)
    abstraction = AbstractBlock.from_instructions(body, evaluator.db)

    evaluated = 0
    tried = accepted = 0
    min_valid = max(2, samples // 2)
    accept = lambda ok, total: ok >= math.ceil(ACCEPT_RATIO * total)  # noqa: E731

    for index in range(len(abstraction.insns)):
        for feature in FEATURE_ORDER:
            if abstraction.insns[index].is_top(feature):
                continue
            trial = abstraction.clone()
            trial.insns[index].widen(feature)
            tried += 1
            bodies = _draw_distinct(trial, rng, evaluator.db, samples,
                                    exclude=set())
            if len(bodies) < min_valid:
                continue  # cannot validate the step: keep it narrow
            blocks = [_make_block(b, mode, witness.loop_cond)
                      for b in bodies]
            values = evaluator.evaluate(blocks, mode)
            evaluated += len(blocks)
            deviating = sum(
                1 for entry in values
                if _deviates(entry, witness.pair, threshold) is not None)
            if accept(deviating, len(bodies)):
                abstraction = trial
                accepted += 1

    # Confirmation: K fresh, distinct, deviating members — none of them
    # campaign inputs.
    fresh: List[FreshWitness] = []
    exclude = {body_raw}
    exclude.update(bytes.fromhex(h) for h in excluded_hexes)
    for _ in range(_FRESH_BATCHES):
        if len(fresh) >= fresh_needed:
            break
        bodies = _draw_distinct(
            abstraction, rng, evaluator.db, samples,
            exclude=exclude | {bytes.fromhex(f.raw_hex)
                               for f in fresh})
        if not bodies:
            break
        blocks = [_make_block(b, mode, witness.loop_cond)
                  for b in bodies]
        values = evaluator.evaluate(blocks, mode)
        evaluated += len(blocks)
        for body_instrs, block, entry in zip(bodies, blocks, values):
            if len(fresh) >= fresh_needed:
                break
            score = _deviates(entry, witness.pair, threshold)
            if score is None:
                continue
            if block.raw.hex() in excluded_hexes:
                continue
            fresh.append(FreshWitness(
                lines=tuple(instr.text() for instr in body_instrs),
                raw_hex=block.raw.hex(), score=score,
                values=dict(entry)))
    if len(fresh) < fresh_needed:
        return None, evaluated
    return Family(
        uarch=witness.uarch, mode=witness.mode,
        category=witness.category, pair=tuple(witness.pair),
        loop_cond=witness.loop_cond, abstraction=abstraction,
        witness_hexes=[witness.raw_hex], fresh=fresh,
        widenings_tried=tried, widenings_accepted=accepted,
        samples_evaluated=evaluated), evaluated


def _witness_record(witness, subsumed_by: str) -> Dict[str, object]:
    return {
        "uarch": witness.uarch,
        "mode": witness.mode,
        "category": witness.category,
        "pair": list(witness.pair),
        "score": witness.score,
        "lines": list(witness.minimized_lines),
        "hex": witness.raw_hex,
        "subsumed_by": subsumed_by,
    }


def generalize_uarch(evaluator, witnesses: Sequence, *, samples: int,
                     fresh_needed: int, max_families: int,
                     threshold: float, seed: int,
                     known: Sequence[KnownFamily] = (),
                     ) -> GeneralizationOutcome:
    """One µarch's generalization phase.

    Witnesses are processed strongest-first.  A witness already matched
    by a family accepted earlier in this run is *folded* into it; one
    already matched by a ``--known`` family is reported as *subsumed*
    (cross-campaign dedup — no duplicate family is created); the rest
    are generalized, up to *max_families* attempts.
    """
    outcome = GeneralizationOutcome()
    excluded_hexes = {w.raw_hex for w in witnesses}
    ordered = sorted(witnesses, key=lambda w: (-w.score, w.raw_hex))
    for witness in ordered:
        body = assemble("\n".join(witness.minimized_lines))
        folded = False
        for family in outcome.families:
            if (family.uarch == witness.uarch
                    and family.mode == witness.mode
                    and family.pair == tuple(witness.pair)
                    and family.abstraction.matches(body, evaluator.db)):
                family.witness_hexes.append(witness.raw_hex)
                outcome.stats["folded"] += 1
                folded = True
                break
        if folded:
            continue
        base = AbstractBlock.from_instructions(body, evaluator.db)
        known_hit = subsuming_family(known, witness.uarch, witness.mode,
                                     witness.pair, base)
        if known_hit is not None:
            outcome.subsumed.append(
                _witness_record(witness, known_hit.id))
            outcome.stats["subsumed"] += 1
            continue
        if outcome.stats["attempted"] >= max_families:
            continue
        outcome.stats["attempted"] += 1
        family, evaluated = generalize_witness(
            witness, evaluator, samples=samples,
            fresh_needed=fresh_needed, threshold=threshold, seed=seed,
            excluded_hexes=excluded_hexes)
        outcome.stats["gen_samples"] += evaluated
        if family is None:
            outcome.stats["unconfirmed"] += 1
            continue
        known_hit = subsuming_family(known, family.uarch, family.mode,
                                     family.pair, family.abstraction)
        if known_hit is not None:
            outcome.subsumed.append(
                _witness_record(witness, known_hit.id))
            outcome.stats["subsumed"] += 1
            continue
        absorbed = False
        for existing in outcome.families:
            if (existing.uarch == family.uarch
                    and existing.mode == family.mode
                    and existing.pair == family.pair
                    and existing.abstraction.subsumes(family.abstraction)):
                existing.witness_hexes.append(witness.raw_hex)
                outcome.stats["folded"] += 1
                absorbed = True
                break
        if not absorbed:
            outcome.families.append(family)
            outcome.stats["families"] += 1
    return outcome


def attach_coverage(families: Sequence[Family], corpus_blocks,
                    db) -> None:
    """Fill every family's suite-coverage counters over one corpus."""
    if not families:
        return
    index = corpus_feature_index(corpus_blocks, db)
    for family in families:
        matched, total = family_coverage(family.abstraction, index)
        family.coverage_matched = matched
        family.coverage_total = total


def rank_families(families: List[Family]) -> List[Family]:
    """Rank by suite coverage, then strongest fresh witness, then id."""
    return sorted(families,
                  key=lambda f: (-f.coverage, -f.max_fresh_score, f.id))


# ---------------------------------------------------------------------------
# Standalone driver (``facile generalize REPORT.json``): generalize the
# witnesses of an existing hunt report after the fact.
# ---------------------------------------------------------------------------

@dataclass
class _ReportWitness:
    """A witness reconstructed from a report entry (v1 or v2)."""

    uarch: str
    mode: str
    category: str
    pair: Tuple[str, str]
    score: float
    minimized_lines: Tuple[str, ...]
    raw_hex: str
    loop_cond: str


def _report_witnesses(report: Dict) -> List[_ReportWitness]:
    witnesses = []
    for cluster in report.get("clusters", []):
        for entry in cluster.get("witnesses", []):
            witnesses.append(_ReportWitness(
                uarch=entry["uarch"], mode=entry["mode"],
                category=entry["category"],
                pair=(entry["pair"][0], entry["pair"][1]),
                score=entry["score"],
                minimized_lines=tuple(entry["lines"]),
                raw_hex=entry["hex"],
                # v1 reports predate loop_cond; every condition in
                # LOOP_CONDS macro-fuses identically, so "ne" is an
                # equivalent stand-in.
                loop_cond=entry.get("loop_cond", "ne")))
    return witnesses


def generalize_report(report: Dict, *,
                      known: Sequence[KnownFamily] = (),
                      coverage_corpus: Optional[str] = None,
                      gen_samples: int = DEFAULT_GEN_SAMPLES,
                      fresh_needed: int = DEFAULT_FRESH_WITNESSES,
                      max_families: int = DEFAULT_MAX_FAMILIES,
                      n_workers: Optional[int] = None) -> Dict:
    """Generalize an existing hunt report's witnesses post hoc.

    Returns a new report dict: the input's clusters and witnesses
    unchanged, plus ``families``/``subsumed``/``generalization``
    sections exactly as a ``facile hunt --generalize`` run would emit
    them.  Deterministic given the input report and options (the RNGs
    are keyed on the report's campaign seed and witness bytes).
    """
    import copy

    from repro.discovery.campaign import _Evaluator
    from repro.discovery.coverage import load_coverage_corpus
    from repro.discovery import report as report_mod

    config = report.get("config", {})
    seed = config.get("seed", 0)
    threshold = config.get("threshold")
    if threshold is None:
        raise ValueError("report has no config.threshold")
    predictors = tuple(config.get("predictors", ()))
    if not predictors:
        raise ValueError("report has no config.predictors")

    witnesses = _report_witnesses(report)
    corpus_label, corpus_blocks = load_coverage_corpus(coverage_corpus)

    families: List[Family] = []
    subsumed: List[Dict[str, object]] = []
    stats_updates: Dict[str, Dict[str, int]] = {}
    for abbrev in config.get("uarchs", ()):
        uarch_witnesses = [w for w in witnesses if w.uarch == abbrev]
        evaluator = _Evaluator(abbrev, predictors, n_workers)
        try:
            outcome = generalize_uarch(
                evaluator, uarch_witnesses, samples=gen_samples,
                fresh_needed=fresh_needed, max_families=max_families,
                threshold=threshold, seed=seed, known=known)
            attach_coverage(outcome.families, corpus_blocks,
                            evaluator.db)
            families.extend(outcome.families)
            subsumed.extend(outcome.subsumed)
            stats_updates[abbrev] = {
                "families": outcome.stats["families"],
                "families_folded": outcome.stats["folded"],
                "families_subsumed": outcome.stats["subsumed"],
                "families_unconfirmed": outcome.stats["unconfirmed"],
                "generalize_samples": outcome.stats["gen_samples"],
                "blocks_evaluated": evaluator.blocks_evaluated,
            }
        finally:
            evaluator.close()

    updated = copy.deepcopy(report)
    updated["schema"] = report_mod.SCHEMA
    updated.setdefault("config", {}).update({
        "generalize": True,
        "gen_samples": gen_samples,
        "fresh_witnesses": fresh_needed,
        "max_families": max_families,
    })
    for cluster in updated.get("clusters", []):
        for entry in cluster.get("witnesses", []):
            entry.setdefault("loop_cond", "ne")
    for abbrev, extra in stats_updates.items():
        entry = updated.setdefault("stats", {}).setdefault(abbrev, {})
        entry["blocks_evaluated"] = (
            entry.get("blocks_evaluated", 0)
            + extra.pop("blocks_evaluated"))
        entry.update(extra)
    ranked = rank_families(families)
    updated["families"] = [report_mod._family_entry(f) for f in ranked]
    updated["subsumed"] = [
        {**entry, "score": report_mod._score(entry.get("score"))}
        for entry in subsumed
    ]
    updated["generalization"] = {
        "corpus": corpus_label,
        "corpus_blocks": len(corpus_blocks),
        "known_families": len(known),
    }
    summary = updated.setdefault("summary", {})
    summary["families"] = len(ranked)
    summary["subsumed"] = len(subsumed)
    return updated
