"""Witness minimization: greedy instruction dropping.

A deviating block found by a campaign usually contains instructions
that have nothing to do with the deviation.  :func:`minimize_lines`
shrinks the block body while the deviation persists — the delta-debugging
step AnICA performs before generalizing a discovery:

* in each round, every single-instruction drop of the current body is
  evaluated **as one batch** (so the engine's parallel path and shared
  analysis cache apply);
* the first (lowest-index) drop that keeps the interestingness score at
  or above the threshold is accepted, and the round repeats on the
  shorter body;
* when no single drop preserves the deviation, the body is 1-minimal:
  every remaining instruction is necessary.

The procedure is deterministic: candidate order is positional, and the
scores it consumes are pure functions of the evaluated blocks.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

#: Evaluates a batch of block bodies, returning one interestingness
#: score per body (see :mod:`repro.discovery.interestingness`).
ScoreBatch = Callable[[List[Tuple[str, ...]]], List[float]]


def minimize_lines(lines: Sequence[str], evaluate: ScoreBatch,
                   threshold: float) -> Tuple[Tuple[str, ...], int]:
    """Greedily drop instructions while the deviation persists.

    Args:
        lines: the deviating block body (assembly lines).
        evaluate: batch scorer for candidate bodies (same µarch, mode,
            and tool set that found the deviation).
        threshold: the campaign's interestingness threshold; a drop is
            kept only while the score stays at or above it.

    Returns:
        ``(minimized_lines, trials)`` — the 1-minimal body and how many
        candidate bodies were evaluated on the way.
    """
    current: Tuple[str, ...] = tuple(lines)
    trials = 0
    while len(current) > 1:
        candidates = [current[:i] + current[i + 1:]
                      for i in range(len(current))]
        scores = evaluate(candidates)
        if len(scores) != len(candidates):
            raise ValueError("evaluate() must score every candidate")
        trials += len(candidates)
        for candidate, score in zip(candidates, scores):
            if score >= threshold:
                current = candidate
                break
        else:
            break  # 1-minimal: every instruction is load-bearing
    return current, trials
