"""Campaign reports: canonical JSON plus a human-readable summary.

The JSON report is **canonical**: keys are sorted, floats are rounded
to fixed precision, non-finite values are nulled, and nothing
run-dependent (timestamps, host names, worker counts) is included — so
two runs of the same campaign config produce *byte-identical* files,
which is what makes reports diffable across code changes and lets the
test suite assert determinism directly.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from repro.discovery.campaign import CampaignResult, Witness
from repro.discovery.cluster import Cluster
from repro.discovery.generalize import Family
from repro.discovery.interestingness import ORACLE

#: Report format identifier (bump on breaking layout changes).
#: v2 added generalization: ``families``/``subsumed``/``generalization``
#: sections, per-witness ``loop_cond``, and the generalization knobs in
#: ``config``.
SCHEMA = "facile-hunt-report/v2"

#: Decimal places for scores/errors (cycle values are already rounded
#: to 2 by every tool, so 4 places lose nothing).
_SCORE_DIGITS = 4


def _score(value: Optional[float]) -> Optional[float]:
    """Fixed-precision, JSON-safe rendering of a score/error."""
    if value is None or not math.isfinite(value):
        return None
    return round(value, _SCORE_DIGITS)


def _witness_entry(witness: Witness) -> Dict[str, Any]:
    return {
        "uarch": witness.uarch,
        "mode": witness.mode,
        "category": witness.category,
        "origin": witness.origin,
        "score": _score(witness.score),
        "original_score": _score(witness.original_score),
        "oracle_error": _score(witness.oracle_error),
        "pair": list(witness.pair),
        "pair_values": [_score(v) for v in witness.pair_values],
        "values": {name: _score(value)
                   for name, value in sorted(witness.values.items())},
        "instructions_before": len(witness.original_lines),
        "instructions_after": len(witness.minimized_lines),
        "minimize_trials": witness.minimize_trials,
        "lines": list(witness.minimized_lines),
        "asm": witness.asm.splitlines(),
        "hex": witness.raw_hex,
        "loop_cond": witness.loop_cond,
    }


def _family_entry(family: Family) -> Dict[str, Any]:
    return {
        "id": family.id,
        "uarch": family.uarch,
        "mode": family.mode,
        "category": family.category,
        "pair": list(family.pair),
        "loop_cond": family.loop_cond,
        "abstraction": family.abstraction.to_json(),
        "summary": family.abstraction.summary(),
        "witnesses": list(family.witness_hexes),
        "fresh_witnesses": [
            {
                "lines": list(fresh.lines),
                "hex": fresh.raw_hex,
                "score": _score(fresh.score),
                "values": {name: _score(value)
                           for name, value in sorted(fresh.values.items())},
            }
            for fresh in family.fresh
        ],
        "coverage": _score(family.coverage),
        "coverage_matched": family.coverage_matched,
        "coverage_total": family.coverage_total,
        "widenings": {
            "tried": family.widenings_tried,
            "accepted": family.widenings_accepted,
            "samples_evaluated": family.samples_evaluated,
        },
    }


def _cluster_entry(cluster: Cluster) -> Dict[str, Any]:
    signature = cluster.signature
    return {
        "signature": {
            "uarch": signature.uarch,
            "mode": signature.mode,
            "category": signature.category,
            "bottleneck": signature.bottleneck,
            "ports": signature.ports,
            "pair": list(signature.pair),
        },
        "size": cluster.size,
        "max_score": _score(cluster.max_score),
        "witnesses": [_witness_entry(w) for w in cluster.witnesses],
    }


def campaign_report(result: CampaignResult) -> Dict[str, Any]:
    """The canonical JSON-ready report of one campaign."""
    config = result.config
    return {
        "schema": SCHEMA,
        "oracle": ORACLE,
        "config": {
            # n_workers is deliberately absent: parallelism never
            # changes results, so serial and parallel runs of the same
            # campaign must produce byte-identical reports.
            "seed": config.seed,
            "budget": config.budget,
            "uarchs": list(config.uarchs),
            "predictors": list(config.predictors),
            "modes": list(config.modes),
            "threshold": config.threshold,
            "mutation_rate": config.mutation_rate,
            "max_witnesses": config.max_witnesses,
            "generalize": config.generalize,
            "gen_samples": config.gen_samples,
            "fresh_witnesses": config.fresh_witnesses,
            "max_families": config.max_families,
        },
        "stats": {abbrev: dict(sorted(entries.items()))
                  for abbrev, entries in sorted(result.stats.items())},
        # Unrecovered robustness events (open breakers, skipped tools);
        # always present and [] in a clean run, so fault-injected runs
        # that fully recover stay byte-identical to fault-free ones.
        "incidents": [dict(sorted(entry.items()))
                      for entry in result.incidents],
        # True only for reports rendered out of an interrupted
        # campaign (``facile hunt`` after Ctrl-C).
        "partial": result.partial,
        "summary": {
            "witnesses": len(result.witnesses),
            "clusters": len(result.clusters),
            "top_score": _score(max(
                (w.score for w in result.witnesses), default=None)),
            "families": len(result.families),
            "subsumed": len(result.subsumed),
        },
        "clusters": [_cluster_entry(c) for c in result.clusters],
        # Generalization (``--generalize`` runs; empty/null otherwise):
        # ranked abstract deviation families, witnesses deduped away by
        # subsumption against --known families, and the coverage-corpus
        # provenance.
        "families": [_family_entry(f) for f in result.families],
        "subsumed": [
            {**{key: value for key, value in sorted(entry.items())},
             "score": _score(entry.get("score"))}
            for entry in result.subsumed
        ],
        "generalization": (
            dict(sorted(result.generalization.items()))
            if result.generalization is not None else None),
    }


def render_json(report: Dict[str, Any]) -> str:
    """Serialize a report canonically (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_markdown(report: Dict[str, Any], max_clusters: int = 10,
                    ) -> str:
    """A human-readable summary of a report (``facile hunt`` output)."""
    config = report["config"]
    summary = report["summary"]
    lines: List[str] = ["# facile hunt: deviation report", ""]
    if report.get("partial"):
        lines.append("**PARTIAL REPORT** — the campaign was "
                     "interrupted; completed µarchs only.")
        lines.append("")
    lines.append(
        f"seed {config['seed']} · budget {config['budget']} · µarchs "
        f"{', '.join(config['uarchs'])} · tools "
        f"{', '.join(config['predictors'])} + {report['oracle']} · "
        f"threshold {config['threshold']}")
    lines.append("")
    for abbrev, stats in report["stats"].items():
        lines.append(
            f"- {abbrev}: {stats['candidates']} generated + "
            f"{stats['mutants']} mutants -> {stats['deviating']} "
            f"deviating, {stats['witnesses']} minimized witnesses "
            f"({stats['blocks_evaluated']} block evaluations)")
    lines.append("")
    incidents = report.get("incidents", [])
    if incidents:
        lines.append(f"## Incidents ({len(incidents)} unrecovered "
                     "tool failure(s))")
        lines.append("")
        for incident in incidents:
            lines.append(
                f"- ⚠ {incident['uarch']}: {incident['predictor']} "
                f"skipped ({incident['reason']}, "
                f"{incident['batches']} batch(es)): "
                f"{incident['detail']}")
        lines.append("")
    if not report["clusters"]:
        lines.append("No deviations at this threshold — lower "
                     "`--threshold` or raise `--budget`.")
        return "\n".join(lines) + "\n"

    lines.append(f"## Clusters ({summary['clusters']} total, "
                 f"top score {summary['top_score']})")
    lines.append("")
    lines.append("| # | µarch | mode | category | bottleneck | "
                 "deviating pair | size | max score |")
    lines.append("|---|-------|------|----------|------------|"
                 "----------------|------|-----------|")
    for rank, cluster in enumerate(report["clusters"][:max_clusters], 1):
        signature = cluster["signature"]
        lines.append(
            f"| {rank} | {signature['uarch']} | {signature['mode']} "
            f"| {signature['category']} | {signature['bottleneck']} "
            f"| {' vs '.join(signature['pair'])} | {cluster['size']} "
            f"| {cluster['max_score']} |")
    hidden = len(report["clusters"]) - max_clusters
    if hidden > 0:
        lines.append("")
        lines.append(f"(… {hidden} more cluster(s) in the JSON report)")

    top = report["clusters"][0]
    witness = top["witnesses"][0]
    lines.append("")
    lines.append("## Strongest witness (cluster 1, minimized from "
                 f"{witness['instructions_before']} to "
                 f"{witness['instructions_after']} instructions)")
    lines.append("")
    lines.append("```asm")
    lines.extend(witness["asm"])
    lines.append("```")
    lines.append("")
    values = " · ".join(f"{name}: {value}"
                        for name, value in witness["values"].items())
    lines.append(f"predictions (cycles/iter): {values}")
    lines.append(f"deviating pair: {' vs '.join(witness['pair'])} "
                 f"(score {witness['score']}); ports "
                 f"{top['signature']['ports']}")

    families = report.get("families", [])
    subsumed = report.get("subsumed", [])
    if families or subsumed:
        meta = report.get("generalization") or {}
        lines.append("")
        lines.append(f"## Abstract deviation families ({len(families)} "
                     f"confirmed, coverage over "
                     f"{meta.get('corpus_blocks', 0)} blocks of "
                     f"{meta.get('corpus', '?')})")
        lines.append("")
        if families:
            lines.append("| # | id | µarch | mode | deviating pair | "
                         "insns | coverage | fresh witnesses | "
                         "widened |")
            lines.append("|---|----|-------|------|----------------|"
                         "-------|----------|-----------------|"
                         "---------|")
            for rank, family in enumerate(families, 1):
                scores = [fresh["score"]
                          for fresh in family["fresh_witnesses"]]
                widened = (f"{family['widenings']['accepted']}/"
                           f"{family['widenings']['tried']}")
                lines.append(
                    f"| {rank} | {family['id']} | {family['uarch']} "
                    f"| {family['mode']} "
                    f"| {' vs '.join(family['pair'])} "
                    f"| {len(family['abstraction']['insns'])} "
                    f"| {family['coverage']} "
                    f"({family['coverage_matched']}/"
                    f"{family['coverage_total']}) "
                    f"| {len(scores)} (top {max(scores, default=0)}) "
                    f"| {widened} |")
            top_family = families[0]
            lines.append("")
            lines.append(f"Family 1 ({top_family['id']}) abstract "
                         "instructions:")
            lines.append("")
            for entry in top_family["summary"]:
                lines.append(f"- `{entry}`")
            if top_family["fresh_witnesses"]:
                lines.append("")
                lines.append("Fresh sampled witness (not a campaign "
                             "input, still deviating):")
                lines.append("")
                lines.append("```asm")
                lines.extend(top_family["fresh_witnesses"][0]["lines"])
                lines.append("```")
        if subsumed:
            lines.append("")
            lines.append(f"{len(subsumed)} witness(es) subsumed by "
                         "already-known families (no duplicates "
                         "created): " + ", ".join(sorted(
                             {entry["subsumed_by"]
                              for entry in subsumed})))
    return "\n".join(lines) + "\n"
