"""Cross-campaign dedup of abstract deviations by subsumption.

Signature clustering (:mod:`repro.discovery.cluster`) groups witnesses
that *look* alike; subsumption orders abstract deviations by what they
*mean*: family ``A`` subsumes family ``B`` when every concrete block
``B`` matches, ``A`` matches too (:meth:`AbstractBlock.subsumes`).
Under generalization this replaces signatures as the primary grouping —
a new witness already matched by a known family is reported as
**subsumed** instead of spawning a duplicate family, both within one
campaign and across campaigns (``facile hunt --known PRIOR.json``).

A family's identity is a short hash of its canonical serialization plus
the context the deviation was observed in (µarch, throughput mode, and
the deviating tool pair) — two campaigns that generalize to the same
abstraction get the same id, which is what makes ``subsumed_by``
references stable across reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.discovery.abstraction import AbstractBlock

#: Hex digits of a family id (truncated SHA-256; collision-safe at
#: campaign scale and short enough to read in a report).
_ID_DIGITS = 12


def family_id(abstraction: AbstractBlock, uarch: str, mode: str,
              pair: Sequence[str]) -> str:
    """Deterministic identity of one abstract deviation."""
    payload = json.dumps({
        "abstraction": abstraction.to_json(),
        "uarch": uarch,
        "mode": mode,
        "pair": list(pair),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_ID_DIGITS]


@dataclass
class KnownFamily:
    """One previously-reported family, as loaded from ``--known``."""

    id: str
    uarch: str
    mode: str
    pair: Tuple[str, str]
    abstraction: AbstractBlock

    def same_context(self, uarch: str, mode: str,
                     pair: Sequence[str]) -> bool:
        """Subsumption only relates families observed alike: same
        µarch, same throughput notion, same deviating tools."""
        return (self.uarch == uarch and self.mode == mode
                and tuple(self.pair) == tuple(pair))


def load_known_families(report: Dict) -> List[KnownFamily]:
    """The families of a prior ``facile hunt``/``generalize`` report.

    Reports that predate generalization (schema v1, or v2 runs without
    ``--generalize``) simply contribute no families.

    Raises:
        ValueError: on a malformed ``families`` section.
    """
    known: List[KnownFamily] = []
    for entry in report.get("families", []):
        try:
            known.append(KnownFamily(
                id=entry["id"],
                uarch=entry["uarch"],
                mode=entry["mode"],
                pair=(entry["pair"][0], entry["pair"][1]),
                abstraction=AbstractBlock.from_json(entry["abstraction"]),
            ))
        except (KeyError, IndexError, TypeError) as exc:
            raise ValueError(
                f"malformed family entry in known report: {exc}") from None
    return known


def subsuming_family(known: Sequence[KnownFamily], uarch: str, mode: str,
                     pair: Sequence[str],
                     abstraction: AbstractBlock) -> KnownFamily | None:
    """The first known family that subsumes *abstraction*, if any."""
    for candidate in known:
        if candidate.same_context(uarch, mode, pair) \
                and candidate.abstraction.subsumes(abstraction):
            return candidate
    return None
