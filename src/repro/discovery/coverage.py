"""Suite coverage of abstract deviations (AnICA's ``bbset_coverage``).

A family is only as interesting as the fraction of *real-world-like*
blocks it explains: a deviation family matching 20% of a BHive-style
suite points at a systematic modeling difference, one matching a single
exotic block is a curiosity.  This module scores each family against a
corpus — by default the repo's deterministic benchmark suite
(:func:`repro.bhive.suite.default_suite`), or any hex-per-line /
BHive-CSV file via ``facile hunt --coverage CORPUS``.

Corpus blocks that cannot be decoded by the subset ISA (foreign
corpora) or that use extensions the campaign µarch lacks are counted in
the denominator but can never match — coverage is "fraction of the
corpus as given", not "fraction of the blocks we happen to model".
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bhive.suite import default_suite
from repro.discovery.abstraction import AbstractBlock, block_features
from repro.engine.persist import load_corpus
from repro.isa.block import BasicBlock
from repro.uops.database import UopsDatabase


def load_coverage_corpus(path: Optional[str] = None,
                         ) -> Tuple[str, List[Optional[BasicBlock]]]:
    """(label, blocks) of the coverage corpus.

    Without a *path* the default benchmark suite is used (deterministic:
    fixed size and seed).  With one, each line's hex field is decoded;
    undecodable blocks stay in the list as ``None`` so the coverage
    denominator reflects the corpus as given.
    """
    if path is None:
        suite = default_suite()
        return (f"default-suite-{len(suite)}",
                [bench.block(loop=False) for bench in suite])
    blocks: List[Optional[BasicBlock]] = []
    for hexstr in load_corpus(path):
        try:
            blocks.append(BasicBlock.from_bytes(bytes.fromhex(hexstr)))
        except Exception:
            blocks.append(None)
    # The label is provenance inside a byte-reproducible report: use the
    # basename so the same corpus yields the same report everywhere.
    return os.path.basename(path) or path, blocks


def corpus_feature_index(blocks: Sequence[Optional[BasicBlock]],
                         db: UopsDatabase) -> List[Optional[List[Dict]]]:
    """Per-block concrete feature vectors, computed once per corpus.

    Blocks that failed to decode — or use extensions this µarch lacks —
    map to ``None`` (they can never match a family on it).
    """
    index: List[Optional[List[Dict]]] = []
    for block in blocks:
        if block is None:
            index.append(None)
            continue
        try:
            body = block.without_final_branch()
            index.append(block_features(body.instructions, db))
        except Exception:
            index.append(None)
    return index


def family_coverage(abstraction: AbstractBlock,
                    feature_index: Sequence[Optional[List[Dict]]],
                    ) -> Tuple[int, int]:
    """``(matched, total)`` of one family over a prepared corpus."""
    matched = sum(
        1 for features in feature_index
        if features is not None and abstraction.matches_features(features))
    return matched, len(feature_index)
