"""Campaign checkpoints: periodic, resumable evaluation caches.

A checkpoint is *not* a snapshot of campaign control flow — it is the
campaign's **evaluation cache**, persisted as canonical JSON: a map
from ``(µarch, mode, block hex)`` to the per-tool cycle values that
evaluation produced.  Because everything downstream of the config is a
pure function of these values (generation is seeded, scoring /
minimization / clustering are deterministic), resuming a hunt replays
the exact same control flow and merely *reads* the already-evaluated
blocks from the cache instead of re-running the tools.  The resumed
report is therefore byte-identical to an uninterrupted run's.

Layout (schema ``facile-hunt-checkpoint/v1``)::

    {
      "schema": "facile-hunt-checkpoint/v1",
      "config": { ... the campaign's canonical config ... },
      "evaluations": {
        "SKL|loop|4801d875f4": {"Facile": 1.0, "uiCA": 1.0,
                                 "oracle": 1.0},
        ...
      }
    }

The embedded config is the same canonical dict the report carries
(``n_workers`` excluded — parallelism never changes results), and a
resume refuses a checkpoint whose config differs from the requested
campaign: silently mixing values from a different seed or tool set
would produce a report that *looks* valid but corresponds to no
actual configuration.

Writes are atomic (temp file + ``os.replace``) so an interrupt — the
exact event checkpoints exist for — can never leave a half-written
file behind.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

#: Checkpoint format identifier (bump on breaking layout changes).
SCHEMA = "facile-hunt-checkpoint/v1"

#: Default flush cadence: one atomic write per this many newly
#: evaluated blocks (the CLI's ``--checkpoint-every``).
DEFAULT_EVERY = 50


class CheckpointError(ValueError):
    """An unusable checkpoint file (bad JSON, schema, or config)."""


def config_fingerprint(config) -> Dict:
    """The canonical config dict a checkpoint binds to.

    Matches the report's ``config`` section exactly: every field that
    determines results, and nothing (``n_workers``) that does not.
    """
    return {
        "seed": config.seed,
        "budget": config.budget,
        "uarchs": list(config.uarchs),
        "predictors": list(config.predictors),
        "modes": list(config.modes),
        "threshold": config.threshold,
        "mutation_rate": config.mutation_rate,
        "max_witnesses": config.max_witnesses,
        "generalize": config.generalize,
        "gen_samples": config.gen_samples,
        "fresh_witnesses": config.fresh_witnesses,
        "max_families": config.max_families,
    }


class CheckpointStore:
    """The evaluation cache behind ``--checkpoint`` / ``--resume``.

    Args:
        path: where flushes write the checkpoint (atomically).
        config: the campaign the store belongs to; recorded in the
            file and enforced on :meth:`resume`.
        every: flush after this many :meth:`put` calls (>= 1).

    Use :meth:`resume` instead of the constructor to continue from an
    existing checkpoint file.
    """

    def __init__(self, path: str, config, *, every: int = DEFAULT_EVERY):
        if every < 1:
            raise ValueError("checkpoint cadence must be >= 1")
        self.path = path
        self.every = every
        self._fingerprint = config_fingerprint(config)
        self._entries: Dict[str, Dict[str, float]] = {}
        self._dirty = 0
        self.hits = 0
        self.flushes = 0

    @classmethod
    def resume(cls, resume_path: str, config, *,
               path: Optional[str] = None,
               every: int = DEFAULT_EVERY) -> "CheckpointStore":
        """Load *resume_path* and continue writing to *path* (defaults
        to the same file).

        Raises:
            CheckpointError: unreadable file, wrong schema, or a config
                that differs from *config* (a checkpoint only resumes
                the exact campaign it was taken from).
        """
        try:
            with open(resume_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {resume_path!r}: {exc}") from None
        except ValueError as exc:
            raise CheckpointError(
                f"checkpoint {resume_path!r} is not valid JSON: "
                f"{exc}") from None
        if not isinstance(data, dict) or data.get("schema") != SCHEMA:
            raise CheckpointError(
                f"checkpoint {resume_path!r} has schema "
                f"{data.get('schema')!r} (expected {SCHEMA!r})"
                if isinstance(data, dict) else
                f"checkpoint {resume_path!r} is not a JSON object")
        store = cls(path if path is not None else resume_path, config,
                    every=every)
        if data.get("config") != store._fingerprint:
            raise CheckpointError(
                f"checkpoint {resume_path!r} was taken from a different "
                "campaign config; resume with the original seed / "
                "budget / tool set, or start fresh without --resume")
        evaluations = data.get("evaluations")
        if not isinstance(evaluations, dict):
            raise CheckpointError(
                f"checkpoint {resume_path!r} has no 'evaluations' map")
        for key, values in evaluations.items():
            if (not isinstance(values, dict)
                    or not all(isinstance(v, (int, float))
                               and not isinstance(v, bool)
                               for v in values.values())):
                raise CheckpointError(
                    f"checkpoint {resume_path!r}: malformed entry "
                    f"{key!r}")
            store._entries[key] = {name: float(value)
                                   for name, value in values.items()}
        return store

    # -- cache protocol ------------------------------------------------

    @staticmethod
    def _key(uarch: str, mode: str, raw_hex: str) -> str:
        return f"{uarch}|{mode}|{raw_hex}"

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, uarch: str, mode: str,
            raw_hex: str) -> Optional[Dict[str, float]]:
        """The cached per-tool values of one evaluation, if present."""
        values = self._entries.get(self._key(uarch, mode, raw_hex))
        if values is not None:
            self.hits += 1
        return values

    def put(self, uarch: str, mode: str, raw_hex: str,
            values: Dict[str, float]) -> None:
        """Record one evaluation; flushes every :attr:`every` puts."""
        self._entries[self._key(uarch, mode, raw_hex)] = dict(values)
        self._dirty += 1
        if self._dirty >= self.every:
            self.flush()

    # -- persistence ---------------------------------------------------

    def flush(self) -> None:
        """Write the checkpoint atomically (canonical JSON)."""
        payload = {
            "schema": SCHEMA,
            "config": self._fingerprint,
            "evaluations": self._entries,
        }
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self.path)
        self._dirty = 0
        self.flushes += 1
