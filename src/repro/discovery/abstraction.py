"""Abstract basic blocks: per-instruction feature lattices (AnICA-style).

A minimized witness is one concrete deviating block; what a report
should carry is the *family* it stands for.  Families are expressed as
**abstract blocks**: one abstract instruction per witness instruction,
each a product of small feature lattices:

* ``mnemonic`` — singleton domain over assembly mnemonics;
* ``archetype`` — singleton domain over uops-database archetypes (the
  instruction *category* the throughput models key on);
* ``ports`` — power-set domain over canonical port-usage multisets
  (what execution resources the instruction's µops can occupy on the
  campaign's µarch);
* ``width`` — power-set domain over maximal operand widths in bits;
* ``mem`` — singleton domain over memory behaviour
  (``none``/``load``/``store``/``rmw``);
* ``aliasing`` — singleton boolean domain: does the instruction read a
  general-purpose/vector register written earlier in the block
  (i.e. does it sit on an in-block dependence chain)?

Each domain is a tiny lattice: ``BOTTOM`` (matches nothing) up to
``TOP`` (matches anything), with :meth:`subsumes` as the order and
:meth:`join` as the least upper bound of a concrete observation.  An
:class:`AbstractBlock` then supports

* :meth:`~AbstractBlock.matches` — does a concrete instruction stream
  contain this family (order-preserving subsequence embedding)?
* :meth:`~AbstractBlock.subsumes` — is another abstract block a
  special case of this one (the cross-campaign dedup order used by
  :mod:`repro.discovery.subsumption`)?
* :meth:`~AbstractBlock.sample` — draw a fresh *concrete* block that
  the family matches, via the finite template universe of
  :mod:`repro.isa.templates` (the generalization loop's validator and
  the source of a family's fresh witnesses);
* :meth:`~AbstractBlock.to_json` / :meth:`~AbstractBlock.from_json` —
  canonical, byte-stable serialization for reports and dedup ids.

Greedy subsequence embedding is exact here: per-position predicates
are independent, so a leftmost-first embedding exists whenever any
embedding does.
"""

from __future__ import annotations

import json
import random
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.discovery.cluster import canonical_port_set, \
    format_port_multiset
from repro.isa.block import BasicBlock
from repro.isa.instruction import Instruction
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.isa.registers import RegisterKind, gpr, register_by_name, vec
from repro.isa.templates import InstrTemplate, SlotKind, all_templates
from repro.uops.database import UnsupportedInstruction, UopsDatabase

#: Feature evaluation/widening order (fixed: serialization, widening and
#: reports all walk features in this order).
FEATURE_ORDER: Tuple[str, ...] = (
    "mnemonic", "archetype", "ports", "width", "mem", "aliasing")

#: Features carried by a power-set domain (the rest are singletons).
POWERSET_FEATURES = frozenset(("ports", "width"))

#: Data GPR encodings the sampler draws from (rax, rcx, rdx, rbx,
#: r8-r11) — rsp/rbp and the pointer registers are reserved for stacks
#: and memory bases, mirroring the block generator's register budget.
_DATA_ENCS = (0, 1, 2, 3, 8, 9, 10, 11)

#: Pointer registers used as memory bases (the generator's pool).
_PTR_REGS = ("rsi", "rdi", "r12", "r13", "r14", "r15", "rbp")

#: Displacements the sampler draws for memory operands.
_DISPS = (0, 8, 16, 24, 32, 64, 128, 256)


class SingletonFeature:
    """A three-level lattice: ``BOTTOM`` < one concrete value < ``TOP``."""

    __slots__ = ("is_top", "is_bottom", "value")

    def __init__(self, value=None, *, top: bool = False,
                 bottom: bool = False):
        self.is_top = top
        self.is_bottom = bottom and not top
        self.value = None if (top or self.is_bottom) else value

    @classmethod
    def bottom(cls) -> "SingletonFeature":
        return cls(bottom=True)

    def admits(self, value) -> bool:
        """Does this abstract feature match the concrete *value*?"""
        if self.is_top:
            return True
        if self.is_bottom:
            return False
        return self.value == value

    def subsumes(self, other: "SingletonFeature") -> bool:
        if self.is_top or other.is_bottom:
            return True
        if other.is_top or self.is_bottom:
            return False
        return self.value == other.value

    def join(self, value) -> None:
        """Raise this feature to cover the concrete *value* too."""
        if self.is_top:
            return
        if self.is_bottom:
            self.is_bottom = False
            self.value = value
        elif self.value != value:
            self.widen()

    def widen(self) -> None:
        self.is_top, self.is_bottom, self.value = True, False, None

    def clone(self) -> "SingletonFeature":
        return SingletonFeature(self.value, top=self.is_top,
                                bottom=self.is_bottom)

    def to_json(self):
        if self.is_top:
            return {"top": True}
        if self.is_bottom:
            return {"bottom": True}
        return {"value": self.value}

    @classmethod
    def from_json(cls, spec) -> "SingletonFeature":
        if spec.get("top"):
            return cls(top=True)
        if spec.get("bottom"):
            return cls.bottom()
        return cls(spec["value"])

    def __str__(self) -> str:
        if self.is_top:
            return "*"
        if self.is_bottom:
            return "⊥"
        return str(self.value)


class PowerSetFeature:
    """A power-set lattice: a set of admitted values, or ``TOP``.

    ``BOTTOM`` is the empty set; :meth:`join` adds values; the order is
    set inclusion.
    """

    __slots__ = ("is_top", "values")

    def __init__(self, values: Iterable = (), *, top: bool = False):
        self.is_top = top
        self.values: Set = set() if top else set(values)

    @classmethod
    def bottom(cls) -> "PowerSetFeature":
        return cls()

    @property
    def is_bottom(self) -> bool:
        return not self.is_top and not self.values

    def admits(self, value) -> bool:
        return self.is_top or value in self.values

    def subsumes(self, other: "PowerSetFeature") -> bool:
        if self.is_top:
            return True
        if other.is_top:
            return False
        return other.values <= self.values

    def join(self, value) -> None:
        if not self.is_top:
            self.values.add(value)

    def widen(self) -> None:
        self.is_top, self.values = True, set()

    def clone(self) -> "PowerSetFeature":
        return PowerSetFeature(self.values, top=self.is_top)

    def to_json(self):
        if self.is_top:
            return {"top": True}
        return {"values": sorted(self.values)}

    @classmethod
    def from_json(cls, spec) -> "PowerSetFeature":
        if spec.get("top"):
            return cls(top=True)
        return cls(spec["values"])

    def __str__(self) -> str:
        if self.is_top:
            return "*"
        if not self.values:
            return "⊥"
        return "{" + ",".join(str(v) for v in sorted(self.values)) + "}"


def _feature_bottom(name: str):
    if name in POWERSET_FEATURES:
        return PowerSetFeature.bottom()
    return SingletonFeature.bottom()


def _feature_from_json(name: str, spec):
    if name in POWERSET_FEATURES:
        return PowerSetFeature.from_json(spec)
    return SingletonFeature.from_json(spec)


def instruction_port_signature(info) -> str:
    """One instruction's canonical port-usage multiset string.

    The per-instruction analogue of
    :func:`repro.discovery.cluster.port_multiset_signature`:
    ``"1x(0,1,5,6)"`` for a one-µop ALU instruction, ``"-"`` for
    eliminated µops and NOPs (nothing dispatched).
    """
    counts: Counter = Counter()
    for ports in info.port_sets:
        counts[canonical_port_set(ports)] += 1
    return format_port_multiset(counts)


def _template_width(template: InstrTemplate) -> int:
    """Maximal operand width of a template in bits (0: no operands)."""
    return max((slot.width for slot in template.slots), default=0)


def _template_mem(template: InstrTemplate) -> str:
    if template.loads and template.stores:
        return "rmw"
    if template.loads:
        return "load"
    if template.stores:
        return "store"
    return "none"


def instruction_features(instr: Instruction, db: UopsDatabase,
                         written_roots: Set[str]) -> Dict[str, object]:
    """The concrete feature vector of one instruction in block context.

    *written_roots* holds the root names of GPR/VEC registers written
    by earlier instructions of the block (flags and implicit chains are
    deliberately excluded from the aliasing feature: nearly every
    instruction writes flags, so a flags-based aliasing bit would carry
    no information).
    """
    template = instr.template
    aliases = any(
        reg.kind in (RegisterKind.GPR, RegisterKind.VEC)
        and reg.name in written_roots
        for reg in instr.regs_read())
    return {
        "mnemonic": instr.mnemonic,
        "archetype": template.uop_archetype,
        "ports": instruction_port_signature(db.info(instr)),
        "width": _template_width(template),
        "mem": _template_mem(template),
        "aliasing": aliases,
    }


def block_features(instructions: Sequence[Instruction],
                   db: UopsDatabase) -> List[Dict[str, object]]:
    """Per-instruction concrete feature vectors of a block body.

    Raises:
        UnsupportedInstruction: when the block uses an ISA extension
            the database's µarch lacks (callers matching foreign
            corpora catch this and count the block as unmatched).
    """
    features = []
    written: Set[str] = set()
    for instr in instructions:
        features.append(instruction_features(instr, db, written))
        for reg in instr.regs_written():
            if reg.kind in (RegisterKind.GPR, RegisterKind.VEC):
                written.add(reg.name)
    return features


class AbstractInsn:
    """One abstract instruction: a product of feature lattices."""

    __slots__ = ("features",)

    def __init__(self, features: Optional[Dict[str, object]] = None):
        self.features = features if features is not None else {
            name: _feature_bottom(name) for name in FEATURE_ORDER}

    @classmethod
    def from_concrete(cls, concrete: Dict[str, object]) -> "AbstractInsn":
        insn = cls()
        insn.join(concrete)
        return insn

    def admits(self, concrete: Dict[str, object]) -> bool:
        return all(self.features[name].admits(concrete[name])
                   for name in FEATURE_ORDER)

    def subsumes(self, other: "AbstractInsn") -> bool:
        return all(self.features[name].subsumes(other.features[name])
                   for name in FEATURE_ORDER)

    def join(self, concrete: Dict[str, object]) -> None:
        for name in FEATURE_ORDER:
            self.features[name].join(concrete[name])

    def widen(self, name: str) -> None:
        self.features[name].widen()

    def is_top(self, name: str) -> bool:
        return self.features[name].is_top

    def clone(self) -> "AbstractInsn":
        return AbstractInsn({name: feature.clone()
                             for name, feature in self.features.items()})

    def to_json(self) -> Dict[str, object]:
        return {name: self.features[name].to_json()
                for name in FEATURE_ORDER}

    @classmethod
    def from_json(cls, spec: Dict[str, object]) -> "AbstractInsn":
        return cls({name: _feature_from_json(name, spec[name])
                    for name in FEATURE_ORDER})

    def __str__(self) -> str:
        return " ".join(f"{name}={self.features[name]}"
                        for name in FEATURE_ORDER)


class AbstractBlock:
    """An abstract basic block: a sequence of abstract instructions.

    The concretization is every instruction stream that *contains* the
    abstract instructions as an order-preserving subsequence — longer
    blocks exhibiting the family's pattern still belong to it, which is
    what both the coverage metric and cross-campaign subsumption want.
    """

    __slots__ = ("insns",)

    def __init__(self, insns: Sequence[AbstractInsn]):
        self.insns = list(insns)

    # -- construction --------------------------------------------------

    @classmethod
    def from_instructions(cls, instructions: Sequence[Instruction],
                          db: UopsDatabase) -> "AbstractBlock":
        """The most precise abstraction of one concrete block body."""
        return cls([AbstractInsn.from_concrete(concrete)
                    for concrete in block_features(instructions, db)])

    def clone(self) -> "AbstractBlock":
        return AbstractBlock([insn.clone() for insn in self.insns])

    # -- lattice / matching --------------------------------------------

    def matches_features(
            self, features: Sequence[Dict[str, object]]) -> bool:
        """Greedy subsequence embedding against concrete features."""
        position = 0
        for insn in self.insns:
            while position < len(features) \
                    and not insn.admits(features[position]):
                position += 1
            if position >= len(features):
                return False
            position += 1
        return True

    def matches(self, instructions: Sequence[Instruction],
                db: UopsDatabase) -> bool:
        """Does the family match this concrete instruction stream?"""
        if len(instructions) < len(self.insns):
            return False
        try:
            features = block_features(instructions, db)
        except UnsupportedInstruction:
            return False
        return self.matches_features(features)

    def subsumes(self, other: "AbstractBlock") -> bool:
        """Is *other* a special case of this family?

        True when this block's abstract instructions embed as an
        order-preserving subsequence of *other*'s with per-feature
        subsumption — then every concrete block *other* matches, this
        block matches too.
        """
        position = 0
        for insn in self.insns:
            while position < len(other.insns) \
                    and not insn.subsumes(other.insns[position]):
                position += 1
            if position >= len(other.insns):
                return False
            position += 1
        return True

    # -- serialization -------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {"insns": [insn.to_json() for insn in self.insns]}

    @classmethod
    def from_json(cls, spec: Dict[str, object]) -> "AbstractBlock":
        return cls([AbstractInsn.from_json(entry)
                    for entry in spec["insns"]])

    def canonical_json(self) -> str:
        """Byte-stable serialization (dedup ids hash this)."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    def summary(self) -> List[str]:
        return [str(insn) for insn in self.insns]

    # -- sampling ------------------------------------------------------

    def sample(self, rng: random.Random, db: UopsDatabase,
               max_tries: int = 20) -> Optional[List[Instruction]]:
        """Draw a fresh concrete block body the family matches.

        Per abstract instruction, a template is drawn from the feasible
        subset of the finite template universe and instantiated with
        registers honoring the ``aliasing`` feature; the assembled body
        is then re-checked with :meth:`matches`, so a returned sample
        is *guaranteed* to belong to the family.  Returns ``None`` when
        *max_tries* rejection rounds all fail (an over-constrained
        abstraction — e.g. aliasing required on an instruction with no
        register sources).
        """
        table = template_feature_table(db)
        candidates: List[List[str]] = []
        for insn in self.insns:
            feasible = [name for name, features in table
                        if _template_admissible(insn, features)]
            if not feasible:
                return None
            candidates.append(feasible)
        by_name = {t.name: t for t in all_templates()}
        for _ in range(max_tries):
            instructions: List[Instruction] = []
            written: Set[str] = set()
            ok = True
            for insn, feasible in zip(self.insns, candidates):
                template = by_name[rng.choice(feasible)]
                built = _instantiate(template, insn, rng, written)
                if built is None:
                    ok = False
                    break
                instructions.append(built)
                for reg in built.regs_written():
                    if reg.kind in (RegisterKind.GPR, RegisterKind.VEC):
                        written.add(reg.name)
            if ok and self.matches(instructions, db):
                return instructions
        return None


def _template_admissible(insn: AbstractInsn,
                         features: Dict[str, object]) -> bool:
    """Can a template's canonical instantiation satisfy *insn*?

    The ``aliasing`` feature is left to instantiation (it depends on
    block context, not the template).
    """
    return all(insn.features[name].admits(features[name])
               for name in FEATURE_ORDER if name != "aliasing")


def template_feature_table(db: UopsDatabase) \
        -> List[Tuple[str, Dict[str, object]]]:
    """Feasible-template index: (name, canonical features) per template.

    Built once per database (i.e. per µarch) and memoized on it.
    Branches are excluded — campaign bodies never contain them (loop
    back edges are appended separately) — as are templates using ISA
    extensions the µarch lacks.
    """
    cached = getattr(db, "_abstraction_template_table", None)
    if cached is not None:
        return cached
    table: List[Tuple[str, Dict[str, object]]] = []
    for template in all_templates():
        if template.is_branch:
            continue
        if not db.cfg.supports(template.feature):
            continue
        instr = _canonical_instance(template)
        if instr is None:
            continue
        features = {
            "mnemonic": template.mnemonic,
            "archetype": template.uop_archetype,
            "ports": instruction_port_signature(db.info(instr)),
            "width": _template_width(template),
            "mem": _template_mem(template),
        }
        table.append((template.name, features))
    db._abstraction_template_table = table
    return table


def _canonical_instance(template: InstrTemplate) -> Optional[Instruction]:
    """A fixed representative instantiation of *template*.

    Distinct registers per slot (so no zero-idiom elimination skews the
    canonical port signature), a plain base+disp memory shape, and
    small immediates.
    """
    operands = []
    for position, slot in enumerate(template.slots):
        if slot.kind is SlotKind.REG:
            enc = _DATA_ENCS[position % len(_DATA_ENCS)]
            reg = vec(enc, slot.width) if slot.regclass == "vec" \
                else gpr(enc, slot.width)
            operands.append(RegOperand(reg))
        elif slot.kind is SlotKind.MEM:
            operands.append(MemOperand(
                base=register_by_name("rsi"), disp=0, width=slot.width))
        else:
            operands.append(ImmOperand(1, slot.width))
    try:
        return Instruction.create(template, tuple(operands))
    except (ValueError, KeyError):
        return None


def _instantiate(template: InstrTemplate, insn: AbstractInsn,
                 rng: random.Random,
                 written: Set[str]) -> Optional[Instruction]:
    """Randomly instantiate *template* honoring the aliasing feature."""
    aliasing = insn.features["aliasing"]
    must_alias = (not aliasing.is_top and aliasing.admits(True)
                  and not aliasing.admits(False))
    must_not_alias = (not aliasing.is_top and aliasing.admits(False)
                      and not aliasing.admits(True))

    def pick_reg(slot, avoid_written: bool):
        if slot.regclass == "vec":
            pool = list(range(16))
            make = lambda enc: vec(enc, slot.width)  # noqa: E731
        else:
            pool = list(_DATA_ENCS)
            make = lambda enc: gpr(enc, slot.width)  # noqa: E731
        rng.shuffle(pool)
        for enc in pool:
            reg = make(enc)
            if avoid_written and reg.root().name in written:
                continue
            return reg
        return None

    alias_done = not must_alias
    operands = []
    for slot in template.slots:
        if slot.kind is SlotKind.REG:
            if not alias_done and slot.access.reads:
                reg = _written_reg_at(slot, written, rng)
                if reg is None:
                    return None
                operands.append(RegOperand(reg))
                alias_done = True
                continue
            reg = pick_reg(slot, avoid_written=must_not_alias)
            if reg is None:
                return None
            operands.append(RegOperand(reg))
        elif slot.kind is SlotKind.MEM:
            base = register_by_name(rng.choice(_PTR_REGS))
            if must_not_alias and base.root().name in written:
                bases = [n for n in _PTR_REGS
                         if register_by_name(n).root().name not in written]
                if not bases:
                    return None
                base = register_by_name(rng.choice(bases))
            operands.append(MemOperand(base=base, disp=rng.choice(_DISPS),
                                       width=slot.width))
        else:
            operands.append(ImmOperand(_draw_imm(rng, slot.width),
                                       slot.width))
    if not alias_done:
        return None  # aliasing required but no readable register slot
    try:
        return Instruction.create(template, tuple(operands))
    except (ValueError, KeyError):
        return None


def _written_reg_at(slot, written: Set[str],
                    rng: random.Random):
    """A previously-written register viewed at the slot's width/class."""
    wanted = RegisterKind.VEC if slot.regclass == "vec" else RegisterKind.GPR
    roots = sorted(written)
    rng.shuffle(roots)
    for name in roots:
        root = register_by_name(name)
        if root.kind is not wanted:
            continue
        try:
            if wanted is RegisterKind.VEC:
                return vec(root.enc, slot.width)
            return gpr(root.enc, slot.width)
        except KeyError:
            continue
    return None


def _draw_imm(rng: random.Random, width: int) -> int:
    """A small positive immediate that fits every encoded width."""
    if width == 8:
        return rng.randrange(1, 100)
    if width == 16:
        return rng.randrange(256, 30000)
    return rng.randrange(1, 1 << 20)


def sample_block(abstraction: AbstractBlock, rng: random.Random,
                 db: UopsDatabase,
                 max_tries: int = 20) -> Optional[BasicBlock]:
    """Convenience wrapper: a sampled body as a :class:`BasicBlock`."""
    instructions = abstraction.sample(rng, db, max_tries=max_tries)
    if instructions is None:
        return None
    return BasicBlock(instructions)
