"""Scoring how *interesting* a block's predictor disagreement is.

Following AnICA (Ritter & Hack, 2022), a candidate block is interesting
when the tools under test disagree about it.  The oracle simulator
participates as just another tool (named :data:`ORACLE`), so "predictor
X deviates from the measurement" and "predictor X deviates from
predictor Y" are ranked on one scale:

* the **score** is the maximum pairwise relative disagreement over all
  tool pairs (:func:`repro.eval.metrics.relative_disagreement` — the
  absolute difference normalized by the pair mean, symmetric and
  bounded by 2);
* the **oracle error** additionally reports the worst relative error of
  any predictor against the oracle
  (:func:`repro.eval.metrics.relative_error`), when an oracle value is
  present.

All ties are broken on the lexicographically smallest tool pair, so a
score — like everything else in the discovery layer — is a pure,
deterministic function of the (rounded) per-tool predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.eval.metrics import relative_disagreement, relative_error

#: The tool name under which oracle-simulator measurements participate.
ORACLE = "oracle"

#: Default interestingness threshold: the deviating pair differs by
#: at least ~50% of its mean — well past what rounding or mild modeling
#: differences produce, but easily reached when a tool misses a whole
#: pipeline effect (a missing front end, fusion, move elimination, ...).
DEFAULT_THRESHOLD = 0.5


@dataclass(frozen=True)
class BlockScore:
    """The interestingness verdict for one (block, mode) evaluation.

    Attributes:
        score: max pairwise relative disagreement over all tools.
        pair: the (alphabetically ordered) tool pair attaining it.
        pair_values: the two predictions of that pair, in pair order.
        oracle_error: worst predictor-vs-oracle relative error, or
            ``None`` when the evaluation carried no oracle measurement.
    """

    score: float
    pair: Tuple[str, str]
    pair_values: Tuple[float, float]
    oracle_error: Optional[float]

    def interesting(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        return self.score >= threshold


def score_values(values: Mapping[str, float]) -> BlockScore:
    """Score one block's per-tool predictions (oracle included).

    Args:
        values: tool name -> predicted (or, for :data:`ORACLE`,
            measured) cycles per iteration.  Needs at least two tools.
    """
    names = sorted(values)
    if len(names) < 2:
        raise ValueError("need at least two tools to disagree")
    best_score = -1.0
    best_pair = (names[0], names[0])
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            disagreement = relative_disagreement(values[a], values[b])
            if disagreement > best_score:
                best_score = disagreement
                best_pair = (a, b)
    oracle_error: Optional[float] = None
    if ORACLE in values:
        oracle_error = max(
            relative_error(values[ORACLE], values[name])
            for name in names if name != ORACLE)
    return BlockScore(
        score=best_score, pair=best_pair,
        pair_values=(values[best_pair[0]], values[best_pair[1]]),
        oracle_error=oracle_error)
