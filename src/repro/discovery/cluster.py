"""Deviation clustering: group minimized witnesses that generalize alike.

A campaign typically finds many concrete witnesses of the same
underlying modeling difference (e.g. "tool X has no front end, so every
predecoder-bound block deviates").  Witnesses are therefore grouped by a
**generalization signature** — the abstract features that determine how
the deviation generalizes, not the concrete instruction bytes:

* the µarch and throughput notion the deviation was observed under;
* the generator category the block came from;
* the bottleneck component Facile reports for the minimized block (the
  argmax of its per-component bounds, i.e. what
  ``Facile.component_bound`` maximizes over);
* the canonical port-usage multiset of the minimized block's µops (the
  same key the global Ports memo uses);
* the deviating tool pair.

Clusters are ranked by their strongest witness (then size, then
signature) so reports lead with the most dramatic deviation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Signature:
    """The generalization signature one witness clusters under."""

    uarch: str
    mode: str
    category: str
    bottleneck: str
    ports: str
    pair: Tuple[str, str]

    def key(self) -> Tuple[str, str, str, str, str, Tuple[str, str]]:
        """Deterministic sort/grouping key."""
        return (self.uarch, self.mode, self.category, self.bottleneck,
                self.ports, self.pair)


def canonical_port_set(ports) -> Tuple[int, ...]:
    """One µop's port set in canonical (numeric) order.

    Ports are compared *as numbers*: a port labelled ``"10"`` sorts
    after ``"2"``, not before it, so signatures are stable no matter
    whether a caller carries ports as ints or strings and no matter the
    set's iteration order.
    """
    return tuple(sorted(int(p) for p in ports))


def format_port_multiset(counts: Dict[Tuple[int, ...], int]) -> str:
    """Render a ``{canonical port set: µop count}`` multiset canonically.

    E.g. ``"2x(0,1,5) 1x(2,3)"``; an empty multiset renders as ``"-"``.
    """
    if not counts:
        return "-"
    return " ".join(f"{count}x({','.join(str(p) for p in ports)})"
                    for ports, count in sorted(counts.items()))


def port_multiset_signature(ops) -> str:
    """Canonical string form of a macro-op stream's port-usage multiset.

    E.g. ``"2x(0,1,5) 1x(2,3)"`` — two µops steerable to ports {0,1,5}
    and one load µop on {2,3}.  Eliminated µops and NOPs contribute no
    port sets (they are never dispatched) and an empty multiset renders
    as ``"-"``.
    """
    counts: Counter = Counter()
    for op in ops:
        for ports in op.info.port_sets:
            counts[canonical_port_set(ports)] += 1
    return format_port_multiset(counts)


@dataclass
class Cluster:
    """All witnesses sharing one generalization signature."""

    signature: Signature
    witnesses: List  # of repro.discovery.campaign.Witness

    @property
    def size(self) -> int:
        return len(self.witnesses)

    @property
    def max_score(self) -> float:
        return max(w.score for w in self.witnesses)


def cluster_witnesses(witnesses: Sequence) -> List[Cluster]:
    """Group witnesses by signature and rank the clusters.

    Within a cluster, witnesses are ordered strongest-first; clusters
    are ranked by (max score, size) descending with the signature as a
    deterministic tiebreaker.
    """
    groups: Dict[Signature, List] = {}
    for witness in witnesses:
        groups.setdefault(witness.signature, []).append(witness)
    clusters = []
    for signature, members in groups.items():
        members.sort(key=lambda w: (-w.score, w.minimized_lines))
        clusters.append(Cluster(signature, members))
    clusters.sort(key=lambda c: (-c.max_score, -c.size,
                                 c.signature.key()))
    return clusters
