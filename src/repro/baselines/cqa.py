"""CQA analog: detailed front end and static port tables, no scheduler.

CQA models the front end of the pipeline in detail and reports static
per-port pressure from MAQAO's tables, but "does not model the back end
[scheduler] because of its complexity and lack of documentation" (§2) —
in particular it performs no dependence analysis.  It is committed to the
loop (TPL) notion of throughput: evaluated against unrolled (BHiveU)
measurements it keeps using its loop-mode front-end model, which
reproduces the paper's large BHiveU errors next to its competitive
BHiveL numbers.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.baselines.base import Predictor, register
from repro.core.components import ThroughputMode
from repro.core.dsb import dsb_bound
from repro.core.issue import issue_bound
from repro.core.lsd import lsd_bound, lsd_fits
from repro.engine.cache import AnalysisCache
from repro.isa.block import BasicBlock


@register
class CqaAnalog(Predictor):
    name = "CQA"
    native_mode = "loop"

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode  # CQA always analyzes under the loop notion
        analysis = AnalysisCache.shared(self.db).analysis(block)
        ops = analysis.ops
        if lsd_fits(ops, self.cfg):
            front_end = lsd_bound(ops, self.cfg)
        else:
            front_end = dsb_bound(ops, block.num_bytes, self.cfg)
        issue = issue_bound(ops, self.cfg)
        ports = analysis.ports().bound
        return round(float(max(front_end, issue, ports)), 2)
