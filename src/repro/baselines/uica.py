"""uiCA analog: detailed cycle-level simulation.

uiCA models the front end, the back end, fusion and move elimination at a
high level of detail — like our oracle.  The analog shares the oracle's
pipeline model but, like the real tool, does not model the retirement
width or scheduler/ROB capacities exactly (Intel does not document them
for all generations), which is what separates its predictions from the
"hardware" by a fraction of a percent.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import Predictor, register
from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.sim.backend import SimOptions
from repro.sim.simulator import Simulator
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@register
class UicaAnalog(Predictor):
    name = "uiCA"
    native_mode = "both"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        super().__init__(cfg, db)
        self.simulator = Simulator(
            cfg, SimOptions(model_resources=False), self.db)

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        return round(self.simulator.throughput(block, mode), 2)
