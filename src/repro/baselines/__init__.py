"""Comparator throughput predictors (analogs of the paper's baselines).

The original evaluation compares Facile against uiCA, llvm-mca (v8/v15),
IACA (2.3/3.0), OSACA, CQA, Ithemal, DiffTune and the learned baseline of
[7].  The binaries/models of those tools are unavailable offline, so this
package provides *analogs that reproduce each tool's modeling scope*:

================  ==========================================================
uiCA-analog       full cycle-level simulation (shares the oracle's pipeline
                  model, minus the resource limits it does not document)
llvm-mca-analog   back end only: no front end, no macro/micro fusion, no
                  move elimination
CQA-analog        detailed front end, no back-end port/latency modeling;
                  committed to the loop (TPL) notion of throughput
IACA-analog       issue width + port contention with fusion; no front end,
                  no dependence analysis (TPL notion)
OSACA-analog      optimal port distribution + loop-carried critical path;
                  no front end, no fusion
Ithemal-analog    learned regression over opcode/operand features, trained
                  on TPU measurements (like Ithemal's BHive training set)
DiffTune-analog   llvm-mca-analog with per-class parameters fitted to TPU
                  measurements by random search
learning-bl       the simple per-opcode linear baseline of [7]
================  ==========================================================

Because Table 2's error structure is a function of modeling scope (which
pipeline effects a tool sees), matching the scope reproduces the paper's
relative ordering and failure modes (e.g. TPU-trained learned models
collapsing on BHiveL).
"""

from repro.baselines.base import GuardedPredictor, Predictor, \
    all_predictors, predictor_names
from repro.baselines.facile_predictor import FacilePredictor
from repro.baselines.uica import UicaAnalog
from repro.baselines.llvm_mca import LlvmMcaAnalog
from repro.baselines.cqa import CqaAnalog
from repro.baselines.iaca import IacaAnalog
from repro.baselines.osaca import OsacaAnalog
from repro.baselines.ithemal import IthemalAnalog
from repro.baselines.difftune import DiffTuneAnalog
from repro.baselines.learning_baseline import LearningBaseline

__all__ = [
    "CqaAnalog",
    "DiffTuneAnalog",
    "FacilePredictor",
    "GuardedPredictor",
    "IacaAnalog",
    "IthemalAnalog",
    "LearningBaseline",
    "LlvmMcaAnalog",
    "OsacaAnalog",
    "Predictor",
    "UicaAnalog",
    "all_predictors",
    "predictor_names",
]
