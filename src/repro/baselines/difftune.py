"""DiffTune analog: llvm-mca-shaped model with learned parameters.

DiffTune learns llvm-mca's per-instruction scheduling parameters from
unrolled-mode measurements via a differentiable surrogate.  The analog
keeps the structure (a dispatch-width term, a port-pressure term, and a
latency/chain term over per-class parameters) and fits the parameters to
TPU measurements by random local search.  As in the paper, training on
TPU only makes the model collapse on BHiveL benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines.base import Predictor, register
from repro.baselines.features import chain_depth, class_counts, MNEMONIC_CLASSES
from repro.baselines.training import training_data
from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

_PARAM_CACHE: Dict[str, Tuple[np.ndarray, np.ndarray, float]] = {}

_N = len(MNEMONIC_CLASSES)


def _predict_raw(counts: np.ndarray, depth: float, width: int,
                 uops: np.ndarray, rtp: np.ndarray,
                 lat_scale: float) -> float:
    dispatch = float(counts @ uops) / width
    pressure = float(counts @ rtp)
    chain = lat_scale * depth
    return max(dispatch, pressure, chain, 0.25)


def _loss(xs, depths, ys, width, uops, rtp, lat_scale) -> float:
    total = 0.0
    for counts, depth, y in zip(xs, depths, ys):
        pred = _predict_raw(counts, depth, width, uops, rtp, lat_scale)
        total += abs(y - pred) / max(y, 0.01)
    return total / len(ys)


def _train(cfg: MicroArchConfig,
           iterations: int = 400) -> Tuple[np.ndarray, np.ndarray, float]:
    blocks, values = training_data(cfg)
    xs = [class_counts(b) for b in blocks]
    depths = [chain_depth(b, weighted=True) for b in blocks]
    rng = random.Random(42)
    width = cfg.issue_width

    uops = np.ones(_N)
    rtp = np.full(_N, 0.3)
    lat_scale = 1.0
    best = _loss(xs, depths, values, width, uops, rtp, lat_scale)
    for _ in range(iterations):
        kind = rng.randrange(3)
        if kind == 0:
            idx = rng.randrange(_N)
            old = uops[idx]
            uops[idx] = max(0.0, old + rng.uniform(-0.5, 0.5))
            cand = _loss(xs, depths, values, width, uops, rtp, lat_scale)
            if cand < best:
                best = cand
            else:
                uops[idx] = old
        elif kind == 1:
            idx = rng.randrange(_N)
            old = rtp[idx]
            rtp[idx] = max(0.0, old + rng.uniform(-0.25, 0.25))
            cand = _loss(xs, depths, values, width, uops, rtp, lat_scale)
            if cand < best:
                best = cand
            else:
                rtp[idx] = old
        else:
            old = lat_scale
            lat_scale = max(0.0, old + rng.uniform(-0.3, 0.3))
            cand = _loss(xs, depths, values, width, uops, rtp, lat_scale)
            if cand < best:
                best = cand
            else:
                lat_scale = old
    return uops, rtp, lat_scale


@register
class DiffTuneAnalog(Predictor):
    name = "DiffTune"
    native_mode = "unrolled"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        super().__init__(cfg, db)
        self._params: Optional[Tuple[np.ndarray, np.ndarray, float]] = None

    def prepare(self, train_oracle=None) -> None:
        if self._params is None:
            key = self.cfg.abbrev
            if key not in _PARAM_CACHE:
                _PARAM_CACHE[key] = _train(self.cfg)
            self._params = _PARAM_CACHE[key]

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode
        self.prepare()
        uops, rtp, lat_scale = self._params
        value = _predict_raw(class_counts(block),
                     chain_depth(block, weighted=True),
                             self.cfg.issue_width, uops, rtp, lat_scale)
        return round(value, 2)
