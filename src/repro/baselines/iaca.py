"""IACA analog: issue width and port contention, no dependence analysis.

IACA's throughput analysis models allocation width and execution-port
pressure including macro/micro fusion, but does not account for
loop-carried dependence chains, so it is systematically optimistic on
latency-bound blocks.  IACA 2.3 and 3.0 are registered separately: the
older version distributes port pressure slightly differently (it predates
the port-assignment rework), modeled here as ignoring the restriction of
stores with indexed addresses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.baselines.base import Predictor, register
from repro.core.components import ThroughputMode
from repro.core.issue import issue_bound
from repro.engine.cache import AnalysisCache
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@register
class IacaAnalog(Predictor):
    name = "IACA 3.0"
    native_mode = "loop"

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode
        analysis = AnalysisCache.shared(self.db).analysis(block)
        return round(float(max(issue_bound(analysis.ops, self.cfg),
                               analysis.ports().bound)), 2)


@register
class Iaca23Analog(Predictor):
    name = "IACA 2.3"
    native_mode = "loop"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        # Pre-rework port model: indexed stores keep the full AGU set.
        port_map = dict(cfg.port_map)
        port_map["store_agu_indexed"] = port_map["store_agu"]
        relaxed = dataclasses.replace(cfg, port_map=port_map)
        super().__init__(relaxed, UopsDatabase(relaxed))

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode
        analysis = AnalysisCache.shared(self.db).analysis(block)
        return round(float(max(issue_bound(analysis.ops, self.cfg),
                               analysis.ports().bound)), 2)
