"""llvm-mca analog: back-end-only timeline analysis.

llvm-mca builds on LLVM scheduling models: it sees instruction latencies
and port usage, but models neither the front end (predecoder, decoders,
DSB, LSD) nor macro/micro fusion — the omissions the paper calls out
(§2).  Two versions are registered, mirroring the paper's llvm-mca-8 and
llvm-mca-15 columns: the older one additionally lacks zero-idiom
elimination.
"""

from __future__ import annotations

import dataclasses
import weakref
from fractions import Fraction
from typing import List, Optional

from repro.baselines.base import Predictor, register
from repro.core.components import ThroughputMode
from repro.core.ports import ports_bound
from repro.engine.cache import AnalysisCache
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp
from repro.uops.database import UopsDatabase

#: One no-elimination database per configuration object, so the three
#: back-end-only analogs (llvm-mca-8/15, OSACA) share one analysis cache
#: and the dependence graph of each block is built once, not three times.
#: Entries hold only a weak reference to the config (its dict fields are
#: unhashable, so identity is the key): when a transient config dies,
#: its entry — database and analysis cache included — is purged, so
#: parameter sweeps over generated configs cannot grow this unboundedly.
_NO_ELIM_DBS: dict = {}


def _no_elimination_db(cfg: MicroArchConfig) -> UopsDatabase:
    """The shared database view without move elimination (tools that
    predate or ignore it)."""
    entry = _NO_ELIM_DBS.get(id(cfg))
    if entry is not None:
        ref, db = entry
        if ref() is cfg:
            return db
    key = id(cfg)
    db = UopsDatabase(dataclasses.replace(
        cfg, gpr_move_elim=False, vec_move_elim=False))
    _NO_ELIM_DBS[key] = (
        weakref.ref(cfg, lambda _ref: _NO_ELIM_DBS.pop(key, None)), db)
    return db


class _BackEndOnly(Predictor):
    """Shared scaffolding for back-end-only analogs."""

    model_zero_idioms = True

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        super().__init__(cfg, db)
        self._db = _no_elimination_db(cfg)

    def databases(self) -> List[UopsDatabase]:
        return [self.db, self._db]

    def _unfused_ops(self, block: BasicBlock) -> List[MacroOp]:
        """Per-instruction macro-ops without fusion or elimination."""
        ops = []
        for idx, instr in enumerate(block):
            info = self._db.info(instr)
            if not self.model_zero_idioms and info.eliminated:
                # Treat the idiom as a plain ALU µop.
                info = dataclasses.replace(
                    info, eliminated=False,
                    port_sets=(self.cfg.ports_for(
                        "vec_logic" if instr.template.slots
                        and instr.template.slots[0].regclass == "vec"
                        else "int_alu"),))
            ops.append(MacroOp((instr,), info, idx))
        return ops

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode  # no front end: both notions are predicted identically
        ops = self._unfused_ops(block)
        dispatch = Fraction(
            sum(op.info.dispatched_uops or op.info.issued_uops
                for op in ops),
            self.cfg.issue_width)
        ports = ports_bound(ops).bound
        precedence = AnalysisCache.shared(self._db) \
            .analysis(block).precedence().bound
        return round(float(max(dispatch, ports, precedence)), 2)


@register
class LlvmMcaAnalog(_BackEndOnly):
    name = "llvm-mca-15"
    native_mode = "loop"
    model_zero_idioms = True


@register
class LlvmMca8Analog(_BackEndOnly):
    name = "llvm-mca-8"
    native_mode = "loop"
    model_zero_idioms = False
