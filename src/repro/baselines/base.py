"""The predictor interface and registry."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


class Predictor(abc.ABC):
    """A basic-block throughput predictor for one microarchitecture.

    Args:
        cfg: the target microarchitecture.
        db: optionally shared uops database (predictors that, like the
            real tools, read the uops.info data).
    """

    #: Display name used in tables (override in subclasses).
    name: str = "predictor"
    #: The throughput notion the tool is designed for ("unrolled",
    #: "loop", or "both"); predictions for the other notion are still
    #: produced (as the paper does "for completeness").
    native_mode: str = "both"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        self.cfg = cfg
        self.db = db or UopsDatabase(cfg)

    @abc.abstractmethod
    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        """Predicted cycles per iteration (rounded to 2 decimals)."""

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode) -> List[float]:
        """Predict a whole batch, preserving input order.

        The default is a serial loop over :meth:`predict`; predictors
        with a faster batch path (Facile via the engine) override this.
        The evaluation layer always goes through this entry point.
        """
        return [self.predict(block, mode) for block in blocks]

    def prepare(self, train_oracle=None) -> None:
        """Hook for predictors that need training (learned analogs)."""

    def databases(self) -> List[UopsDatabase]:
        """Every uops database this predictor reads.

        The timing harness clears the block-level analysis caches
        attached to these before measuring a tool, so per-call runtimes
        stay comparable across tools sharing a database.
        """
        return [self.db]


_REGISTRY: Dict[str, Callable[..., Predictor]] = {}


def register(factory: Callable[..., Predictor]) -> Callable[..., Predictor]:
    """Class decorator adding a predictor to the registry."""
    _REGISTRY[factory.name] = factory
    return factory


def predictor_names() -> List[str]:
    """Names of all registered predictors (table order)."""
    return list(_REGISTRY)


def all_predictors(cfg: MicroArchConfig,
                   db: Optional[UopsDatabase] = None,
                   names: Optional[List[str]] = None) -> List[Predictor]:
    """Instantiate registered predictors for *cfg*.

    Unknown names raise ``KeyError`` listing the registry, so callers
    taking user input (``facile hunt --predictors``) fail helpfully.
    """
    chosen = names if names is not None else predictor_names()
    unknown = [name for name in chosen if name not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown predictor(s) {unknown!r}; "
                       f"registered: {predictor_names()}")
    return [_REGISTRY[name](cfg, db) for name in chosen]
