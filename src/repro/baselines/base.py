"""The predictor interface, registry, and fault-isolation wrapper."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.faults import maybe_inject
from repro.robustness.retry import RetryPolicy
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


class Predictor(abc.ABC):
    """A basic-block throughput predictor for one microarchitecture.

    Args:
        cfg: the target microarchitecture.
        db: optionally shared uops database (predictors that, like the
            real tools, read the uops.info data).
    """

    #: Display name used in tables (override in subclasses).
    name: str = "predictor"
    #: The throughput notion the tool is designed for ("unrolled",
    #: "loop", or "both"); predictions for the other notion are still
    #: produced (as the paper does "for completeness").
    native_mode: str = "both"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        self.cfg = cfg
        self.db = db or UopsDatabase(cfg)

    @abc.abstractmethod
    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        """Predicted cycles per iteration (rounded to 2 decimals)."""

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode) -> List[float]:
        """Predict a whole batch, preserving input order.

        The default is a serial loop over :meth:`predict`; predictors
        with a faster batch path (Facile via the engine) override this.
        The evaluation layer always goes through this entry point.
        """
        return [self.predict(block, mode) for block in blocks]

    def prepare(self, train_oracle=None) -> None:
        """Hook for predictors that need training (learned analogs)."""

    def databases(self) -> List[UopsDatabase]:
        """Every uops database this predictor reads.

        The timing harness clears the block-level analysis caches
        attached to these before measuring a tool, so per-call runtimes
        stay comparable across tools sharing a database.
        """
        return [self.db]


class GuardedPredictor(Predictor):
    """Fault isolation around any :class:`Predictor`.

    Wraps *inner* with the repo's two containment primitives (see
    ``docs/ROBUSTNESS.md``):

    * transient failures of :meth:`predict` are retried per block with
      bounded, jittered backoff (:class:`RetryPolicy`);
    * calls that exhaust their retries count against a
      :class:`CircuitBreaker` — after enough consecutive broken calls
      the breaker opens and further calls fail *fast* with
      :class:`~repro.robustness.errors.CircuitOpenError` until a
      cooldown probe succeeds.

    The wrapper also exposes the predictor's deterministic fault site
    (``predictor.<name>``), so a :class:`~repro.robustness.faults.
    FaultPlan` can break any baseline on chosen call indices.

    A guarded predictor is a drop-in :class:`Predictor`: same ``name``,
    same ``native_mode``, delegated :meth:`prepare` / :meth:`databases`.
    """

    def __init__(self, inner: Predictor, *,
                 breaker: Optional[CircuitBreaker] = None,
                 retry: Optional[RetryPolicy] = None):
        # No super().__init__: cfg/db mirror the wrapped predictor's
        # (building a fresh UopsDatabase here would defeat sharing).
        self.inner = inner
        self.cfg = inner.cfg
        self.db = inner.db
        self.name = inner.name
        self.native_mode = inner.native_mode
        self.breaker = (breaker if breaker is not None
                        else CircuitBreaker(inner.name))
        self.retry = (retry if retry is not None
                      else RetryPolicy(base=0.05, cap=0.5))

    @property
    def site(self) -> str:
        """The fault-injection site name of this predictor."""
        return f"predictor.{self.name}"

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        self.breaker.before_call()  # CircuitOpenError when open
        attempt = 0
        while True:
            try:
                maybe_inject(self.site)
                value = self.inner.predict(block, mode)
            except Exception:
                if not self.retry.attempts_left(attempt + 1):
                    # The whole call failed, retries included: that is
                    # what the breaker counts — a transient blip that a
                    # retry absorbed never moves it.
                    self.breaker.record_failure()
                    raise
                self.retry.backoff(attempt)
                attempt += 1
                continue
            self.breaker.record_success()
            return value

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode) -> List[float]:
        # Per-block (not per-batch) retry granularity: one poisoned
        # block should not force the whole batch through the retry
        # schedule.
        return [self.predict(block, mode) for block in blocks]

    def prepare(self, train_oracle=None) -> None:
        self.inner.prepare(train_oracle)

    def databases(self) -> List[UopsDatabase]:
        return self.inner.databases()


_REGISTRY: Dict[str, Callable[..., Predictor]] = {}


def register(factory: Callable[..., Predictor]) -> Callable[..., Predictor]:
    """Class decorator adding a predictor to the registry."""
    _REGISTRY[factory.name] = factory
    return factory


def predictor_names() -> List[str]:
    """Names of all registered predictors (table order)."""
    return list(_REGISTRY)


def all_predictors(cfg: MicroArchConfig,
                   db: Optional[UopsDatabase] = None,
                   names: Optional[List[str]] = None) -> List[Predictor]:
    """Instantiate registered predictors for *cfg*.

    Unknown names raise ``KeyError`` listing the registry, so callers
    taking user input (``facile hunt --predictors``) fail helpfully.
    """
    chosen = names if names is not None else predictor_names()
    unknown = [name for name in chosen if name not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown predictor(s) {unknown!r}; "
                       f"registered: {predictor_names()}")
    return [_REGISTRY[name](cfg, db) for name in chosen]
