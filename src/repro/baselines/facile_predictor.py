"""Facile wrapped in the common predictor interface."""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import Predictor, register
from repro.core.components import ThroughputMode
from repro.core.model import Facile
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@register
class FacilePredictor(Predictor):
    """The paper's contribution, for side-by-side comparison."""

    name = "Facile"
    native_mode = "both"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None, **facile_kwargs):
        super().__init__(cfg, db)
        self.model = Facile(cfg, db=self.db, **facile_kwargs)

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        return self.model.predict(block, mode).cycles
