"""Facile wrapped in the common predictor interface."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.base import Predictor, register
from repro.core.components import ThroughputMode
from repro.engine.engine import Engine
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase


@register
class FacilePredictor(Predictor):
    """The paper's contribution, for side-by-side comparison.

    Predictions are routed through the batch engine: single predictions
    use the shared analysis cache, and ``predict_many`` additionally fans
    out over a worker pool when a default worker count is configured
    (``repro.engine.set_default_workers`` / ``REPRO_ENGINE_WORKERS``).
    """

    name = "Facile"
    native_mode = "both"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None,
                 n_workers: Optional[int] = None, **facile_kwargs):
        super().__init__(cfg, db)
        self.engine = Engine(cfg, db=self.db, n_workers=n_workers,
                             **facile_kwargs)
        self.model = self.engine.model

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        return self.engine.predict(block, mode).cycles

    def predict_many(self, blocks: Sequence[BasicBlock],
                     mode: ThroughputMode) -> List[float]:
        return [p.cycles for p in self.engine.predict_many(blocks, mode)]
