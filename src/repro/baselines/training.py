"""Shared training infrastructure for the learned-predictor analogs.

Like the real Ithemal/DiffTune, the analogs are trained on *unrolled*
(TPU) measurements — which is precisely why they degrade on BHiveL in
Table 2.  Training data comes from the oracle simulator (the measurement
substrate) on a dedicated suite disjoint from the evaluation suite.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.sim.measure import measure
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

TRAIN_SEED = 7777
TRAIN_SIZE = 150

_DATA_CACHE: Dict[Tuple[str, int, int],
                  Tuple[List[BasicBlock], List[float]]] = {}


def training_data(cfg: MicroArchConfig, size: int = TRAIN_SIZE,
                  seed: int = TRAIN_SEED,
                  ) -> Tuple[List[BasicBlock], List[float]]:
    """(blocks, TPU measurements) for training, cached per µarch."""
    key = (cfg.abbrev, size, seed)
    if key not in _DATA_CACHE:
        suite = BenchmarkSuite.generate(size, seed)
        db = UopsDatabase(cfg)
        blocks = suite.blocks(loop=False)
        values = [measure(b, cfg, ThroughputMode.UNROLLED, db)
                  for b in blocks]
        _DATA_CACHE[key] = (blocks, values)
    return _DATA_CACHE[key]
