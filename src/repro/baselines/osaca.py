"""OSACA analog: optimal port distribution plus critical-path analysis.

OSACA reports per-port pressure assuming an optimal distribution and the
loop-carried dependency path, but models neither the front end nor macro
or micro fusion.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import Predictor, register
from repro.baselines.llvm_mca import _no_elimination_db
from repro.core.components import ThroughputMode
from repro.core.ports import ports_bound
from repro.engine.cache import AnalysisCache
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.blockinfo import MacroOp
from repro.uops.database import UopsDatabase


@register
class OsacaAnalog(Predictor):
    name = "OSACA"
    native_mode = "loop"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        super().__init__(cfg, db)
        self._db = _no_elimination_db(cfg)

    def databases(self) -> List[UopsDatabase]:
        return [self.db, self._db]

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode
        ops: List[MacroOp] = [
            MacroOp((instr,), self._db.info(instr), idx)
            for idx, instr in enumerate(block)
        ]
        ports = ports_bound(ops).bound
        critical_path = AnalysisCache.shared(self._db) \
            .analysis(block).precedence().bound
        return round(float(max(ports, critical_path)), 2)
