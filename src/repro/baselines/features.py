"""Token-level block features for the learned-predictor analogs.

The features deliberately use only information a learned model could
extract from the assembly tokens (mnemonics, operand shapes, register
reuse) — no microarchitectural data — mirroring how Ithemal consumes
token streams rather than uops.info.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.isa.block import BasicBlock

#: Mnemonic classes (anything unlisted falls into the last bucket).
MNEMONIC_CLASSES: List[str] = [
    "add", "sub", "and", "or", "xor", "cmp", "test", "inc", "dec",
    "mov", "movzx", "movsxd", "lea", "shl", "shr", "sar", "imul", "mul",
    "div", "adc", "sbb", "neg", "not", "xchg", "push", "pop", "nop",
    "setcc", "cmov", "jcc", "jmp", "bswap", "popcnt", "bitscan",
    "sse_add", "sse_mul", "sse_div", "vec_int", "vec_logic", "vec_mov",
    "other",
]

_CLASS_INDEX: Dict[str, int] = {c: i for i, c in enumerate(MNEMONIC_CLASSES)}

_DIRECT = {m: m for m in (
    "add", "sub", "and", "or", "xor", "cmp", "test", "inc", "dec",
    "mov", "movzx", "movsxd", "lea", "shl", "shr", "sar", "imul", "mul",
    "div", "adc", "sbb", "neg", "not", "xchg", "push", "pop", "jmp",
    "bswap", "popcnt",
)}


def classify(mnemonic: str) -> str:
    """Map an assembly mnemonic to its feature class."""
    if mnemonic in _DIRECT:
        return _DIRECT[mnemonic]
    if mnemonic.startswith("nop"):
        return "nop"
    if mnemonic.startswith("set"):
        return "setcc"
    if mnemonic.startswith("cmov"):
        return "cmov"
    if mnemonic.startswith("j"):
        return "jcc"
    if mnemonic in ("lzcnt", "tzcnt", "bsf", "bsr"):
        return "bitscan"
    if mnemonic in ("addps", "addpd", "addss", "addsd", "subps", "minps",
                    "maxps", "vaddps", "vsubps"):
        return "sse_add"
    if mnemonic in ("mulps", "mulpd", "mulss", "mulsd", "vmulps",
                    "pmulld"):
        return "sse_mul"
    if mnemonic in ("divps", "divss", "sqrtps", "vdivps"):
        return "sse_div"
    if mnemonic in ("paddd", "psubd", "paddq", "vpaddd"):
        return "vec_int"
    if mnemonic in ("pxor", "pand", "por", "vpxor"):
        return "vec_logic"
    if mnemonic in ("movaps", "vmovaps"):
        return "vec_mov"
    return "other"


def class_counts(block: BasicBlock) -> np.ndarray:
    """Counts per mnemonic class."""
    counts = np.zeros(len(MNEMONIC_CLASSES))
    for instr in block:
        counts[_CLASS_INDEX[classify(instr.mnemonic)]] += 1
    return counts


#: Token-level latency prior for the weighted chain feature — the kind of
#: regularity a sequence model learns from data without microarchitectural
#: input (multiplies are slower than adds, divides much slower).
_LATENCY_PRIOR = {
    "imul": 3.0, "mul": 3.0, "div": 25.0, "popcnt": 3.0, "bitscan": 3.0,
    "sse_add": 3.5, "sse_mul": 4.0, "sse_div": 12.0, "bswap": 2.0,
}


def chain_depth(block: BasicBlock, weighted: bool = False) -> float:
    """Longest register-reuse chain.

    A token-level proxy for the dependence structure: depth increases
    along write-read register reuse within one pass over the block, plus
    one wrap-around pass to expose loop carrying.  The *weighted* variant
    applies the latency prior; the unweighted one counts instructions.
    """
    depth: Dict[str, float] = {}
    longest = 0.0
    for _round in range(2):
        for instr in block:
            cost = 1.0
            if weighted:
                cost = _LATENCY_PRIOR.get(classify(instr.mnemonic), 1.0)
                if instr.template.loads:
                    cost += 4.0
            sources = [depth.get(r.name, 0.0) for r in instr.regs_read()]
            d = (max(sources) if sources else 0.0) + cost
            for reg in instr.regs_written():
                depth[reg.name] = d
            longest = max(longest, d)
    return longest / 2.0


def feature_vector(block: BasicBlock) -> np.ndarray:
    """The full feature vector (bias last)."""
    counts = class_counts(block)
    n_loads = sum(1 for i in block if i.template.loads)
    n_stores = sum(1 for i in block if i.template.stores)
    n_lcp = sum(1 for i in block if i.has_lcp)
    extra = np.array([
        len(block),
        block.num_bytes / 16.0,
        n_loads,
        n_stores,
        n_lcp,
        chain_depth(block),
        chain_depth(block, weighted=True),
        1.0,  # bias
    ])
    return np.concatenate([counts, extra])


#: Total feature dimension.
DIM = len(MNEMONIC_CLASSES) + 8
