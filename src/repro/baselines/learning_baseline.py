"""The simple learned baseline of [7] ("learning-bl" in Table 2).

[7] showed that a trivial model — a learned additive cost per opcode —
is competitive with DiffTune.  The analog fits non-negative per-class
costs to TPU measurements by alternating least squares and clipping.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import Predictor, register
from repro.baselines.features import class_counts, MNEMONIC_CLASSES
from repro.baselines.training import training_data
from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

_COST_CACHE: Dict[str, np.ndarray] = {}


def _train(cfg: MicroArchConfig) -> np.ndarray:
    blocks, values = training_data(cfg)
    x = np.array([class_counts(b) for b in blocks])
    y = np.array(values)
    costs, *_ = np.linalg.lstsq(x, y, rcond=None)
    for _ in range(4):
        costs = np.clip(costs, 0.0, None)
        # One refinement pass with ridge regularization toward the
        # clipped values keeps the solution non-negative and stable.
        gram = x.T @ x + 0.5 * np.eye(x.shape[1])
        costs = np.linalg.solve(gram, x.T @ y + 0.5 * costs)
    return np.clip(costs, 0.0, None)


@register
class LearningBaseline(Predictor):
    name = "learning-bl"
    native_mode = "unrolled"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        super().__init__(cfg, db)
        self._costs: Optional[np.ndarray] = None

    def prepare(self, train_oracle=None) -> None:
        if self._costs is None:
            key = self.cfg.abbrev
            if key not in _COST_CACHE:
                _COST_CACHE[key] = _train(self.cfg)
            self._costs = _COST_CACHE[key]

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode
        self.prepare()
        value = float(class_counts(block) @ self._costs)
        return round(max(0.25, value), 2)
