"""Ithemal analog: a learned token-level regression model.

Ithemal is an LSTM over assembly tokens trained on unrolled-mode BHive
measurements.  The analog keeps the two properties that drive its row in
Table 2 — it learns from token-level inputs only, and it is trained on
TPU data — while replacing the LSTM with ridge regression over block
features (see DESIGN.md; this also makes the analog *faster* than a real
LSTM, noted in EXPERIMENTS.md for Figure 5).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import Predictor, register
from repro.baselines.features import feature_vector
from repro.baselines.training import training_data
from repro.core.components import ThroughputMode
from repro.isa.block import BasicBlock
from repro.uarch.config import MicroArchConfig
from repro.uops.database import UopsDatabase

_WEIGHTS_CACHE: Dict[str, np.ndarray] = {}


def _fit_head(x: np.ndarray, y: np.ndarray, ridge: float) -> np.ndarray:
    gram = x.T @ x + ridge * np.eye(x.shape[1])
    return np.linalg.solve(gram, x.T @ y)


def _train(cfg: MicroArchConfig, heads: int = 4,
           rounds: int = 12) -> np.ndarray:
    """Fit a max-of-linear-heads model by alternating assignment/refit.

    Throughput is structurally a maximum of near-linear component bounds;
    a small mixture of linear heads combined with max() captures that far
    better than a single regression — standing in for the capacity a
    trained LSTM brings to the task.
    """
    blocks, values = training_data(cfg)
    x = np.array([feature_vector(b) for b in blocks])
    y = np.array(values)
    rng = np.random.default_rng(7)
    n = len(y)

    assignment = rng.integers(0, heads, size=n)
    weights = np.zeros((heads, x.shape[1]))
    for round_idx in range(rounds):
        for h in range(heads):
            mask = assignment == h
            if mask.sum() < x.shape[1] // 2:
                continue
            weights[h] = _fit_head(x[mask], y[mask], ridge=5.0)
        # k-plane regression: each sample belongs to the head that
        # currently dominates the max for it.
        preds = x @ weights.T  # (n, heads)
        assignment = np.argmax(preds, axis=1)
    return weights


@register
class IthemalAnalog(Predictor):
    name = "Ithemal"
    native_mode = "unrolled"

    def __init__(self, cfg: MicroArchConfig,
                 db: Optional[UopsDatabase] = None):
        super().__init__(cfg, db)
        self._weights: Optional[np.ndarray] = None

    def prepare(self, train_oracle=None) -> None:
        if self._weights is None:
            key = self.cfg.abbrev
            if key not in _WEIGHTS_CACHE:
                _WEIGHTS_CACHE[key] = _train(self.cfg)
            self._weights = _WEIGHTS_CACHE[key]

    def predict(self, block: BasicBlock, mode: ThroughputMode) -> float:
        del mode  # the model has a single (TPU-trained) notion
        self.prepare()
        value = float(np.max(self._weights @ feature_vector(block)))
        return round(max(0.25, value), 2)
