"""The performance-regression harness (``BENCH_predict.json``).

The harness measures the throughput of Facile prediction, in blocks per
second, for the engine's paths on a fixed-seed generated suite:

* ``single``   — the engine's default cold-call path: the columnar core
  (:mod:`repro.engine.columnar`), warmed once over the suite, timed
  per-call on a stream of never-seen payload variants (same instruction
  forms, fresh immediate bytes);
* ``single_object`` — the seed-equivalent reference on the same variant
  stream: analysis re-derived on every call, no memoization;
* ``cached``   — the object model's serial batch path in its steady
  state (shared :class:`~repro.engine.cache.AnalysisCache`);
* ``parallel`` — the engine's ``multiprocessing`` pool path, cold;
* ``service``  — the HTTP prediction service in its steady state:
  concurrent bulk-predict clients against an in-process
  ``facile serve`` (sharded async front-end + response-fragment cache),
  measured after one warm-up pass.  This is the load generator behind
  the service's throughput number.  The service entry additionally
  records steady-state request latency (``p50_ms`` / ``p99_ms`` over a
  sequence of single-predict round trips).

Reading ``BENCH_predict.json``
------------------------------

The file is written by ``scripts/bench.py`` (and by the pytest harness
under ``benchmarks/perf/``).  Layout (schema 4 added the per-path
``peak_rss_kb`` high-water mark and ``metrics`` counter-delta record;
schema 3 renamed the old object-path ``single`` to ``single_object``,
retargeted ``single`` at the columnar core over the variant stream, and
rebased all speedups on ``single_object``; schema 2 added the service
latency percentiles)::

    {
      "schema": 4,
      "suite": {"size": ..., "seed": ...},
      "workers": ...,            # pool size of the parallel path
      "service_clients": ...,    # concurrent clients of the service path
      "cpu_count": ...,          # cores of the measuring machine
      "results": {
        "<uarch>": {
          "<mode>": {
            "<path>": {"blocks_per_sec": ..., "seconds": ...,
                       "n_blocks": ...,
                       "peak_rss_kb": ...,   # peak RSS when the path ended
                       "metrics": {...}},    # registry counters it moved
            "service": {..., "p50_ms": ..., "p99_ms": ...}
          }
        }
      },
      "speedups": {
        "<uarch>": {"<mode>": {"single_vs_single_object": ...,
                                "cached_vs_single_object": ...,
                                "parallel_vs_single_object": ...,
                                "service_vs_single_object": ...}}
      }
    }

``peak_rss_kb`` is the *process* high-water mark at the moment a path
finished (``ru_maxrss``), so later paths report equal-or-larger values;
``metrics`` is the flat counter delta (``name{labels}`` -> movement)
the path produced in the observability registry.  Both are bench-record
extras: the regression gate reads ``blocks_per_sec`` only.

``single_vs_single_object`` is the headline number: how much faster the
columnar core predicts *never-seen* blocks than the pre-engine per-call
path (the ≥5× acceptance gate of the columnar rewrite).
``cached_vs_single_object`` tracks the steady-state batch regime
(ablation/counterfactual/variant sweeps); ``parallel_vs_single_object``
depends on the machine's core count — on single-core CI it is expected
to be < 1 (pool overhead with no parallel hardware) and is reported for
the trajectory, not gated.

Regression gating compares ``blocks_per_sec`` per (µarch, mode) for the
``single``, ``single_object``, and ``cached`` paths against a committed
baseline and fails on a drop beyond the tolerance (default 20%); the
``parallel`` number is recorded but not gated (see :data:`GATED_PATHS`).
Only same-machine, same-schema comparisons are meaningful; the
committed baseline tracks the repository's CI machine.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bhive.suite import BenchmarkSuite
from repro.core.components import ThroughputMode
from repro.eval.timing import peak_rss_kb, time_prediction_paths
from repro.obs import log as obslog
from repro.obs import metrics
from repro.uarch import uarch_by_name

#: Default harness parameters (fixed seed: the suite must be identical
#: across runs for the trajectory to be comparable).
DEFAULT_SIZE = 80
DEFAULT_SEED = 2023
DEFAULT_UARCHS = ("SKL",)
DEFAULT_WORKERS = 2
DEFAULT_TOLERANCE = 0.20

#: Concurrent bulk-predict clients of the service load generator.
DEFAULT_SERVICE_CLIENTS = 8

#: Paths measured by the harness.
PATHS = ("single", "single_object", "cached", "parallel", "service")

_PATHS_MEASURED = metrics.counter(
    "facile_bench_paths_total",
    metrics.METRIC_CATALOG["facile_bench_paths_total"][1],
    labels=("path",))


def run_perf_harness(size: int = DEFAULT_SIZE, seed: int = DEFAULT_SEED,
                     uarchs: Sequence[str] = DEFAULT_UARCHS,
                     modes: Optional[Sequence[ThroughputMode]] = None,
                     workers: int = DEFAULT_WORKERS,
                     include_parallel: bool = True,
                     include_service: bool = True,
                     service_clients: int = DEFAULT_SERVICE_CLIENTS,
                     ) -> Dict:
    """Measure all paths and return the ``BENCH_predict.json`` payload."""
    modes = (list(modes) if modes is not None
             else [ThroughputMode.UNROLLED, ThroughputMode.LOOP])
    suite = BenchmarkSuite.generate(size, seed)
    logger = obslog.get_logger("bench")

    results: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    speedups: Dict[str, Dict[str, Dict[str, float]]] = {}
    for abbrev in uarchs:
        cfg = uarch_by_name(abbrev)
        results[abbrev] = {}
        speedups[abbrev] = {}
        for mode in modes:
            def path_done(path: str, _abbrev=abbrev,
                          _mode=mode.value) -> None:
                _PATHS_MEASURED.inc(path=path)
                logger.info("bench_progress", uarch=_abbrev, mode=_mode,
                            path=path, paths_measured=int(
                                metrics.counter_value(
                                    "facile_bench_paths_total",
                                    path=path)))

            timings = time_prediction_paths(
                cfg, suite, mode, workers=workers,
                include_parallel=include_parallel,
                progress=path_done)
            service_latency = None
            if include_service:
                counters = metrics.REGISTRY.counters_flat()
                timings["service"], service_latency = time_service_path(
                    cfg, suite, mode, clients=service_clients)
                timings["service"].metrics = {
                    key: round(value - counters.get(key, 0.0), 6)
                    for key, value in sorted(
                        metrics.REGISTRY.counters_flat().items())
                    if value != counters.get(key, 0.0)}
                timings["service"].peak_rss_kb = peak_rss_kb()
                path_done("service")
            results[abbrev][mode.value] = {
                path: {
                    "blocks_per_sec": round(t.blocks_per_sec, 2),
                    "seconds": round(t.seconds, 6),
                    "n_blocks": t.n_blocks,
                    "peak_rss_kb": t.peak_rss_kb,
                    "metrics": t.metrics,
                }
                for path, t in timings.items()
            }
            if service_latency is not None:
                results[abbrev][mode.value]["service"].update(
                    service_latency)
            # All speedups are rebased on the seed-equivalent reference.
            # Paths time different block counts (the single paths run
            # the variant stream), so the ratio must be blocks/sec, not
            # raw seconds.
            base_bps = timings["single_object"].blocks_per_sec
            mode_speedups = {}
            for path in ("single", "cached", "parallel", "service"):
                if path in timings and base_bps > 0:
                    mode_speedups[f"{path}_vs_single_object"] = round(
                        timings[path].blocks_per_sec / base_bps, 2)
            speedups[abbrev][mode.value] = mode_speedups

    return {
        "schema": 4,
        "suite": {"size": size, "seed": seed},
        "workers": workers,
        "service_clients": (service_clients if include_service else None),
        "cpu_count": os.cpu_count(),
        "results": results,
        "speedups": speedups,
    }


#: Single-predict round trips of the latency phase (per µarch/mode).
LATENCY_SAMPLES = 150


def _percentile(sorted_values: List[float], q: float) -> float:
    """The *q*-quantile of pre-sorted samples (nearest-rank)."""
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def time_service_path(cfg, suite: BenchmarkSuite, mode: ThroughputMode,
                      *, clients: int = DEFAULT_SERVICE_CLIENTS):
    """Steady-state throughput *and* latency of the HTTP service.

    The load generator starts an in-process
    :class:`~repro.service.server.PredictionService` on an ephemeral
    port and warms its caches with one bulk pass.  Two measurement
    phases follow:

    * **throughput** — the suite is sharded round-robin over *clients*
      concurrent bulk-predict clients and the sharded pass is timed
      end to end (HTTP + JSON + response-fragment cache + shard).
      Comparable to ``cached`` (both measure the steady state); the
      delta is the serving overhead.
    * **latency** — :data:`LATENCY_SAMPLES` sequential single-predict
      round trips over the warmed suite, timed individually; reported
      as ``{"p50_ms", "p99_ms"}`` (nearest-rank percentiles).

    Returns ``(PathTiming, latency_dict)``.
    """
    import threading
    import time

    from repro.eval.timing import PathTiming
    from repro.service.client import ServiceClient
    from repro.service.server import PredictionService

    loop = mode is ThroughputMode.LOOP
    hexes = [bench.block(loop).raw.hex() for bench in suite]
    with PredictionService(uarch=cfg.abbrev, port=0) as service:
        warm = ServiceClient(port=service.port)
        warm.predict_bulk(hexes, mode=mode.value)

        shards = [hexes[i::clients] for i in range(clients)]
        shards = [shard for shard in shards if shard]
        failures: List[BaseException] = []

        def worker(shard: List[str]) -> None:
            try:
                client = ServiceClient(port=service.port)
                client.predict_bulk(shard, mode=mode.value)
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(shard,))
                   for shard in shards]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start
        if failures:
            raise failures[0]

        # Latency phase: sequential round trips (no queueing of our
        # own making), so the percentiles describe the service, not
        # the load generator.
        latency_client = ServiceClient(port=service.port)
        samples: List[float] = []
        for index in range(LATENCY_SAMPLES):
            block_hex = hexes[index % len(hexes)]
            tick = time.perf_counter()
            latency_client.predict(block_hex, mode=mode.value)
            samples.append((time.perf_counter() - tick) * 1000.0)
        samples.sort()
        latency = {"p50_ms": round(_percentile(samples, 0.50), 3),
                   "p99_ms": round(_percentile(samples, 0.99), 3)}
    return PathTiming("service", len(hexes), seconds), latency


def write_bench_json(payload: Dict, path: str) -> None:
    """Write the harness payload (stable key order, trailing newline)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_json(path: str) -> Optional[Dict]:
    """Load a baseline payload; None when absent or unreadable."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


#: Paths the regression gate enforces.  ``parallel`` is recorded for
#: the trajectory but not gated: it scales with the machine's core
#: count and, on small CI boxes, is dominated by pool start-up noise.
GATED_PATHS = ("single", "single_object", "cached")


def comparable(current: Dict, baseline: Dict) -> bool:
    """Whether two payloads were measured under the same configuration.

    Blocks/sec only compare meaningfully when the suite (size and seed)
    matches; a size-20 run gated against a size-80 baseline would mix
    different block-cost distributions.  Schemas must match too: path
    names keep their meaning only within a schema (schema 3 retargeted
    ``single`` at the columnar core, so gating a schema-3 run against a
    schema-2 baseline would compare different code paths).
    """
    return (current.get("suite") == baseline.get("suite")
            and current.get("schema") == baseline.get("schema"))


def find_regressions(current: Dict, baseline: Dict,
                     tolerance: float = DEFAULT_TOLERANCE,
                     ) -> List[Tuple[str, str, str, float, float]]:
    """Compare against a baseline payload.

    Returns (uarch, mode, path, current_bps, baseline_bps) tuples for
    every gated path (see :data:`GATED_PATHS`) whose blocks/sec dropped
    more than *tolerance* below the baseline.  Paths absent from either
    payload are skipped, as is an incomparable baseline (different
    suite; see :func:`comparable`) — callers should surface that case
    rather than gate against it.
    """
    if not comparable(current, baseline):
        return []
    regressions = []
    for abbrev, mode_value, path, cur_bps, base_bps in \
            _gated_pairs(current, baseline):
        if cur_bps < base_bps * (1.0 - tolerance):
            regressions.append(
                (abbrev, mode_value, path, cur_bps, base_bps))
    return regressions


def gated_overlap(current: Dict, baseline: Dict) -> int:
    """How many gated (µarch, mode, path) entries the payloads share.

    Zero means the gate would be vacuous (e.g. the baseline covers a
    different µarch set): callers should surface that instead of
    reporting a green check.
    """
    if not comparable(current, baseline):
        return 0
    return sum(1 for _ in _gated_pairs(current, baseline))


def _gated_pairs(current: Dict, baseline: Dict):
    """Yield (uarch, mode, path, current_bps, baseline_bps) for every
    gated entry present in both payloads."""
    for abbrev, by_mode in baseline.get("results", {}).items():
        for mode_value, by_path in by_mode.items():
            for path, numbers in by_path.items():
                if path not in GATED_PATHS:
                    continue
                base_bps = numbers.get("blocks_per_sec")
                cur = (current.get("results", {}).get(abbrev, {})
                       .get(mode_value, {}).get(path))
                if base_bps is None or cur is None:
                    continue
                cur_bps = cur.get("blocks_per_sec")
                if cur_bps is not None:
                    yield abbrev, mode_value, path, cur_bps, base_bps


def render_bench(payload: Dict) -> str:
    """Human-readable table of one harness run."""
    lines = [f"suite size {payload['suite']['size']} "
             f"(seed {payload['suite']['seed']}), "
             f"{payload['workers']} workers, "
             f"{payload.get('cpu_count')} cpus",
             f"{'µarch':<6} {'mode':<9} {'path':<9} "
             f"{'blocks/s':>10} {'speedup':>9}"]
    for abbrev, by_mode in payload["results"].items():
        for mode_value, by_path in by_mode.items():
            for path in PATHS:
                if path not in by_path:
                    continue
                speedup = payload["speedups"][abbrev][mode_value].get(
                    f"{path}_vs_single_object")
                lines.append(
                    f"{abbrev:<6} {mode_value:<9} {path:<9} "
                    f"{by_path[path]['blocks_per_sec']:>10.1f} "
                    + (f"{speedup:>8.2f}x" if speedup is not None
                       else f"{'—':>9}"))
    return "\n".join(lines)
